#!/usr/bin/env python3
"""Exploring the incentive-mechanism design space analytically.

Uses only the paper's closed-form models (no simulation) to let a
mechanism designer ask what-if questions:

* Where does each mechanism sit on the fairness-efficiency frontier
  (Lemma 1, Table I)?
* How do BitTorrent's ``alpha_BT`` and the reputation system's
  ``alpha_R`` trade bootstrap speed against exploitable bandwidth
  (Tables II-III)?
* How badly can a skewed reputation vector hurt a reputation system
  (Proposition 3)?

Run:  python examples/design_space_explorer.py
"""

import numpy as np

from repro.core import bootstrapping, equilibrium, freeriding, metrics
from repro.core import reputation_model, tradeoff
from repro.names import ALL_ALGORITHMS, Algorithm
from repro.utils import format_table

CAPACITIES = [6.0] * 2 + [3.0] * 6 + [1.0] * 8 + [0.5] * 4


def frontier() -> None:
    rows = [[r["theta"], r["fairness"], r["efficiency"]]
            for r in tradeoff.fairness_efficiency_frontier(
                CAPACITIES, np.linspace(0.0, 1.0, 6))]
    print(format_table(
        ["theta (0=fair, 1=efficient)", "F (Eq. 3)", "E (Eq. 2)"], rows,
        title="Lemma 1 frontier: fairness vs. efficiency",
        float_format=".4f"))

    params = equilibrium.EquilibriumParameters(CAPACITIES)
    rows = []
    for algorithm in ALL_ALGORITHMS:
        result = equilibrium.equilibrium(algorithm, params)
        rows.append([algorithm.display_name, result.fairness,
                     result.efficiency])
    print(format_table(["Mechanism", "F", "E"], rows,
                       title="\nWhere each mechanism lands (Table I)",
                       float_format=".4f"))


def alpha_sweeps() -> None:
    rows = []
    for alpha in (0.05, 0.1, 0.2, 0.4):
        boot = bootstrapping.BootstrapParameters(n_users=1000)
        fr = freeriding.FreeRidingParameters(CAPACITIES, alpha_bt=alpha)
        # Table II's BitTorrent row models the optimistic slot count,
        # not alpha directly; exploitable bandwidth scales with alpha.
        p_boot = bootstrapping.bootstrap_probability(Algorithm.BITTORRENT,
                                                     boot)
        rows.append([alpha,
                     freeriding.exploitable_resources(Algorithm.BITTORRENT,
                                                      fr),
                     p_boot])
    print(format_table(
        ["alpha_BT", "exploitable bandwidth", "P(bootstrap)"], rows,
        title="\nBitTorrent: altruism fraction trades exposure for "
              "bootstrapping", float_format=".3f"))

    rows = []
    for altruists in (0.25, 0.5, 1.0):
        boot = bootstrapping.BootstrapParameters(n_users=1000,
                                                 altruist_fraction=altruists)
        rows.append([altruists,
                     bootstrapping.bootstrap_probability(
                         Algorithm.REPUTATION, boot)])
    print(format_table(
        ["altruist fraction", "P(bootstrap)"], rows,
        title="\nReputation: bootstrap depends entirely on the altruism "
              "reserve (Table II)", float_format=".3f"))


def reputation_pathology() -> None:
    capacities = np.array([4.0, 2.0, 2.0, 1.0])
    fair_reps = reputation_model.capacity_proportional_reputations(capacities)
    skewed = np.array([0.02, 0.38, 0.35, 0.25])  # fast user under-rated
    rows = []
    for label, reps in (("proportional", fair_reps), ("skewed", skewed)):
        eq = reputation_model.reputation_equilibrium(capacities, reps)
        rows.append([label, eq.fairness, eq.efficiency])
    print(format_table(
        ["reputation vector", "F", "E"], rows,
        title="\nProposition 3: one under-rated fast user wrecks both "
              "metrics", float_format=".4f"))
    print(f"(optimal efficiency for these capacities: "
          f"{metrics.optimal_efficiency(capacities):.4f})")


def fluid_view() -> None:
    """Feed Prop. 2's feasibilities through the Qiu-Srikant fluid model."""
    from repro.core import fluid, piece_availability as pa
    from repro.core.tradeoff import mean_exchange_probability

    dist = pa.PieceCountDistribution.uniform(32)
    rows = []
    for algorithm in (Algorithm.ALTRUISM, Algorithm.TCHAIN,
                      Algorithm.BITTORRENT):
        eta = mean_exchange_probability(algorithm, dist, 200)
        p = fluid.FluidParameters(arrival_rate=10.0, upload_rate=1.0,
                                  effectiveness=eta,
                                  seed_departure_rate=2.0)
        rows.append([algorithm.display_name, eta,
                     fluid.mean_download_time(p)])
    print(format_table(
        ["Mechanism", "effectiveness eta", "fluid mean T"], rows,
        title="\nFluid-model view: exchange feasibility -> download time",
        float_format=".4f"))


def main() -> None:
    frontier()
    alpha_sweeps()
    reputation_pathology()
    fluid_view()


if __name__ == "__main__":
    main()
