#!/usr/bin/env python3
"""A million-peer flash crowd, compared across all seven mechanisms.

The scenario the paper could never run: one million peers flash-crowd
onto a 64-piece file in ten seconds, once per incentive mechanism
(the paper's six plus PropShare). Each run uses the fluid/event-driven
hybrid engine (`repro.sim.hybrid`, docs/SCALING.md): 16 sampled
event-driven subswarms of 1000 peers on the vector-fast backend,
coupled at round boundaries through a Qiu-Srikant fluid aggregate and
scaled back up by shard weight — so each mechanism's population run
takes seconds, not the ~17 CPU-minutes a full vector-fast swarm would
extrapolate to (and could not hold in memory anyway).

The output table is Figure 4 read at population scale: altruism
completes fastest, the fair hybrids (T-Chain, FairTorrent) trade a
little speed for fairness ~1, reciprocity strands the entire million.
Population counts come from the hybrid's conservation ledger; ratio
statistics (fairness, completion fraction) come straight from the
pooled sample, where shard weights cancel.

Run:  PYTHONPATH=src python examples/million_peer_flash_crowd.py
Smaller/faster:  POPULATION=100000 SUBSWARMS=8 python examples/...
"""

import os

from repro.names import EXTENDED_ALGORITHMS, Algorithm
from repro.sim import SimulationConfig
from repro.sim.hybrid import run_hybrid_simulation, shard_plan

POPULATION = int(os.environ.get("POPULATION", "1000000"))
SUBSWARMS = int(os.environ.get("SUBSWARMS", "16"))
SUBSWARM_SIZE = 1000


def population_config(algorithm: Algorithm) -> SimulationConfig:
    """The 1M-peer flash crowd, described by its per-subswarm sample.

    Per-capita infrastructure seed bandwidth matches the validated
    geometry (8 pieces/round per 250 users, docs/SCALING.md), so
    these runs sit inside the shape-contract envelope.
    """
    return SimulationConfig(
        algorithm,
        n_users=SUBSWARM_SIZE,
        n_pieces=64,
        neighbor_count=40,
        max_rounds=600,
        flash_crowd_duration=10.0,
        seeder_capacity=8.0 * (SUBSWARM_SIZE / 250.0),
        seed=42,
        backend="vector-fast",
    ).with_population(POPULATION, n_subswarms=SUBSWARMS,
                      coupling_interval=25)


def main() -> None:
    plan = shard_plan(population_config(Algorithm.TCHAIN))
    print(f"Flash crowd of {plan.population:,} peers, simulated as "
          f"{plan.n_subswarms} subswarms x {plan.subswarm_size} peers "
          f"(each sampled peer represents {plan.weight:g})\n")
    header = (f"{'Mechanism':<14} {'completed':>12} {'frac':>7} "
              f"{'mean t':>8} {'fairness':>9} {'residual':>9}")
    print(header)
    print("-" * len(header))
    for algorithm in EXTENDED_ALGORITHMS:
        metrics = run_hybrid_simulation(
            population_config(algorithm)).metrics
        mean_t = metrics.mean_completion_time()
        fairness = metrics.final_fairness()
        print(f"{algorithm.display_name:<14} "
              f"{metrics.population_completed():>12,.0f} "
              f"{metrics.completion_fraction():>7.1%} "
              f"{mean_t:>8.1f} "
              f"{fairness if fairness is not None else float('nan'):>9.3f} "
              f"{metrics.fluid_residual:>9.3f}")
    print("\ncompleted/frac: population-level completions (ledger-"
          "scaled) and the scale-invariant pooled fraction; mean t: "
          "seconds of simulated time; residual: worst fluid-vs-event "
          "deviation as a population fraction (docs/SCALING.md).")


if __name__ == "__main__":
    main()
