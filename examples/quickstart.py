#!/usr/bin/env python3
"""Quickstart: run one swarm simulation and read the headline metrics.

Simulates a flash crowd of 200 users downloading a 64-piece file under
T-Chain (the paper's reciprocity/reputation hybrid), then checks the
measurement against the paper's analytical predictions:

* fairness near 1 (T-Chain enforces reciprocation, Corollary 1);
* bootstrapping nearly as fast as altruism (Proposition 4);
* flow conservation (Eq. 1) holds exactly.

Run:  python examples/quickstart.py
"""

from repro.core import bootstrapping
from repro.names import Algorithm
from repro.sim import SimulationConfig, run_simulation


def main() -> None:
    config = SimulationConfig(
        algorithm=Algorithm.TCHAIN,
        n_users=200,
        n_pieces=64,
        seeder_capacity=4.0,
        flash_crowd_duration=10.0,
        seed=42,
    )
    print(f"Running {config.algorithm.display_name}: "
          f"{config.n_users} users, {config.n_pieces} pieces ...")
    result = run_simulation(config)
    m = result.metrics

    print(f"  rounds simulated        : {m.rounds_run}")
    print(f"  completed downloads     : {m.completion_fraction():.0%}")
    print(f"  mean completion time    : {m.mean_completion_time():.1f} s")
    print(f"  median completion time  : {m.median_completion_time():.1f} s")
    print(f"  final fairness (u/d)    : {m.final_fairness():.3f}")
    print(f"  mean time to first piece: {m.mean_bootstrap_time():.2f} s")
    print(f"  conservation (Eq. 1)    : {result.conservation_holds()}")

    # Compare bootstrapping against the analytical model (Table II).
    params = bootstrapping.BootstrapParameters(
        n_users=config.n_users, n_seeder=1, pieces_per_slot=2,
        bootstrapped=config.n_users // 2, pi_dr=0.3,
        n_ft=config.n_users // 2)
    p_tchain = bootstrapping.bootstrap_probability(Algorithm.TCHAIN, params)
    p_altruism = bootstrapping.bootstrap_probability(Algorithm.ALTRUISM, params)
    print("\nTable II model (half the swarm bootstrapped):")
    print(f"  P(bootstrap | T-Chain)  : {p_tchain:.1%}")
    print(f"  P(bootstrap | altruism) : {p_altruism:.1%}")
    print("  -> T-Chain nearly matches altruism's bootstrapping, as the"
          " paper predicts.")


if __name__ == "__main__":
    main()
