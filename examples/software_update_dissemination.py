#!/usr/bin/env python3
"""Choosing an incentive mechanism for IoT software-update dissemination.

The paper's motivating scenario (Section I): a cloud server must push
a large software update to a fleet of devices, and dissemination is
far faster when devices forward pieces to each other. The operator
must pick the incentive mechanism — and the right choice depends on
whether devices can be compromised into free-riding.

This example runs the full mechanism sweep twice (all-compliant fleet,
then a fleet with 20% free-riding devices mounting targeted attacks)
and prints an operator-facing recommendation table, illustrating the
paper's headline conclusion: altruism wins only in a trusted fleet;
T-Chain keeps both efficiency and fairness when trust is absent.

Run:  python examples/software_update_dissemination.py
"""

from repro.experiments.scenarios import default_scale, run_all_algorithms
from repro.names import ALL_ALGORITHMS
from repro.utils import format_table


def sweep(freerider_fraction: float):
    base = default_scale(seed=11)
    results = run_all_algorithms(base,
                                 freerider_fraction=freerider_fraction)
    rows = []
    for algorithm in ALL_ALGORITHMS:
        m = results[algorithm].metrics
        rows.append([
            algorithm.display_name,
            m.mean_completion_time(),
            m.completion_fraction(),
            m.final_fairness(),
            m.mean_bootstrap_time(),
            m.susceptibility(),
        ])
    return rows


def main() -> None:
    headers = ["Mechanism", "mean update time (s)", "devices updated",
               "fairness (u/d)", "time to 1st piece (s)", "leaked to rogues"]

    print("Scenario A: all devices trustworthy")
    print(format_table(headers, sweep(0.0), float_format=".3g"))

    print("\nScenario B: 20% compromised (free-riding) devices,"
          " targeted attacks")
    print(format_table(headers, sweep(0.2), float_format=".3g"))

    print("""
Reading the tables:
 * Trusted fleet  -> altruism (random push) updates the fleet fastest;
   every mechanism except pure reciprocity completes.
 * Untrusted fleet -> altruism and FairTorrent leak the most bandwidth
   to rogue devices; T-Chain leaks almost nothing while keeping
   fairness ~1 and completion times comparable to the other hybrids —
   the paper's recommendation for adversarial deployments.
 * Pure reciprocity never disseminates at all (Lemma 2): no device can
   initiate an exchange.""")


if __name__ == "__main__":
    main()
