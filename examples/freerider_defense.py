#!/usr/bin/env python3
"""Stress-testing incentive mechanisms against free-riding attacks.

Sweeps the free-rider population share and the attack arsenal
(Section IV-C / V-B2) for each mechanism and reports how much user
upload bandwidth the attackers extract — the paper's susceptibility
metric — plus the collateral damage to compliant users' download times.

Demonstrates three of the paper's findings:

1. susceptibility ordering: altruism > FairTorrent > BitTorrent >
   reputation > T-Chain ~ reciprocity ~ 0 (Fig. 5a);
2. the large-view exploit roughly doubles what BitTorrent and the
   reputation system leak (Fig. 6a);
3. whitewashing defeats FairTorrent's deficit memory, while T-Chain's
   key escrow shrugs off even collusion (Table III).

Run:  python examples/freerider_defense.py
"""

from repro.experiments.scenarios import default_scale, with_freeriders
from repro.names import ALL_ALGORITHMS, Algorithm
from repro.sim import AttackConfig, run_simulation
from repro.utils import format_table


def fraction_sweep() -> None:
    fractions = (0.1, 0.2, 0.3)
    rows = []
    for algorithm in ALL_ALGORITHMS:
        row = [algorithm.display_name]
        for fraction in fractions:
            config = with_freeriders(default_scale(algorithm, seed=5),
                                     fraction=fraction)
            metrics = run_simulation(config).metrics
            row.append(metrics.susceptibility())
        rows.append(row)
    headers = ["Mechanism"] + [f"{f:.0%} free-riders" for f in fractions]
    print(format_table(headers, rows,
                       title="Susceptibility vs. free-rider share "
                             "(targeted attacks)",
                       float_format=".3f"))


def attack_matrix() -> None:
    attacks = [
        ("simple", AttackConfig()),
        ("large-view", AttackConfig(large_view=True)),
        ("whitewash", AttackConfig(whitewash_interval=30)),
        ("collusion", AttackConfig(collusion=True)),
        ("false praise", AttackConfig(false_praise=True)),
    ]
    rows = []
    for algorithm in ALL_ALGORITHMS:
        if algorithm is Algorithm.RECIPROCITY:
            continue  # susceptibility is identically zero (no uploads)
        row = [algorithm.display_name]
        for _, attack in attacks:
            config = with_freeriders(default_scale(algorithm, seed=5),
                                     fraction=0.2, attack=attack)
            metrics = run_simulation(config).metrics
            row.append(metrics.susceptibility())
        rows.append(row)
    headers = ["Mechanism"] + [name for name, _ in attacks]
    print(format_table(headers, rows,
                       title="\nSusceptibility by attack type "
                             "(20% free-riders)",
                       float_format=".3f"))


def main() -> None:
    fraction_sweep()
    attack_matrix()
    print("""
Notes:
 * 'collusion' only matters for T-Chain (fake indirect-reciprocity
   confirmations) and 'false praise' only for the reputation system —
   against other mechanisms they reduce to simple free-riding.
 * whitewashing resurrects FairTorrent free-riders' zero deficits, so
   FairTorrent's column grows with it; T-Chain's stays near zero
   because keys are only released against actual reciprocation.""")


if __name__ == "__main__":
    main()
