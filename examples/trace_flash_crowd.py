#!/usr/bin/env python3
"""Watch a flash crowd from the inside with the observability layer.

Runs a 150-peer flash crowd (20% free-riders) under T-Chain with every
instrument in :mod:`repro.obs` switched on — event tracing, per-round
gauge sampling, span profiling — and narrates the run from what they
recorded:

* **availability entropy** dipping as the piece-poor crowd floods in,
  then climbing as rarest-first spreads piece variety;
* **bootstrap waits** stretching while the crowd outruns the seeder;
* **free-rider intake** pinned near zero as T-Chain's indirect
  reciprocity locks the free-riders out;
* the **self-profile**: where the simulator's own wall-clock went.

Because the layer is observation-only, this instrumented run produces
the byte-identical metrics digest of the same seed uninstrumented
(docs/OBSERVABILITY.md explains the contract). The script finishes by
writing a Chrome trace you can open in https://ui.perfetto.dev.

Run:  PYTHONPATH=src python examples/trace_flash_crowd.py
"""

from repro.names import Algorithm
from repro.obs import to_chrome_trace
from repro.sim import Simulation, SimulationConfig

TRACE_PATH = "flash_crowd_trace.json"


def main() -> None:
    config = SimulationConfig(
        algorithm=Algorithm.TCHAIN,
        n_users=150,
        n_pieces=48,
        freerider_fraction=0.2,
        flash_crowd_duration=8.0,
        seed=7,
    ).with_obs(
        trace=True,
        # Transfers are the hot category; 1-in-8 sampling keeps the
        # ring representative without drowning out rare events.
        trace_sample_rates=(("transfer", 8),),
        sample_every=2,
        profile=True,
    )
    print(f"Running {config.algorithm.display_name}: {config.n_users} "
          f"users ({config.n_freeriders} free-riders), "
          f"{config.n_pieces} pieces, fully instrumented ...\n")
    sim = Simulation(config)
    result = sim.run()
    obs = sim.obs
    assert obs is not None and obs.series is not None

    # --- The swarm's shape over time, straight from the gauge store.
    print("Gauge dashboard (one sparkline per sampled series):")
    print(obs.series.dashboard(names=[
        "availability_entropy", "progress_p50", "active_peers",
        "active_freeriders", "freerider_intake"]))

    entropy_col = [v for v in obs.series.column("availability_entropy")
                   if v == v]
    print(f"\navailability entropy: dips to {min(entropy_col):.2f} bits "
          f"as the piece-poor crowd floods in, then rarest-first lifts "
          f"it to {max(entropy_col):.2f} bits")

    # --- What the event ring caught.
    assert obs.tracer is not None
    boots = obs.tracer.events("bootstrap")
    waits = [event.fields["wait"] for event in boots]
    if waits:
        print(f"bootstraps traced: {len(boots)}; first-piece wait "
              f"{min(waits):.1f}s best, {max(waits):.1f}s worst "
              f"(the crowd outruns the seeder)")
    summary = obs.tracer.summary()
    print(f"trace ring: {summary['retained']} events retained, "
          f"{summary['evicted']} evicted "
          f"(transfers sampled 1-in-{config.obs.rate_for('transfer')})")

    # --- Outcome + the self-profile.
    m = result.metrics
    print(f"\ncompliant completions: {m.completion_fraction():.0%}; "
          f"final fairness {m.final_fairness():.3f}")
    assert obs.profiler is not None
    print()
    print(obs.profiler.table())

    # --- Export for Perfetto.
    with open(TRACE_PATH, "w", encoding="utf-8") as handle:
        handle.write(to_chrome_trace(obs.tracer.events(), obs.series,
                                     label="flash crowd (T-Chain)"))
    print(f"\nwrote {TRACE_PATH} — open it in https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
