#!/usr/bin/env python3
"""Charting graceful degradation under transfer loss.

Injects transfer loss into every incentive mechanism's swarm — the
sender's upload budget is spent but nothing is delivered, exactly the
failure a flaky overlay link produces — and charts completion time and
fairness as the loss rate rises from 0% to 30%.

Two findings worth noticing:

1. every mechanism degrades *gracefully*: completion time grows
   smoothly with the loss rate and the swarm still finishes, because
   lost pieces are simply re-requested in later rounds;
2. the ranking of the mechanisms is stable under faults — T-Chain's
   key escrow adds retransmission rounds (an encrypted piece whose
   key is lost must be re-sent) yet stays among the fairest.

The sweep itself uses the crash-safe resilient runner, so an
interrupted run resumes from its checkpoint journal instead of
recomputing finished replicates.

Run:  python examples/fault_tolerance_sweep.py
"""

from repro.experiments.replicates import run_resilient_sweep
from repro.experiments.scenarios import smoke_scale
from repro.names import EXTENDED_ALGORITHMS
from repro.sim import FaultConfig
from repro.utils import format_table

LOSS_RATES = (0.0, 0.1, 0.2, 0.3)
SEEDS = (11, 22, 33)


def sweep(metric: str) -> list:
    rows = []
    for algorithm in EXTENDED_ALGORITHMS:
        row = [algorithm.display_name]
        for rate in LOSS_RATES:
            config = smoke_scale(algorithm, seed=SEEDS[0]).with_faults(
                FaultConfig(transfer_loss_rate=rate))
            result = run_resilient_sweep(config, SEEDS)
            row.append(result.metrics[metric].mean)
        rows.append(row)
    return rows


def chart(metric: str, title: str, float_format: str) -> None:
    headers = ["Mechanism"] + [f"{r:.0%} loss" for r in LOSS_RATES]
    print(format_table(headers, sweep(metric), title=title,
                       float_format=float_format))


def main() -> None:
    chart("mean_completion_time",
          "Mean completion time (s) vs. transfer-loss rate "
          f"({len(SEEDS)} replicates)", ".2f")
    chart("final_fairness",
          "\nFairness (received/uploaded ratio) vs. transfer-loss rate",
          ".3f")
    print("""
Notes:
 * reciprocity shows 'nan' completion times: it never bootstraps at
   this scale even without faults, so the aggregate is missing rather
   than a misleading infinity (see MetricSummary.n_missing);
 * pass journal_path= to run_resilient_sweep to checkpoint each
   replicate; re-running after an interruption resumes where it left
   off and produces identical aggregates.""")


if __name__ == "__main__":
    main()
