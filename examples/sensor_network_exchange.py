#!/usr/bin/env python3
"""Sensor-network measurement exchange with churn and steady arrivals.

The paper's second motivating scenario (Section I): sensors in the
Internet of Things exchanging measurement data with each other. Unlike
a software-update flash crowd, sensors join *gradually* (a Poisson
stream) and are flaky — some power down before collecting the full
data set (churn). This example uses the extensions built for exactly
this regime:

* ``arrival_process="poisson"`` — a steady 5 sensors/s join stream;
* ``abort_rate`` — 1% of incomplete sensors drop out per second;
* ``run_replicates`` — results quoted as mean +/- 95% CI over seeds;
* ``ascii_chart`` — collection progress drawn in the terminal.

It shows the paper's orderings are not flash-crowd artifacts: altruism
still collects fastest, T-Chain still keeps fairness ~1 with near-zero
leakage to compromised (free-riding) sensors, and churn hurts the
reciprocity-heavy mechanisms most (their pairwise histories evaporate
with the departed).

Run:  python examples/sensor_network_exchange.py
"""


from repro.experiments.replicates import run_replicates
from repro.names import Algorithm
from repro.sim import SimulationConfig, run_simulation, targeted_attack_for
from repro.utils import ascii_chart, format_table

SEEDS = (7, 8, 9)
MECHANISMS = (Algorithm.ALTRUISM, Algorithm.TCHAIN, Algorithm.BITTORRENT,
              Algorithm.FAIRTORRENT)


def sensor_config(algorithm: Algorithm,
                  freeriders: float = 0.0) -> SimulationConfig:
    config = SimulationConfig(
        algorithm=algorithm,
        n_users=150,
        n_pieces=48,          # the measurement set to collect
        seeder_capacity=3.0,  # the gateway node
        arrival_process="poisson",
        arrival_rate=5.0,
        abort_rate=0.01,      # flaky sensors
        freerider_fraction=freeriders,
        max_rounds=400,
    )
    if freeriders > 0:
        config = config.with_attack(targeted_attack_for(algorithm),
                                    freerider_fraction=freeriders)
    return config


def replicated_table(freeriders: float) -> None:
    rows = []
    for algorithm in MECHANISMS:
        result = run_replicates(sensor_config(algorithm, freeriders), SEEDS)
        rows.append([
            algorithm.display_name,
            result["mean_completion_time"].mean,
            result["mean_completion_time"].std,
            result["completion_fraction"].mean,
            result["final_fairness"].mean,
            result["susceptibility"].mean,
        ])
    title = (f"Sensor fleet, {freeriders:.0%} compromised sensors "
             f"(mean over {len(SEEDS)} seeds)")
    print(format_table(
        ["Mechanism", "collect T", "std", "collected", "fairness",
         "leak"],
        rows, title=title, float_format=".3g"))
    print()


def progress_chart() -> None:
    series = {}
    for algorithm in (Algorithm.ALTRUISM, Algorithm.TCHAIN,
                      Algorithm.BITTORRENT):
        metrics = run_simulation(sensor_config(algorithm).with_seed(7)).metrics
        series[algorithm.display_name] = [
            (s.time, s.completed_fraction) for s in metrics.samples]
    print(ascii_chart(series, width=64, height=12,
                      title="Fraction of sensors with the full data set"))


def main() -> None:
    replicated_table(0.0)
    replicated_table(0.2)
    progress_chart()
    print("""
Reading the output:
 * With a steady join stream and churn the flash-crowd orderings
   persist: altruism collects fastest, the hybrids are comparable,
   and T-Chain's leak to compromised sensors stays near zero while
   altruism hands them a full share.
 * 'collected' < 1 reflects churn, not protocol failure: flaky
   sensors power down before finishing.""")


if __name__ == "__main__":
    main()
