"""Ablation studies over the design choices DESIGN.md calls out.

The paper's analysis makes several parameters load-bearing; each sweep
here varies one of them in the *simulator* and measures the effect the
analytical model predicts:

* ``alpha_bt`` — Table III says BitTorrent's exploitable bandwidth is
  exactly its optimistic share; Table II says the same share is its
  only bootstrap channel. Sweeping it trades exposure for
  bootstrapping speed.
* ``alpha_r`` — the reputation system's altruism reserve plays the
  identical double role.
* ``freerider_fraction`` — susceptibility and efficiency degradation
  as the attacker population grows (Fig. 5's 20% is one point).
* ``seeder_capacity`` — reciprocity's only dissemination channel;
  everyone else's warm-up accelerant.
* ``whitewash_interval`` — how often FairTorrent free-riders must shed
  their accumulated deficits to keep eating (Section IV-C).
* ``tchain_patience`` — how long T-Chain uploaders tolerate unmet
  obligations before blacklisting; the enforcement knob behind its
  near-zero susceptibility.

Every sweep returns a list of plain-dict rows (one per parameter
value) so benches and notebooks can consume them directly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional

from repro.names import Algorithm
from repro.sim.config import AttackConfig, SimulationConfig
from repro.sim.runner import run_simulation

__all__ = [
    "piece_selection_sweep",
    "alpha_bt_sweep",
    "alpha_r_sweep",
    "freerider_fraction_sweep",
    "seeder_capacity_sweep",
    "whitewash_interval_sweep",
    "tchain_patience_sweep",
]


def _measure(config: SimulationConfig) -> Dict[str, float]:
    metrics = run_simulation(config).metrics
    return {
        "mean_completion_time": metrics.mean_completion_time(),
        "completion_fraction": metrics.completion_fraction(),
        "final_fairness": metrics.final_fairness(),
        "mean_bootstrap_time": metrics.mean_bootstrap_time(),
        "susceptibility": metrics.susceptibility(),
    }


def alpha_bt_sweep(base: SimulationConfig,
                   values: Iterable[float],
                   freerider_fraction: float = 0.2) -> List[Dict[str, float]]:
    """BitTorrent: optimistic-unchoke share vs. exposure and bootstrap."""
    rows = []
    for alpha in values:
        config = replace(
            base.with_algorithm(Algorithm.BITTORRENT),
            freerider_fraction=freerider_fraction,
            strategy_params=replace(base.strategy_params, alpha_bt=alpha))
        rows.append({"alpha_bt": float(alpha), **_measure(config)})
    return rows


def alpha_r_sweep(base: SimulationConfig,
                  values: Iterable[float],
                  freerider_fraction: float = 0.2) -> List[Dict[str, float]]:
    """Reputation: altruism reserve vs. exposure and bootstrap."""
    rows = []
    for alpha in values:
        config = replace(
            base.with_algorithm(Algorithm.REPUTATION),
            freerider_fraction=freerider_fraction,
            strategy_params=replace(base.strategy_params, alpha_r=alpha))
        rows.append({"alpha_r": float(alpha), **_measure(config)})
    return rows


def freerider_fraction_sweep(base: SimulationConfig,
                             algorithm: Algorithm,
                             fractions: Iterable[float],
                             ) -> List[Dict[str, float]]:
    """Susceptibility / efficiency as the attacker share grows."""
    from repro.sim.config import targeted_attack_for

    rows = []
    for fraction in fractions:
        config = base.with_algorithm(algorithm).with_attack(
            targeted_attack_for(algorithm), freerider_fraction=fraction)
        rows.append({"freerider_fraction": float(fraction),
                     **_measure(config)})
    return rows


def seeder_capacity_sweep(base: SimulationConfig,
                          algorithm: Algorithm,
                          capacities: Iterable[float],
                          ) -> List[Dict[str, float]]:
    """Completion and bootstrap speed vs. the seeder's bandwidth."""
    rows = []
    for capacity in capacities:
        config = replace(base.with_algorithm(algorithm),
                         seeder_capacity=float(capacity))
        rows.append({"seeder_capacity": float(capacity), **_measure(config)})
    return rows


def whitewash_interval_sweep(base: SimulationConfig,
                             intervals: Iterable[Optional[int]],
                             freerider_fraction: float = 0.2,
                             ) -> List[Dict[str, float]]:
    """FairTorrent: how fast identity resets re-open the deficit door.

    ``None`` means no whitewashing (simple free-riding only).
    """
    rows = []
    for interval in intervals:
        config = base.with_algorithm(Algorithm.FAIRTORRENT).with_attack(
            AttackConfig(whitewash_interval=interval),
            freerider_fraction=freerider_fraction)
        rows.append({
            "whitewash_interval": (float("inf") if interval is None
                                   else float(interval)),
            **_measure(config),
        })
    return rows


def tchain_patience_sweep(base: SimulationConfig,
                          patience_values: Iterable[int],
                          freerider_fraction: float = 0.2,
                          ) -> List[Dict[str, float]]:
    """T-Chain: obligation patience vs. what free-riders can extract."""
    rows = []
    for patience in patience_values:
        config = replace(
            base.with_algorithm(Algorithm.TCHAIN).with_attack(
                AttackConfig(collusion=True),
                freerider_fraction=freerider_fraction),
            strategy_params=replace(base.strategy_params,
                                    tchain_obligation_patience=patience))
        rows.append({"patience": int(patience), **_measure(config)})
    return rows


def piece_selection_sweep(base: SimulationConfig,
                          algorithm: Algorithm,
                          policies: Iterable[str] = ("rarest", "random"),
                          ) -> List[Dict[str, object]]:
    """Local-rarest-first vs. uniform piece selection (ref [27]).

    The effect is mechanism-dependent: T-Chain leans on piece-set
    diversity (its indirect reciprocity needs users at different
    progress levels), while BitTorrent's optimistic channel cares
    less — so this sweep reports rather than asserts a direction.
    """
    rows: List[Dict[str, object]] = []
    for policy in policies:
        config = replace(base.with_algorithm(algorithm),
                         piece_selection=policy)
        rows.append({"piece_selection": policy, **_measure(config)})
    return rows
