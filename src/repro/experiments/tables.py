"""Regenerate the paper's analytical tables (Tables I-III, Figs. 2-3).

Each function returns structured rows *and* can render the same table
as text via :func:`repro.utils.format_table`, so the benchmark harness
prints exactly what the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core import equilibrium as eq
from repro.core import bootstrapping as boot
from repro.core import freeriding as fr
from repro.core import piece_availability as pa
from repro.core import tradeoff
from repro.names import ALL_ALGORITHMS, Algorithm
from repro.utils import format_table

__all__ = [
    "table1_rows",
    "table1_text",
    "table2_rows",
    "table2_text",
    "table3_rows",
    "table3_text",
    "figure2_rankings",
    "figure3_rankings",
]

#: Capacity vector used for illustrative analytic tables: the default
#: simulation population's class capacities at a 20-user scale.
EXAMPLE_CAPACITIES = (
    [6.0] * 2 + [3.0] * 6 + [1.0] * 8 + [0.5] * 4
)


def table1_rows(params: Optional[eq.EquilibriumParameters] = None,
                ) -> List[Dict[str, object]]:
    """Table I: per-algorithm equilibrium download utilisation.

    Each row reports the algorithm, the mean upload and download
    utilisation, and the resulting fairness and efficiency metrics.
    """
    params = params or eq.EquilibriumParameters(EXAMPLE_CAPACITIES)
    results = eq.table1(params)
    rows: List[Dict[str, object]] = []
    for algorithm in ALL_ALGORITHMS:
        result = results[algorithm]
        utilisation = eq.download_utilization(algorithm, params)
        rows.append({
            "algorithm": algorithm.display_name,
            "mean_upload": float(np.mean(result.upload_rates)),
            "mean_download_utilisation": float(np.mean(utilisation)),
            "fairness_F": result.fairness,
            "efficiency_E": result.efficiency,
        })
    return rows


def table1_text(params: Optional[eq.EquilibriumParameters] = None) -> str:
    rows = table1_rows(params)
    return format_table(
        ["Algorithm", "mean u_i", "mean (d_i - u_S/N)", "F (Eq. 3)",
         "E (Eq. 2)"],
        [[r["algorithm"], r["mean_upload"], r["mean_download_utilisation"],
          r["fairness_F"], r["efficiency_E"]] for r in rows],
        title="Table I - equilibrium rates (perfect piece availability)",
    )


def table2_rows(params: Optional[boot.BootstrapParameters] = None,
                ) -> List[Dict[str, object]]:
    """Table II: bootstrap probabilities (paper's example column)."""
    params = params or boot.BootstrapParameters(n_users=1000)
    probabilities = boot.table2(params)
    return [{
        "algorithm": algorithm.display_name,
        "probability": probabilities[algorithm],
        "percent": 100.0 * probabilities[algorithm],
    } for algorithm in ALL_ALGORITHMS]


def table2_text(params: Optional[boot.BootstrapParameters] = None) -> str:
    rows = table2_rows(params)
    return format_table(
        ["Algorithm", "P(bootstrap)", "%"],
        [[r["algorithm"], r["probability"], r["percent"]] for r in rows],
        title=("Table II - bootstrap probabilities "
               "(N=1000, n_S=1, K=5, z=500, pi_DR=0.5, n_BT=4, "
               "omega=0.75, n_FT=500)"),
        float_format=".3f",
    )


def table3_rows(params: Optional[fr.FreeRidingParameters] = None,
                ) -> List[Dict[str, object]]:
    """Table III: exploitable resources and collusion probability."""
    params = params or fr.FreeRidingParameters(
        EXAMPLE_CAPACITIES, n_colluders=4)
    table = fr.table3(params)
    total = params.total_capacity
    rows: List[Dict[str, object]] = []
    for algorithm in ALL_ALGORITHMS:
        entry = table[algorithm]
        exploitable = entry["exploitable"]
        rows.append({
            "algorithm": algorithm.display_name,
            "exploitable": exploitable,
            "exploitable_fraction": exploitable / total if total else 0.0,
            "collusion": entry["collusion"],
        })
    return rows


def table3_text(params: Optional[fr.FreeRidingParameters] = None) -> str:
    rows = table3_rows(params)
    return format_table(
        ["Algorithm", "Exploitable", "Fraction of sum U", "P(collusion)"],
        [[r["algorithm"], r["exploitable"], r["exploitable_fraction"],
          "n/a" if r["collusion"] is None else r["collusion"]]
         for r in rows],
        title="Table III - resources available for free-riding",
        float_format=".3f",
    )


def figure2_rankings(params: Optional[eq.EquilibriumParameters] = None,
                     ) -> Dict[str, List[Algorithm]]:
    """Figure 2: idealized fairness and efficiency orderings."""
    params = params or eq.EquilibriumParameters(EXAMPLE_CAPACITIES)
    return {
        "efficiency": tradeoff.figure2_efficiency_ranking(params),
        "fairness": tradeoff.figure2_fairness_ranking(params),
    }


def figure3_rankings(M: int = 64, n_users: int = 200,
                     distribution: Optional[pa.PieceCountDistribution] = None,
                     alpha_bt: float = 0.2) -> Dict[str, object]:
    """Figure 3: efficiency ordering under piece availability.

    Evaluated, by default, at a uniform piece-count distribution —
    a swarm whose users' progress varies widely, as after a flash
    crowd. That heterogeneity is what powers T-Chain's indirect
    reciprocity: pairs where one user holds many pieces and the other
    few are exactly the ``q(j,l)(1 - q(l,j))`` term of Eq. 6. (With a
    concentrated distribution, e.g. Binomial(M, 0.5), that term
    vanishes and BitTorrent's optimistic unchoking wins instead —
    which is Eq. 8's condition read in the other direction.)
    """
    distribution = distribution or pa.PieceCountDistribution.uniform(M)
    ranking = tradeoff.figure3_efficiency_ranking(distribution, n_users,
                                                  alpha_bt)
    probabilities = {
        algorithm: tradeoff.mean_exchange_probability(
            algorithm, distribution, n_users, alpha_bt)
        for algorithm in ranking
    }
    return {"ranking": ranking, "probabilities": probabilities}
