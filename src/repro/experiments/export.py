"""Export simulation results to JSON/CSV for external analysis.

The experiment harness renders text tables; this module provides the
machine-readable companions: one row per peer, one row per time-series
sample, or a compact scalar summary — all plain built-in types so
``json.dump`` works directly and CSV writers need no adapters.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Any, Dict, List

from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import SimulationResult

__all__ = [
    "summary_dict",
    "peers_table",
    "samples_table",
    "result_to_json",
    "rows_to_csv",
]


def _finite(value: float) -> Any:
    """JSON-safe scalar: inf/nan become None."""
    if value is None or (isinstance(value, float)
                         and not math.isfinite(value)):
        return None
    return value


def summary_dict(result: SimulationResult) -> Dict[str, Any]:
    """Scalar summary of one run (config + headline metrics)."""
    config = result.config
    metrics = result.metrics
    return {
        "algorithm": config.algorithm.value,
        "n_users": config.n_users,
        "n_pieces": config.n_pieces,
        "seed": config.seed,
        "freerider_fraction": config.freerider_fraction,
        "arrival_process": config.arrival_process,
        "rounds_run": metrics.rounds_run,
        "mean_completion_time": _finite(metrics.mean_completion_time()),
        "median_completion_time": _finite(metrics.median_completion_time()),
        "completion_fraction": metrics.completion_fraction(),
        "final_fairness": _finite(metrics.final_fairness()),
        "mean_bootstrap_time": _finite(metrics.mean_bootstrap_time()),
        "susceptibility": metrics.susceptibility(),
        "total_uploaded": metrics.total_uploaded,
        "peer_uploaded": metrics.peer_uploaded,
        "digest_lineage": metrics.digest_lineage,
        "backend_downgraded": metrics.backend_downgraded,
    }


def peers_table(metrics: SimulationMetrics) -> List[Dict[str, Any]]:
    """One row per peer: the per-user data behind Figures 4-6."""
    return [{
        "peer_id": p.peer_id,
        "lineage_id": p.lineage_id,
        "capacity": p.capacity,
        "is_freerider": p.is_freerider,
        "arrival_time": p.arrival_time,
        "bootstrap_time": _finite(p.bootstrap_time),
        "completion_time": _finite(p.completion_time),
        "download_duration": _finite(p.download_duration),
        "uploaded": p.uploaded,
        "downloaded": p.downloaded,
    } for p in metrics.peers]


def samples_table(metrics: SimulationMetrics) -> List[Dict[str, Any]]:
    """One row per sampled round: the time series behind Figures 4-6."""
    return [{
        "time": s.time,
        "active_peers": s.active_peers,
        "arrived": s.arrived,
        "bootstrapped": s.bootstrapped,
        "bootstrapped_fraction": s.bootstrapped_fraction,
        "completed": s.completed,
        "fairness_ud": _finite(s.fairness_ud),
        "fairness_du": _finite(s.fairness_du),
        "total_uploaded": s.total_uploaded,
        "susceptibility": s.susceptibility,
    } for s in metrics.samples]


def result_to_json(result: SimulationResult, include_series: bool = True,
                   indent: int = 2) -> str:
    """Serialise one run — summary plus (optionally) full tables."""
    payload: Dict[str, Any] = {"summary": summary_dict(result)}
    if include_series:
        payload["peers"] = peers_table(result.metrics)
        payload["samples"] = samples_table(result.metrics)
    return json.dumps(payload, indent=indent)


def rows_to_csv(rows: List[Dict[str, Any]]) -> str:
    """Render a list of uniform dicts as CSV text."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()
