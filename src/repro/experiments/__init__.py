"""Experiment harness: scenarios and per-table/figure runners.

* :mod:`repro.experiments.scenarios` — canonical configurations
  (paper scale and scaled-down variants) and algorithm sweeps;
* :mod:`repro.experiments.tables` — Tables I-III and the Figure 2/3
  analytic rankings;
* :mod:`repro.experiments.figures` — the Figure 4-6 simulation sweeps;
* :mod:`repro.experiments.report` — everything, rendered as one text
  report.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    export,
    figures,
    hybrid_validation,
    replicates,
    report,
    scenarios,
    tables,
    trace_analysis,
    validation,
)
from repro.experiments.figures import figure4, figure5, figure6  # noqa: F401
from repro.experiments.report import full_report  # noqa: F401
from repro.experiments.scenarios import (  # noqa: F401
    default_scale,
    paper_scale,
    run_all_algorithms,
    smoke_scale,
    with_freeriders,
)

__all__ = [
    "ablations",
    "export",
    "figures",
    "hybrid_validation",
    "replicates",
    "report",
    "scenarios",
    "tables",
    "trace_analysis",
    "validation",
    "figure4",
    "figure5",
    "figure6",
    "full_report",
    "default_scale",
    "paper_scale",
    "run_all_algorithms",
    "smoke_scale",
    "with_freeriders",
]
