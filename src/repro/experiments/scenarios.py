"""Canonical experiment scenarios (Section V-A and scaled variants).

The paper's setup: one seeder, 1000 users arriving in a 10-second
flash crowd, a 128 MB file, departure on completion. With 256 KB
pieces that is 512 pieces; we expose that as :func:`paper_scale`, and
two scaled-down variants that preserve the swarm dynamics (the same
flash-crowd/seeder/capacity shape) while running in seconds:

* :func:`default_scale` — 200 users, 64 pieces; the workhorse used by
  the benchmark harness (each run takes well under a second).
* :func:`smoke_scale` — 60 users, 24 pieces; used by integration
  tests.

All scenario builders return a :class:`SimulationConfig` for one
algorithm; experiments sweep algorithms with ``config.with_algorithm``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.names import ALL_ALGORITHMS, Algorithm
from repro.sim.config import (
    AttackConfig,
    SimulationConfig,
    targeted_attack_for,
)
from repro.sim.runner import SimulationResult, run_simulation

__all__ = [
    "paper_scale",
    "default_scale",
    "smoke_scale",
    "with_freeriders",
    "run_all_algorithms",
]

#: Free-rider share used in Figures 5 and 6.
PAPER_FREERIDER_FRACTION = 0.2


def paper_scale(algorithm: Algorithm = Algorithm.TCHAIN,
                seed: int = 0) -> SimulationConfig:
    """The full Section V-A configuration: 1000 users, 512 pieces."""
    return SimulationConfig(
        algorithm=algorithm,
        n_users=1000,
        n_pieces=512,
        seeder_capacity=8.0,
        flash_crowd_duration=10.0,
        neighbor_count=50,
        max_rounds=2000,
        seed=seed,
    )


def default_scale(algorithm: Algorithm = Algorithm.TCHAIN,
                  seed: int = 0) -> SimulationConfig:
    """Scaled-down default: 200 users, 64 pieces, same dynamics."""
    return SimulationConfig(
        algorithm=algorithm,
        n_users=200,
        n_pieces=64,
        seeder_capacity=4.0,
        flash_crowd_duration=10.0,
        neighbor_count=40,
        max_rounds=500,
        seed=seed,
    )


def smoke_scale(algorithm: Algorithm = Algorithm.TCHAIN,
                seed: int = 0) -> SimulationConfig:
    """Tiny configuration for fast integration tests."""
    return SimulationConfig(
        algorithm=algorithm,
        n_users=60,
        n_pieces=24,
        seeder_capacity=3.0,
        flash_crowd_duration=5.0,
        neighbor_count=20,
        max_rounds=250,
        seed=seed,
    )


def with_freeriders(config: SimulationConfig,
                    fraction: float = PAPER_FREERIDER_FRACTION,
                    large_view: bool = False,
                    attack: Optional[AttackConfig] = None) -> SimulationConfig:
    """Add the Section V-B2 free-rider population to a scenario.

    By default the most effective targeted attack for the scenario's
    algorithm is used (simple free-riding, plus collusion for T-Chain
    and whitewashing for FairTorrent); pass ``attack`` to override.
    """
    chosen = attack if attack is not None else targeted_attack_for(
        config.algorithm, large_view=large_view)
    if attack is not None and large_view:
        chosen = chosen.with_large_view()
    return config.with_attack(chosen, freerider_fraction=fraction)


def run_all_algorithms(base: SimulationConfig,
                       algorithms: Optional[Iterable[Algorithm]] = None,
                       freerider_fraction: float = 0.0,
                       large_view: bool = False,
                       processes: int = 1,
                       telemetry: Optional[Dict] = None,
                       ) -> Dict[Algorithm, SimulationResult]:
    """Run one scenario under every algorithm (attacks re-targeted).

    This is the sweep behind each of Figures 4-6: identical swarm,
    identical seeds, only the incentive mechanism (and, if free-riders
    are present, the matching targeted attack) changes.

    ``processes > 1`` fans the independent runs out over the persistent
    worker-pool engine (:mod:`repro.experiments.executor`) — results
    are identical to the serial sweep (each run is fully determined by
    its config), a crashed worker is respawned and its run retried
    once, and passing a dict as ``telemetry`` fills it with the
    engine's utilization summary.
    """
    selected = tuple(Algorithm.parse(a) for a in (algorithms or ALL_ALGORITHMS))
    configs: Dict[Algorithm, SimulationConfig] = {}
    for algorithm in selected:
        config = base.with_algorithm(algorithm)
        if freerider_fraction > 0:
            config = with_freeriders(config, freerider_fraction,
                                     large_view=large_view)
        configs[algorithm] = config
    if processes <= 1 or len(configs) <= 1:
        return {a: run_simulation(c) for a, c in configs.items()}

    from repro.experiments.executor import TaskSpec, run_tasks

    specs = [TaskSpec(key=algorithm, fn=run_simulation, args=(config,),
                      max_attempts=2)
             for algorithm, config in configs.items()]
    report = run_tasks(specs, jobs=min(processes, len(configs)))
    if telemetry is not None:
        telemetry.update(report.stats.as_dict())
    failed = [r for r in report.results if not r.ok]
    if failed:
        details = "; ".join(f"{r.key.value}: {r.error}" for r in failed)
        raise RuntimeError(f"algorithm sweep failed: {details}")
    return {r.key: r.value for r in report.results}
