"""Persistent multi-worker execution engine for experiment fan-out.

Replicated sweeps and algorithm fan-outs used to pay a full worker
process per task attempt — a throwaway ``ProcessPoolExecutor`` whose
spawn cost (interpreter start plus the whole ``repro`` import chain
under the portable ``spawn`` start method) dwarfs a scaled-down
simulation run. This module keeps a pool of N *warm* workers alive for
the duration of a task batch and feeds them work over per-worker duplex
pipes, preserving the crash-isolation semantics the sweep runner is
built on:

* a worker that segfaults, ``os._exit``\\ s, or is OOM-killed takes down
  only its current attempt — the parent reaps it, respawns a
  replacement, and the attempt re-enters the queue (bounded by the
  task's ``max_attempts``);
* a per-task wall-clock ``timeout`` is enforced from the parent without
  serializing the batch: only the offending worker is killed while its
  siblings keep running;
* workers are recycled (cleanly stopped and respawned) after
  ``recycle_after`` tasks so leaked memory in long sweeps is bounded;
* every kill path reaps via ``terminate()`` → ``join(grace)`` →
  ``kill()`` → ``join()``, so a worker caught mid-spawn cannot escape
  shutdown (the leak the old per-replicate pool had under
  ``KeyboardInterrupt``).

Results are delivered two ways, both in *submission order* regardless
of completion order: the returned ``ExecutionReport.results`` list, and
an optional ``on_result`` callback invoked in the parent as the longest
contiguous prefix of finished tasks grows. The callback is the
single-writer append path for checkpoint journals — concurrent
finishers can never interleave partial lines, and the journal's record
order is independent of ``jobs``.

Everything sent across a pipe must pickle: ``TaskSpec.fn`` must be a
module-level callable and its arguments plain data. ``TaskSpec.args``
may instead be a *parent-side* callable ``attempt -> tuple`` (lambdas
fine) so retries can change arguments (retry-with-reseed). Workers are
daemonic: they die with the parent and must not spawn processes of
their own — do not nest engines.
"""

from __future__ import annotations

import heapq
import os
import pickle
import signal
import time
import traceback as _traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

__all__ = ["TaskSpec", "TaskTelemetry", "TaskResult", "PoolStats",
           "ExecutionReport", "RespawnStormError", "LocalPoolBackend",
           "run_tasks", "default_jobs", "DEFAULT_RECYCLE_AFTER",
           "DEFAULT_CRASH_STORM_LIMIT"]

#: Tasks a worker executes before it is cleanly stopped and respawned.
DEFAULT_RECYCLE_AFTER = 64

#: Consecutive worker deaths — each before completing a single task —
#: that trip the pool's circuit breaker. A systematic child failure
#: (import error, bad interpreter, missing shared lib) kills every
#: fresh worker instantly; without the breaker the engine would respawn
#: forever, burning attempts on every queued task.
DEFAULT_CRASH_STORM_LIMIT = 5


class RespawnStormError(RuntimeError):
    """Every fresh worker died immediately: the pool cannot make progress.

    Raised by :func:`run_tasks` when ``crash_storm_limit`` consecutive
    workers exited before completing any task. ``last_exitcode`` and
    ``last_error`` carry what is known about the final death (the
    child's own traceback, when one made it back over the pipe).
    """

    def __init__(self, message: str, *, deaths: int,
                 last_exitcode: Optional[int] = None,
                 last_error: Optional[str] = None) -> None:
        super().__init__(message)
        self.deaths = deaths
        self.last_exitcode = last_exitcode
        self.last_error = last_error

#: Seconds a reaped worker is given to ``join()`` before ``kill()``.
_JOIN_GRACE_S = 2.0

#: Idle poll ceiling (seconds) while waiting for completions.
_POLL_CEILING_S = 0.25


def default_jobs() -> int:
    """Default worker count: all cores but one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work for the engine.

    ``fn(*args)`` runs in a worker; ``args`` is either a tuple or a
    parent-side callable ``attempt -> tuple`` (attempts count from 1)
    so retries can vary their arguments. A task is retried on any
    failure — raised exception, worker death, timeout — until it has
    consumed ``max_attempts`` attempts.
    """

    key: Any
    fn: Callable[..., Any]
    args: Union[tuple, Callable[[int], tuple]] = ()
    max_attempts: int = 1
    #: Parent-side callable ``attempt -> seconds`` the engine waits
    #: before re-queueing that retry attempt (attempts count from 2 —
    #: attempt 1 never waits). ``None`` keeps the historical behaviour
    #: of immediate re-entry. Delays only hold the *failed* task back:
    #: idle workers keep draining other queued tasks meanwhile.
    retry_delay: Optional[Callable[[int], float]] = None

    def args_for(self, attempt: int) -> tuple:
        if callable(self.args):
            return tuple(self.args(attempt))
        return tuple(self.args)

    def delay_for(self, attempt: int) -> float:
        if self.retry_delay is None:
            return 0.0
        return max(0.0, float(self.retry_delay(attempt)))


@dataclass(frozen=True)
class TaskTelemetry:
    """Where and how expensively a task's final attempt ran.

    ``wall_s`` is execution time measured inside the worker (timeouts
    and crashes fall back to the parent-observed interval);
    ``queue_wait_s`` is how long the final attempt sat runnable before
    a worker picked it up. ``result_bytes`` is the pickled size of the
    returned value as measured in the worker — the cost of shipping
    the result (metrics plus any observability payload riding on it)
    back over the pipe; ``None`` for failed attempts or when the value
    could not be sized.

    ``attempts`` counts every try the task consumed, and ``last_error``
    keeps the most recent failure reason — together they make a
    retried-then-succeeded task distinguishable from a clean first-try
    success in journals and dashboards. ``host`` names the remote agent
    (``"host:port"``) that ran the final attempt when the task was
    dispatched through the distributed fabric (:mod:`repro.dist`);
    ``None`` for the in-process local pool.
    """

    worker: Optional[int]
    wall_s: float
    queue_wait_s: float
    result_bytes: Optional[int] = None
    attempts: int = 1
    last_error: Optional[str] = None
    host: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {"worker": self.worker,
                "wall_s": self.wall_s,
                "queue_wait_s": self.queue_wait_s,
                "result_bytes": self.result_bytes,
                "attempts": self.attempts,
                "last_error": self.last_error,
                "host": self.host}


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task after all its attempts."""

    key: Any
    status: str  # "ok" | "failed"
    value: Any
    error: Optional[str]
    attempts: int
    telemetry: TaskTelemetry

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class PoolStats:
    """End-of-batch engine telemetry."""

    jobs: int = 0
    wall_s: float = 0.0
    busy_s: float = 0.0
    tasks_ok: int = 0
    tasks_failed: int = 0
    retries: int = 0
    #: Total seconds failed attempts were held back by retry backoff
    #: (:attr:`TaskSpec.retry_delay`) before re-entering the queue.
    retry_backoff_s: float = 0.0
    workers_spawned: int = 0
    workers_recycled: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    tasks_per_worker: Dict[int, int] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Fraction of worker-seconds spent executing tasks."""
        capacity = self.jobs * self.wall_s
        return self.busy_s / capacity if capacity > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "tasks_ok": self.tasks_ok,
            "tasks_failed": self.tasks_failed,
            "retries": self.retries,
            "retry_backoff_s": self.retry_backoff_s,
            "workers_spawned": self.workers_spawned,
            "workers_recycled": self.workers_recycled,
            "worker_crashes": self.worker_crashes,
            "timeouts": self.timeouts,
            "tasks_per_worker": dict(self.tasks_per_worker),
        }


@dataclass(frozen=True)
class ExecutionReport:
    """Results (in submission order) plus engine telemetry."""

    results: Tuple[TaskResult, ...]
    stats: PoolStats


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _worker_main(conn) -> None:
    """Worker loop: receive ``(fn, args)``, run, send the outcome back.

    SIGINT is ignored — a Ctrl-C in the parent's terminal reaches the
    whole process group, and shutdown must stay under the parent's
    control (stop sentinel, else terminate/kill).
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        except BaseException as exc:
            # The payload failed to *unpickle* (e.g. its module import
            # raises in the child). Connection.recv consumed the whole
            # message before unpickling, so the pipe is still in sync:
            # report the failure instead of dying and keep serving.
            try:
                conn.send(("error",
                           f"task deserialization failed: "
                           f"{type(exc).__name__}: {exc}", 0.0))
                continue
            except Exception:
                break
        if message is None:  # stop sentinel
            break
        fn, args = message
        start = time.perf_counter()
        try:
            value = fn(*args)
            elapsed = time.perf_counter() - start
            try:
                # Sized here, where the object lives: the parent only
                # ever sees the unpickled value. One extra pickling of
                # the (small) result, not of the task's working set.
                result_bytes = len(pickle.dumps(value))
            except Exception:
                result_bytes = None  # conn.send will surface the error
            payload = ("ok", value, elapsed, result_bytes)
        except BaseException as exc:  # noqa: BLE001 - isolation boundary
            # Ship the full child traceback: when the parent surfaces
            # this failure (or trips the respawn circuit breaker) the
            # operator should not have to re-run the task to see it.
            payload = ("error",
                       f"{type(exc).__name__}: {exc}\n"
                       f"{_traceback.format_exc()}",
                       time.perf_counter() - start)
        try:
            conn.send(payload)
        except Exception as exc:  # unpicklable result, broken pipe, ...
            try:
                conn.send(("error",
                           f"worker could not return result: "
                           f"{type(exc).__name__}: {exc}",
                           time.perf_counter() - start))
            except Exception:
                break
    try:
        conn.close()
    except Exception:  # pragma: no cover
        pass


# ----------------------------------------------------------------------
# Parent-side engine
# ----------------------------------------------------------------------

@dataclass
class _Running:
    """The attempt a worker is currently executing."""

    index: int
    attempt: int
    enqueued_at: float
    dispatched_at: float


class _Worker:
    def __init__(self, wid: int, proc, conn):
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.current: Optional[_Running] = None
        self.tasks_done = 0


class _Engine:
    def __init__(self, specs: Sequence[TaskSpec], jobs: int,
                 timeout: Optional[float], recycle_after: Optional[int],
                 on_result: Optional[Callable[[TaskResult], None]],
                 start_method: str,
                 crash_storm_limit: Optional[int] = DEFAULT_CRASH_STORM_LIMIT):
        self.specs = list(specs)
        self.jobs = jobs
        self.timeout = timeout
        self.recycle_after = recycle_after
        self.crash_storm_limit = crash_storm_limit
        #: Consecutive deaths of workers that never completed a task.
        #: Reset by any delivered result; deliberate kills (timeouts,
        #: recycling, shutdown) never touch it.
        self.cold_deaths = 0
        self.on_result = on_result
        self.ctx = get_context(start_method)
        self.stats = PoolStats(jobs=jobs)
        self.clock = time.perf_counter
        now = self.clock()
        self.results: List[Optional[TaskResult]] = [None] * len(self.specs)
        self.pending = deque((i, 1, now) for i in range(len(self.specs)))
        #: Retry attempts held back by backoff: a min-heap of
        #: ``(ready_at, index, attempt)`` promoted into ``pending`` as
        #: their delays elapse.
        self.delayed: List[Tuple[float, int, int]] = []
        self.last_error: Dict[int, str] = {}
        self.workers: Dict[int, _Worker] = {}
        self.n_done = 0
        self.emit_cursor = 0
        self.next_wid = 0

    # -- worker lifecycle ------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        wid = self.next_wid
        self.next_wid += 1
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(target=_worker_main, args=(child_conn,),
                                name=f"repro-worker-{wid}", daemon=True)
        proc.start()
        child_conn.close()  # our copy; EOF detection needs it closed here
        worker = _Worker(wid, proc, parent_conn)
        self.workers[wid] = worker
        self.stats.workers_spawned += 1
        self.stats.tasks_per_worker.setdefault(wid, 0)
        return worker

    def _reap(self, worker: _Worker, *, graceful: bool) -> None:
        """Stop a worker for good: sentinel or terminate, then
        ``join(grace)``, then ``kill()`` — nothing escapes."""
        self.workers.pop(worker.wid, None)
        if graceful:
            try:
                worker.conn.send(None)
            except Exception:
                pass
        else:
            try:
                worker.proc.terminate()
            except Exception:  # pragma: no cover
                pass
        worker.proc.join(_JOIN_GRACE_S)
        if worker.proc.is_alive():
            try:
                worker.proc.kill()
            except Exception:  # pragma: no cover
                pass
            worker.proc.join(_JOIN_GRACE_S)
        try:
            worker.conn.close()
        except Exception:  # pragma: no cover
            pass

    # -- task flow -------------------------------------------------------

    def _promote_delayed(self) -> None:
        """Move matured backoff retries into the runnable queue.

        ``enqueued_at`` is stamped at promotion time so the deliberate
        backoff wait is not misreported as queue congestion."""
        now = self.clock()
        while self.delayed and self.delayed[0][0] <= now:
            _, index, attempt = heapq.heappop(self.delayed)
            self.pending.append((index, attempt, now))

    def _dispatch_idle(self) -> None:
        self._promote_delayed()
        for worker in list(self.workers.values()):
            if not self.pending:
                return
            if worker.current is not None:
                continue
            index, attempt, enqueued_at = self.pending.popleft()
            spec = self.specs[index]
            now = self.clock()
            try:
                payload = (spec.fn, spec.args_for(attempt))
                worker.conn.send(payload)
            except Exception as exc:  # unpicklable task, dead pipe, ...
                self._attempt_failed(
                    index, attempt, worker.wid,
                    f"could not dispatch task: {type(exc).__name__}: {exc}",
                    wall_s=0.0, queue_wait_s=now - enqueued_at)
                continue
            worker.current = _Running(index, attempt, enqueued_at, now)

    def _attempt_failed(self, index: int, attempt: int,
                        wid: Optional[int], error: str,
                        wall_s: float, queue_wait_s: float) -> None:
        self.last_error[index] = error
        spec = self.specs[index]
        if attempt < spec.max_attempts:
            self.stats.retries += 1
            now = self.clock()
            delay = spec.delay_for(attempt + 1)
            if delay > 0.0:
                self.stats.retry_backoff_s += delay
                heapq.heappush(self.delayed, (now + delay, index,
                                              attempt + 1))
            else:
                self.pending.append((index, attempt + 1, now))
            return
        telemetry = TaskTelemetry(worker=wid, wall_s=wall_s,
                                  queue_wait_s=queue_wait_s,
                                  attempts=attempt, last_error=error)
        self._finalize(index, TaskResult(
            key=spec.key, status="failed", value=None, error=error,
            attempts=attempt, telemetry=telemetry))

    def _finalize(self, index: int, result: TaskResult) -> None:
        self.results[index] = result
        self.n_done += 1
        if result.ok:
            self.stats.tasks_ok += 1
        else:
            self.stats.tasks_failed += 1
        if self.on_result is not None:
            while (self.emit_cursor < len(self.results)
                   and self.results[self.emit_cursor] is not None):
                self.on_result(self.results[self.emit_cursor])
                self.emit_cursor += 1

    def _handle_message(self, worker: _Worker, message: tuple) -> None:
        running = worker.current
        worker.current = None
        worker.tasks_done += 1
        self.cold_deaths = 0  # a worker is completing tasks: pool is healthy
        self.stats.tasks_per_worker[worker.wid] = worker.tasks_done
        status, payload, wall_s = message[:3]
        # Error messages stay 3-tuples; only "ok" carries a sized result.
        result_bytes = message[3] if len(message) > 3 else None
        self.stats.busy_s += wall_s
        if running is None:  # pragma: no cover - protocol violation
            return
        queue_wait = running.dispatched_at - running.enqueued_at
        if status == "ok":
            spec = self.specs[running.index]
            self._finalize(running.index, TaskResult(
                key=spec.key, status="ok", value=payload, error=None,
                attempts=running.attempt,
                telemetry=TaskTelemetry(
                    worker=worker.wid, wall_s=wall_s,
                    queue_wait_s=queue_wait, result_bytes=result_bytes,
                    attempts=running.attempt,
                    last_error=self.last_error.get(running.index))))
        else:
            self._attempt_failed(running.index, running.attempt,
                                 worker.wid, payload,
                                 wall_s=wall_s, queue_wait_s=queue_wait)
        if (self.recycle_after is not None
                and worker.tasks_done >= self.recycle_after):
            self._reap(worker, graceful=True)
            self.stats.workers_recycled += 1
            self._maybe_respawn()

    def _maybe_respawn(self) -> None:
        """Keep enough workers alive for the work that remains.

        Enough means: one per queued/running task, capped at ``jobs``,
        and never zero while tasks are unfinished (a retry can be
        queued at any moment by a sibling's failure).
        """
        unfinished = len(self.specs) - self.n_done
        if unfinished <= 0:
            return
        running = sum(1 for w in self.workers.values()
                      if w.current is not None)
        queued = len(self.pending) + len(self.delayed)
        target = min(self.jobs, max(queued + running, 1))
        while len(self.workers) < target:
            self._spawn_worker()

    def _handle_worker_death(self, worker: _Worker) -> None:
        running = worker.current
        worker.current = None
        died_cold = worker.tasks_done == 0
        self._reap(worker, graceful=False)
        self.stats.worker_crashes += 1
        exitcode = worker.proc.exitcode
        if running is not None:
            now = self.clock()
            self._attempt_failed(
                running.index, running.attempt, worker.wid,
                f"worker process died (exit code {exitcode})",
                wall_s=now - running.dispatched_at,
                queue_wait_s=running.dispatched_at - running.enqueued_at)
        if died_cold:
            self.cold_deaths += 1
            if (self.crash_storm_limit is not None
                    and self.cold_deaths >= self.crash_storm_limit):
                last_error = (self.last_error.get(running.index)
                              if running is not None else None)
                raise RespawnStormError(
                    f"respawn storm: {self.cold_deaths} consecutive workers "
                    f"died before completing any task (last exit code "
                    f"{exitcode}) — a systematic child failure, e.g. an "
                    f"import error in the worker; last task error: "
                    f"{last_error}",
                    deaths=self.cold_deaths, last_exitcode=exitcode,
                    last_error=last_error)
        else:
            self.cold_deaths = 0
        self._maybe_respawn()

    def _enforce_deadlines(self) -> None:
        if self.timeout is None:
            return
        now = self.clock()
        for worker in list(self.workers.values()):
            running = worker.current
            if running is None:
                continue
            if now - running.dispatched_at <= self.timeout:
                continue
            worker.current = None
            self._reap(worker, graceful=False)
            self.stats.timeouts += 1
            self._attempt_failed(
                running.index, running.attempt, worker.wid,
                f"timeout after {self.timeout}s",
                wall_s=now - running.dispatched_at,
                queue_wait_s=running.dispatched_at - running.enqueued_at)
            self._maybe_respawn()

    def _poll_interval(self) -> Optional[float]:
        now = self.clock()
        wakeups = [now + _POLL_CEILING_S]
        if self.timeout is not None:
            wakeups.extend(w.current.dispatched_at + self.timeout
                           for w in self.workers.values()
                           if w.current is not None)
        if self.delayed:
            wakeups.append(self.delayed[0][0])
        return max(0.0, min(wakeups) - now)

    # -- main loop -------------------------------------------------------

    def run(self) -> ExecutionReport:
        start = self.clock()
        try:
            for _ in range(min(self.jobs, max(1, len(self.specs)))):
                self._spawn_worker()
            while self.n_done < len(self.specs):
                self._dispatch_idle()
                conn_to_worker = {w.conn: w for w in self.workers.values()
                                  if w.current is not None}
                if not conn_to_worker and self.delayed:
                    # Everything runnable is backing off: sleep until
                    # the earliest retry matures instead of spinning.
                    time.sleep(self._poll_interval())
                if conn_to_worker:
                    ready = _connection_wait(list(conn_to_worker),
                                             self._poll_interval())
                    for conn in ready:
                        worker = conn_to_worker[conn]
                        if worker.wid not in self.workers:
                            continue  # already reaped this iteration
                        try:
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            self._handle_worker_death(worker)
                            continue
                        self._handle_message(worker, message)
                self._enforce_deadlines()
            for worker in list(self.workers.values()):
                self._reap(worker, graceful=True)
        except BaseException:
            for worker in list(self.workers.values()):
                self._reap(worker, graceful=False)
            raise
        finally:
            self.stats.wall_s = self.clock() - start
        results = tuple(r for r in self.results)
        return ExecutionReport(results=results, stats=self.stats)


def run_tasks(specs: Sequence[TaskSpec],
              *,
              jobs: Optional[int] = None,
              timeout: Optional[float] = None,
              recycle_after: Optional[int] = DEFAULT_RECYCLE_AFTER,
              on_result: Optional[Callable[[TaskResult], None]] = None,
              start_method: str = "spawn",
              crash_storm_limit: Optional[int] = DEFAULT_CRASH_STORM_LIMIT,
              ) -> ExecutionReport:
    """Run ``specs`` on a persistent pool of ``jobs`` warm workers.

    Results come back in **submission order** (and ``on_result`` fires
    in submission order as the finished prefix grows), so downstream
    aggregation and journaling are independent of completion order —
    the backbone of the sweep determinism contract.

    ``jobs`` defaults to :func:`default_jobs` (cores minus one);
    ``timeout`` is per-attempt wall clock; ``recycle_after`` bounds
    tasks per worker (``None`` disables recycling); ``start_method``
    picks the multiprocessing context — ``"spawn"`` by default for
    portability (its per-worker cold start is exactly what the warm
    pool amortizes; pass ``"fork"`` on POSIX for near-free spawns).

    ``crash_storm_limit`` trips a circuit breaker
    (:class:`RespawnStormError`) after that many *consecutive* workers
    died without completing a single task — the signature of a
    systematic child failure (import error, missing shared library)
    that respawning can never fix. ``None`` disables the breaker.
    Deliberate kills (per-task timeouts, recycling) do not count.
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if recycle_after is not None and recycle_after < 1:
        raise ValueError("recycle_after must be >= 1 (or None)")
    if crash_storm_limit is not None and crash_storm_limit < 1:
        raise ValueError("crash_storm_limit must be >= 1 (or None)")
    for spec in specs:
        if spec.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
    if not specs:
        return ExecutionReport(results=(), stats=PoolStats(jobs=0))
    engine = _Engine(specs, jobs=min(jobs, len(specs)), timeout=timeout,
                     recycle_after=recycle_after, on_result=on_result,
                     start_method=start_method,
                     crash_storm_limit=crash_storm_limit)
    return engine.run()


class LocalPoolBackend:
    """Dispatch backend: the in-process persistent worker pool.

    The sweep runner (:func:`repro.experiments.replicates.
    run_resilient_sweep`) executes its task batch through a *dispatch
    backend* — any object with ``run(specs, *, timeout, on_result) ->
    ExecutionReport`` whose ``on_result`` fires in submission order.
    This is the default backend (and the degradation target of the
    distributed fabric, :class:`repro.dist.FabricBackend`): it simply
    binds the pool-shaping keywords of :func:`run_tasks`.
    """

    def __init__(self, *, jobs: Optional[int] = None,
                 recycle_after: Optional[int] = DEFAULT_RECYCLE_AFTER,
                 start_method: str = "spawn",
                 crash_storm_limit: Optional[int] =
                 DEFAULT_CRASH_STORM_LIMIT) -> None:
        self.jobs = jobs
        self.recycle_after = recycle_after
        self.start_method = start_method
        self.crash_storm_limit = crash_storm_limit

    def run(self, specs: Sequence[TaskSpec], *,
            timeout: Optional[float] = None,
            on_result: Optional[Callable[[TaskResult], None]] = None,
            ) -> ExecutionReport:
        return run_tasks(specs, jobs=self.jobs, timeout=timeout,
                         recycle_after=self.recycle_after,
                         on_result=on_result,
                         start_method=self.start_method,
                         crash_storm_limit=self.crash_storm_limit)
