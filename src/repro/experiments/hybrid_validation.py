"""Shape-contract validation of the fluid/event-driven hybrid engine.

The hybrid (:mod:`repro.sim.hybrid`, docs/SCALING.md) promises that a
population of ``P`` users simulated as ``K`` sampled subswarms is
*statistically exchangeable* with a full event-driven run of ``P``
users — the EXPERIMENTS.md shape contract, checked per mechanism:

* **Completion times** — two-sample KS on the pooled per-peer
  download durations, hybrid vs. reference, must not detect a
  difference (``p > alpha``), and the replicate-level mean-completion
  CIs must overlap.
* **Fairness** — the CIs of the final ``u/d`` fairness across seeds
  must overlap.
* **Completion fraction** — CIs must overlap (this is the signal that
  remains for mechanisms like pure reciprocity where *nobody*
  completes at the probed scale and the KS test is vacuous).
* **Mechanism ordering** — ranking mechanisms by mean completion time
  must agree between hybrid and reference
  (:func:`repro.experiments.validation.ranking_agreement`).

Validation runs the hybrid in *full-sampling* mode (``K * m == P``,
shard weight 1) so sampling error cannot hide behind scale-up error:
what is measured is exactly the cost of partitioning a ``P``-swarm
into ``K`` independent subswarms plus the coupling approximation.
The reference is :func:`repro.sim.hybrid.reference_config` — same
per-capita seed bandwidth *and* seeder topology.

Statistical power is controlled, not maximised: pooled KS samples are
thinned to a quantile skeleton of at most ``max_pooled`` points per
side (:func:`quantile_skeleton`). Pooling every peer across every
seed would push n past 10^4, where the KS test resolves sub-percent
physical differences (subswarm view density, round discretisation)
that the shape contract deliberately tolerates; the skeleton keeps
the distributional comparison while bounding sensitivity at a level
chosen to catch mechanism-scale disagreement (a few percent of the
CDF), independent of how many seeds the caller throws at the suite.

Used by ``tests/integration/test_hybrid_parity.py`` and the CI
hybrid-smoke step (``--population`` runs validated against a full
reference, see .github/workflows/ci.yml).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.names import EXTENDED_ALGORITHMS, Algorithm
from repro.sim.config import SimulationConfig
from repro.sim.hybrid import reference_config
from repro.sim.runner import run_simulation
from repro.experiments.validation import (
    confidence_interval,
    distributional_equivalence,
    intervals_overlap,
    ranking_agreement,
)

__all__ = [
    "MechanismVerdict",
    "HybridValidationReport",
    "quantile_skeleton",
    "validation_config",
    "validate_mechanism",
    "validate_hybrid_engine",
]


def validation_config(algorithm: Algorithm, *, population: int = 1000,
                      n_subswarms: int = 4, seed: int = 0,
                      backend: str = "vector-fast") -> SimulationConfig:
    """The canonical full-sampling validation geometry.

    ``population / n_subswarms`` users per shard, paper-shaped file
    (64 pieces) and neighbor view (40), per-capita infrastructure
    seed bandwidth ``8 / 250`` pieces/round/user. Subswarm size must
    stay >= ~250: below that the subswarm's own finite-size effects
    (a 40-neighbor view covering a third of the swarm, coarser seeder
    granularity) become measurable against a 1k reference — see
    docs/SCALING.md's validation section.
    """
    if population % n_subswarms:
        raise ValueError("population must divide evenly into subswarms "
                         "for full-sampling validation")
    m = population // n_subswarms
    return SimulationConfig(
        algorithm, n_users=m, n_pieces=64, neighbor_count=40,
        max_rounds=600, flash_crowd_duration=10.0,
        seeder_capacity=8.0 * (m / 250.0), seed=seed, backend=backend,
    ).with_population(population, n_subswarms=n_subswarms,
                      coupling_interval=25)


def quantile_skeleton(values: Sequence[float], cap: int) -> List[float]:
    """Deterministically thin ``values`` to at most ``cap`` points.

    Sorts and keeps an evenly spaced subsequence — the empirical
    quantile skeleton — so the thinned sample traces the same CDF
    with bounded n. Thinning is the suite's power control (module
    docstring); it never fabricates values.
    """
    ordered = sorted(values)
    n = len(ordered)
    if n <= cap:
        return ordered
    step = n / cap
    return [ordered[min(n - 1, int(i * step))] for i in range(cap)]


@dataclass(frozen=True)
class MechanismVerdict:
    """Shape-contract outcome for one mechanism.

    ``completion`` is the :func:`distributional_equivalence` row on
    the thinned pooled completion times, or ``None`` when either side
    recorded no completions (the KS test is then vacuous and the
    completion-fraction CI carries the signal alone).
    ``hybrid_mean_completion`` / ``reference_mean_completion`` are
    ``inf`` for a side with no completions, mirroring
    ``SimulationMetrics.mean_completion_time``.
    """

    algorithm: Algorithm
    n_seeds: int
    completion: Optional[Dict[str, object]]
    mean_completion_ci_overlap: Optional[bool]
    fairness_ci_overlap: Optional[bool]
    completion_fraction_ci_overlap: bool
    hybrid_mean_completion: float
    reference_mean_completion: float

    @property
    def passed(self) -> bool:
        if self.completion is not None:
            if not (self.completion["ks_pass"] and self.completion["ci_overlap"]):
                return False
        if self.mean_completion_ci_overlap is False:
            return False
        if self.fairness_ci_overlap is False:
            return False
        return self.completion_fraction_ci_overlap

    def as_dict(self) -> Dict[str, object]:
        row = asdict(self)
        row["algorithm"] = self.algorithm.value
        row["passed"] = self.passed
        return row


@dataclass(frozen=True)
class HybridValidationReport:
    """The full sweep-of-mechanisms verdict.

    ``ranking_agreement`` covers the mechanisms that completed on both
    sides (ordering among never-completing mechanisms is undefined —
    both sides agree they are off the scale).
    """

    verdicts: Tuple[MechanismVerdict, ...]
    ranking_agreement: float

    @property
    def passed(self) -> bool:
        return (all(v.passed for v in self.verdicts)
                and self.ranking_agreement >= 0.95)

    def as_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "ranking_agreement": self.ranking_agreement,
            "verdicts": [v.as_dict() for v in self.verdicts],
        }


def validate_mechanism(config: SimulationConfig, seeds: Iterable[int],
                       *, alpha: float = 0.01, max_pooled: int = 1000,
                       ) -> MechanismVerdict:
    """Run hybrid and reference across ``seeds`` and judge the contract.

    ``config`` must be a hybrid config (``population`` set); the
    reference is derived per :func:`repro.sim.hybrid.reference_config`
    and both sides share each seed.
    """
    seeds = list(seeds)
    ref = reference_config(config)
    hyb_pool: List[float] = []
    ref_pool: List[float] = []
    hyb_means: List[float] = []
    ref_means: List[float] = []
    hyb_fair: List[float] = []
    ref_fair: List[float] = []
    hyb_cf: List[float] = []
    ref_cf: List[float] = []
    for seed in seeds:
        hm = run_simulation(config.with_seed(seed)).metrics
        rm = run_simulation(ref.with_seed(seed)).metrics
        hyb_pool += hm.completion_times()
        ref_pool += rm.completion_times()
        hyb_means.append(hm.mean_completion_time())
        ref_means.append(rm.mean_completion_time())
        if hm.final_fairness() is not None:
            hyb_fair.append(hm.final_fairness())
        if rm.final_fairness() is not None:
            ref_fair.append(rm.final_fairness())
        hyb_cf.append(hm.completion_fraction())
        ref_cf.append(rm.completion_fraction())

    completion = None
    mean_ci_overlap: Optional[bool] = None
    if hyb_pool and ref_pool:
        completion = distributional_equivalence(
            quantile_skeleton(hyb_pool, max_pooled),
            quantile_skeleton(ref_pool, max_pooled), alpha=alpha)
        finite_h = [v for v in hyb_means if v != float("inf")]
        finite_r = [v for v in ref_means if v != float("inf")]
        if finite_h and finite_r:
            mean_ci_overlap = intervals_overlap(
                confidence_interval(finite_h), confidence_interval(finite_r))
    fairness_overlap: Optional[bool] = None
    if hyb_fair and ref_fair:
        fairness_overlap = intervals_overlap(
            confidence_interval(hyb_fair), confidence_interval(ref_fair))
    cf_overlap = intervals_overlap(
        confidence_interval(hyb_cf), confidence_interval(ref_cf))

    def _mean(pool: List[float]) -> float:
        return sum(pool) / len(pool) if pool else float("inf")

    return MechanismVerdict(
        algorithm=config.algorithm,
        n_seeds=len(seeds),
        completion=completion,
        mean_completion_ci_overlap=mean_ci_overlap,
        fairness_ci_overlap=fairness_overlap,
        completion_fraction_ci_overlap=cf_overlap,
        hybrid_mean_completion=_mean(hyb_pool),
        reference_mean_completion=_mean(ref_pool),
    )


def validate_hybrid_engine(algorithms: Sequence[Algorithm] = EXTENDED_ALGORITHMS,
                           seeds: Iterable[int] = range(5),
                           *, population: int = 1000, n_subswarms: int = 4,
                           alpha: float = 0.01, max_pooled: int = 1000,
                           backend: str = "vector-fast",
                           ) -> HybridValidationReport:
    """The full shape-contract suite: every mechanism, one report."""
    seeds = list(seeds)
    verdicts = tuple(
        validate_mechanism(
            validation_config(alg, population=population,
                              n_subswarms=n_subswarms, backend=backend),
            seeds, alpha=alpha, max_pooled=max_pooled)
        for alg in algorithms)
    ranked = [(v.hybrid_mean_completion, v.reference_mean_completion)
              for v in verdicts
              if v.hybrid_mean_completion != float("inf")
              and v.reference_mean_completion != float("inf")]
    agreement = (ranking_agreement([h for h, _ in ranked],
                                   [r for _, r in ranked])
                 if len(ranked) >= 2 else 1.0)
    return HybridValidationReport(verdicts=verdicts,
                                  ranking_agreement=agreement)
