"""Regenerate the paper's experimental figures (Figures 4-6).

Each ``figureN`` function runs the corresponding simulation sweep and
returns a :class:`FigureResult` holding, per algorithm, the series the
paper plots plus scalar summaries; ``to_text`` renders the summary
table printed by the benchmark harness.

* Figure 4 — all users compliant: (a) completion-time distribution,
  (b) fairness over time, (c) bootstrapped users over time.
* Figure 5 — 20% free-riders with targeted attacks: (a) susceptibility,
  (b) efficiency, (c) fairness.
* Figure 6 — Figure 5's attacks plus the large-view exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.experiments.scenarios import (
    PAPER_FREERIDER_FRACTION,
    default_scale,
    run_all_algorithms,
)
from repro.names import ALL_ALGORITHMS, Algorithm
from repro.sim.config import SimulationConfig
from repro.sim.runner import SimulationResult
from repro.utils import ascii_chart, format_table

__all__ = ["AlgorithmSeries", "FigureResult", "figure4", "figure5", "figure6"]


@dataclass(frozen=True)
class AlgorithmSeries:
    """One algorithm's measurements for one figure."""

    algorithm: Algorithm
    completion_cdf: List[Dict[str, float]]
    fairness_series: List[Dict[str, float]]
    bootstrap_series: List[Dict[str, float]]
    mean_completion_time: float
    median_completion_time: float
    completion_fraction: float
    final_fairness: Optional[float]
    mean_bootstrap_time: float
    susceptibility: float


@dataclass(frozen=True)
class FigureResult:
    """All series for one figure, keyed by algorithm."""

    name: str
    series: Dict[Algorithm, AlgorithmSeries]
    results: Dict[Algorithm, SimulationResult] = field(repr=False,
                                                       default_factory=dict)

    def to_text(self) -> str:
        headers = ["Algorithm", "mean T", "median T", "done", "fairness",
                   "mean boot T", "susceptibility"]
        rows = []
        for algorithm in ALL_ALGORITHMS:
            if algorithm not in self.series:
                continue
            s = self.series[algorithm]
            rows.append([
                algorithm.display_name,
                s.mean_completion_time,
                s.median_completion_time,
                s.completion_fraction,
                s.final_fairness,
                s.mean_bootstrap_time,
                s.susceptibility,
            ])
        return format_table(headers, rows, title=self.name,
                            float_format=".3g")

    def to_charts(self, width: int = 64, height: int = 14) -> str:
        """The figure's three panels as monospace charts.

        Panel (a): completion-time CDF; (b) fairness (mean u/d) over
        time; (c) bootstrapped fraction over time. Mechanisms with no
        data for a panel (e.g. reciprocity's empty CDF) are omitted
        from that panel.
        """
        panels = []
        cdf = {a.display_name: [(p["time"], p["fraction"])
                                for p in s.completion_cdf]
               for a, s in self.series.items() if s.completion_cdf}
        if cdf:
            panels.append(ascii_chart(
                cdf, width=width, height=height,
                title=f"{self.name} (a): completion-time CDF"))
        fairness = {a.display_name: [(p["time"], p["fairness"])
                                     for p in s.fairness_series]
                    for a, s in self.series.items() if s.fairness_series}
        if fairness:
            panels.append(ascii_chart(
                fairness, width=width, height=height, y_max=2.0,
                title=f"{self.name} (b): fairness mean(u/d) over time"))
        bootstrap = {a.display_name: [(p["time"], p["fraction"])
                                      for p in s.bootstrap_series]
                     for a, s in self.series.items() if s.bootstrap_series}
        if bootstrap:
            panels.append(ascii_chart(
                bootstrap, width=width, height=height,
                title=f"{self.name} (c): bootstrapped fraction over time"))
        return "\n\n".join(panels)


def _series_for(result: SimulationResult) -> AlgorithmSeries:
    m = result.metrics
    return AlgorithmSeries(
        algorithm=result.algorithm,
        completion_cdf=m.completion_cdf(),
        fairness_series=m.fairness_series("ud"),
        bootstrap_series=m.bootstrap_series(),
        mean_completion_time=m.mean_completion_time(),
        median_completion_time=m.median_completion_time(),
        completion_fraction=m.completion_fraction(),
        final_fairness=m.final_fairness(),
        mean_bootstrap_time=m.mean_bootstrap_time(),
        susceptibility=m.susceptibility(),
    )


def _figure(name: str, base: SimulationConfig,
            algorithms: Optional[Iterable[Algorithm]],
            freerider_fraction: float, large_view: bool,
            processes: int = 1) -> FigureResult:
    results = run_all_algorithms(base, algorithms,
                                 freerider_fraction=freerider_fraction,
                                 large_view=large_view,
                                 processes=processes)
    series = {a: _series_for(r) for a, r in results.items()}
    return FigureResult(name=name, series=series, results=results)


def figure4(base: Optional[SimulationConfig] = None,
            algorithms: Optional[Iterable[Algorithm]] = None,
            processes: int = 1) -> FigureResult:
    """Figure 4: performance with all users compliant."""
    return _figure("Figure 4 - no free-riding", base or default_scale(),
                   algorithms, freerider_fraction=0.0, large_view=False,
                   processes=processes)


def figure5(base: Optional[SimulationConfig] = None,
            algorithms: Optional[Iterable[Algorithm]] = None,
            freerider_fraction: float = PAPER_FREERIDER_FRACTION,
            processes: int = 1) -> FigureResult:
    """Figure 5: 20% free-riders using each algorithm's worst attack."""
    return _figure("Figure 5 - 20% free-riders, targeted attacks",
                   base or default_scale(), algorithms,
                   freerider_fraction=freerider_fraction, large_view=False,
                   processes=processes)


def figure6(base: Optional[SimulationConfig] = None,
            algorithms: Optional[Iterable[Algorithm]] = None,
            freerider_fraction: float = PAPER_FREERIDER_FRACTION,
            processes: int = 1) -> FigureResult:
    """Figure 6: Figure 5 plus the large-view exploit."""
    return _figure("Figure 6 - free-riders with large-view exploit",
                   base or default_scale(), algorithms,
                   freerider_fraction=freerider_fraction, large_view=True,
                   processes=processes)
