"""Analysis over per-transfer traces (``record_transfers=True`` runs).

``record_transfers`` keeps an *unbounded* list of
:class:`~repro.sim.metrics.TransferRecord` on the metrics — exhaustive
and digest-visible, sized for post-hoc forensics on single runs. It is
no longer the only instrumentation path: for live, bounded, streaming
views of a run (event tracing with sampling, per-round gauge series,
self-profiling, Chrome-trace export) use :mod:`repro.obs` — see
docs/OBSERVABILITY.md. This module stays on the exhaustive trace
because pairwise-deficit bounds need *every* transfer, not a sample.

The trace is the ground truth behind several of the paper's claims;
this module turns it into checkable quantities:

* **pairwise deficits** — `uploaded(a -> b) - uploaded(b -> a)` per
  ordered pair. Sherman et al. [7] prove FairTorrent keeps every
  pairwise deficit ``O(log N)``; Section IV-C leans on that bound to
  cap what a (whitewashing) free-rider can extract per victim. With a
  trace we can *measure* the worst deficit any compliant pair ever
  reached and compare mechanisms.
* **reciprocity matrix** — who ultimately paid whom, for fairness
  forensics beyond the aggregate `u/d` statistic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sim.metrics import TransferRecord

__all__ = [
    "pairwise_upload_counts",
    "pairwise_deficits",
    "max_deficit_trajectory",
    "worst_pairwise_deficit",
]

Pair = Tuple[int, int]


def pairwise_upload_counts(transfers: Iterable[TransferRecord],
                           exclude: Optional[Set[int]] = None,
                           ) -> Dict[Pair, int]:
    """Pieces sent per ordered ``(uploader, target)`` pair.

    ``exclude`` drops any transfer touching those peer ids — typically
    the seeders, whose one-way giving is by design, not a fairness
    defect.
    """
    excluded = exclude or set()
    counts: Dict[Pair, int] = defaultdict(int)
    for record in transfers:
        if record.uploader_id in excluded or record.target_id in excluded:
            continue
        counts[(record.uploader_id, record.target_id)] += 1
    return dict(counts)


def pairwise_deficits(transfers: Iterable[TransferRecord],
                      exclude: Optional[Set[int]] = None) -> Dict[Pair, int]:
    """Net deficit per unordered pair, keyed by the owed direction.

    A positive value under key ``(a, b)`` means ``a`` sent that many
    more pieces to ``b`` than it got back; each unordered pair appears
    once, keyed by its creditor.
    """
    counts = pairwise_upload_counts(transfers, exclude)
    deficits: Dict[Pair, int] = {}
    for (a, b), sent in counts.items():
        if (b, a) in deficits or (a, b) in deficits:
            continue
        net = sent - counts.get((b, a), 0)
        if net >= 0:
            deficits[(a, b)] = net
        else:
            deficits[(b, a)] = -net
    return deficits


def max_deficit_trajectory(transfers: Sequence[TransferRecord],
                           exclude: Optional[Set[int]] = None,
                           ) -> List[Dict[str, float]]:
    """The running worst pairwise deficit over time.

    One row per transfer that set a new maximum — the shape [7]'s
    bound constrains (it must flatten, not grow linearly).
    """
    excluded = exclude or set()
    ledger: Dict[Pair, int] = defaultdict(int)
    worst = 0
    rows: List[Dict[str, float]] = []
    for record in transfers:
        if record.uploader_id in excluded or record.target_id in excluded:
            continue
        a, b = record.uploader_id, record.target_id
        ledger[(a, b)] += 1
        net = abs(ledger[(a, b)] - ledger.get((b, a), 0))
        if net > worst:
            worst = net
            rows.append({"time": record.time, "max_deficit": float(worst)})
    return rows


def worst_pairwise_deficit(transfers: Sequence[TransferRecord],
                           exclude: Optional[Set[int]] = None) -> int:
    """The largest pairwise imbalance ever reached during the run."""
    trajectory = max_deficit_trajectory(transfers, exclude)
    return int(trajectory[-1]["max_deficit"]) if trajectory else 0
