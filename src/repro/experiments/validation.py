"""Cross-layer validation: analytical model vs. simulator.

The paper validates its Section IV models with Section V's simulator;
this module makes that comparison a first-class, repeatable artifact:

* :func:`empirical_bootstrap_probability` — recover the per-round
  probability ``p_B(t)`` that a not-yet-bootstrapped user gets its
  first piece, directly from a run's bootstrap time series (the
  quantity Table II models);
* :func:`bootstrap_model_vs_simulation` — run one simulation per
  mechanism and compare the measured mean ``p_B`` against the Table II
  prediction evaluated at the swarm's state, checking that the model
  ranks the mechanisms the same way the simulator does;
* :func:`ranking_agreement` — Kendall-style pairwise agreement between
  two rankings, the summary statistic we report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core import bootstrapping as boot
from repro.names import ALL_ALGORITHMS, Algorithm
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import run_simulation

__all__ = [
    "empirical_bootstrap_probability",
    "mean_empirical_bootstrap_probability",
    "bootstrap_model_vs_simulation",
    "ranking_agreement",
]


def empirical_bootstrap_probability(metrics: SimulationMetrics,
                                    ) -> List[Dict[str, float]]:
    """Per-round ``p_B(t)`` measured from a run.

    For each consecutive sample pair, the probability that one of the
    users still waiting for its first piece got bootstrapped::

        p_B = (bootstrapped_{t+1} - bootstrapped_t) / waiting_t

    where ``waiting_t`` counts arrived-but-unbootstrapped users.
    Rounds with nobody waiting are skipped.
    """
    rows: List[Dict[str, float]] = []
    samples = metrics.samples
    for before, after in zip(samples, samples[1:]):
        # Users at risk of bootstrapping during this round: those
        # already waiting plus anyone who arrived within the round
        # (a mid-round arrival can be bootstrapped in the same round).
        waiting = after.arrived - before.bootstrapped
        if waiting <= 0:
            continue
        newly = after.bootstrapped - before.bootstrapped
        rows.append({
            "time": after.time,
            "waiting": float(waiting),
            "p_b": min(1.0, max(0.0, newly / waiting)),
        })
    return rows


def mean_empirical_bootstrap_probability(metrics: SimulationMetrics,
                                         ) -> Optional[float]:
    """Waiting-user-weighted mean of the empirical ``p_B(t)``."""
    rows = empirical_bootstrap_probability(metrics)
    total_waiting = sum(r["waiting"] for r in rows)
    if total_waiting == 0:
        return None
    return sum(r["p_b"] * r["waiting"] for r in rows) / total_waiting


def _model_probability(algorithm: Algorithm,
                       config: SimulationConfig,
                       bootstrapped: int) -> float:
    """Table II evaluated at this simulation's shape.

    ``K`` is the mean per-user capacity in pieces/round; ``z`` the
    supplied bootstrapped count; FairTorrent's zero-deficit pool is
    approximated by the bootstrapped population.
    """
    mean_capacity = sum(c.fraction * c.capacity
                        for c in config.capacity_classes)
    params = boot.BootstrapParameters(
        n_users=max(config.n_users, 3),
        n_seeder=1,
        pieces_per_slot=max(1, round(mean_capacity)),
        bootstrapped=bootstrapped,
        pi_dr=0.2,
        n_bt=config.strategy_params.n_bt,
        omega=0.3,
        n_ft=max(bootstrapped, config.strategy_params.n_bt + 7,
                 round(mean_capacity) + 2),
        altruist_fraction=config.strategy_params.alpha_r * max(1, round(
            mean_capacity)),
    )
    return boot.bootstrap_probability(algorithm, params)


def bootstrap_model_vs_simulation(
        base: SimulationConfig,
        algorithms: Optional[Iterable[Algorithm]] = None,
        ) -> List[Dict[str, object]]:
    """Measured vs. modelled bootstrap probability per mechanism.

    Each row carries the mechanism, the empirical waiting-weighted
    ``p_B``, and the Table II prediction evaluated mid-flash-crowd
    (half the swarm bootstrapped). Callers typically feed the two
    columns to :func:`ranking_agreement`.
    """
    selected = tuple(Algorithm.parse(a) for a in (algorithms or ALL_ALGORITHMS))
    rows: List[Dict[str, object]] = []
    for algorithm in selected:
        result = run_simulation(base.with_algorithm(algorithm))
        measured = mean_empirical_bootstrap_probability(result.metrics)
        predicted = _model_probability(algorithm, base,
                                       bootstrapped=base.n_users // 2)
        rows.append({
            "algorithm": algorithm,
            "measured_p_b": measured,
            "predicted_p_b": predicted,
        })
    return rows


def ranking_agreement(scores_a: Sequence[float],
                      scores_b: Sequence[float]) -> float:
    """Pairwise order agreement between two score vectors, in [0, 1].

    1 means every pair is ordered identically (Kendall tau = 1);
    0.5 is chance. Ties in either vector count as half agreement.
    """
    if len(scores_a) != len(scores_b):
        raise ValueError("score vectors must have equal length")
    n = len(scores_a)
    pairs = agree = 0
    for i in range(n):
        for j in range(i + 1, n):
            pairs += 1
            da = scores_a[i] - scores_a[j]
            db = scores_b[i] - scores_b[j]
            if da == 0 or db == 0:
                agree += 0.5
            elif (da > 0) == (db > 0):
                agree += 1
    return agree / pairs if pairs else 1.0
