"""Cross-layer validation: analytical model vs. simulator.

The paper validates its Section IV models with Section V's simulator;
this module makes that comparison a first-class, repeatable artifact:

* :func:`empirical_bootstrap_probability` — recover the per-round
  probability ``p_B(t)`` that a not-yet-bootstrapped user gets its
  first piece, directly from a run's bootstrap time series (the
  quantity Table II models);
* :func:`bootstrap_model_vs_simulation` — run one simulation per
  mechanism and compare the measured mean ``p_B`` against the Table II
  prediction evaluated at the swarm's state, checking that the model
  ranks the mechanisms the same way the simulator does;
* :func:`ranking_agreement` — Kendall-style pairwise agreement between
  two rankings, the summary statistic we report.

It also hosts the *engine-equivalence* statistics used by the
fast-lineage distributional-parity suite
(``tests/integration/test_distributional_parity.py``): a dependency-
free two-sample Kolmogorov-Smirnov test (:func:`ks_two_sample`),
normal-approximation confidence intervals
(:func:`confidence_interval`, :func:`intervals_overlap`), and the
combined :func:`distributional_equivalence` verdict that decides
whether two backends' samples are statistically indistinguishable.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import bootstrapping as boot
from repro.names import ALL_ALGORITHMS, Algorithm
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import run_simulation

__all__ = [
    "empirical_bootstrap_probability",
    "mean_empirical_bootstrap_probability",
    "bootstrap_model_vs_simulation",
    "ranking_agreement",
    "ks_statistic",
    "ks_two_sample",
    "confidence_interval",
    "intervals_overlap",
    "distributional_equivalence",
]


def empirical_bootstrap_probability(metrics: SimulationMetrics,
                                    ) -> List[Dict[str, float]]:
    """Per-round ``p_B(t)`` measured from a run.

    For each consecutive sample pair, the probability that one of the
    users still waiting for its first piece got bootstrapped::

        p_B = (bootstrapped_{t+1} - bootstrapped_t) / waiting_t

    where ``waiting_t`` counts arrived-but-unbootstrapped users.
    Rounds with nobody waiting are skipped.
    """
    rows: List[Dict[str, float]] = []
    samples = metrics.samples
    for before, after in zip(samples, samples[1:]):
        # Users at risk of bootstrapping during this round: those
        # already waiting plus anyone who arrived within the round
        # (a mid-round arrival can be bootstrapped in the same round).
        waiting = after.arrived - before.bootstrapped
        if waiting <= 0:
            continue
        newly = after.bootstrapped - before.bootstrapped
        rows.append({
            "time": after.time,
            "waiting": float(waiting),
            "p_b": min(1.0, max(0.0, newly / waiting)),
        })
    return rows


def mean_empirical_bootstrap_probability(metrics: SimulationMetrics,
                                         ) -> Optional[float]:
    """Waiting-user-weighted mean of the empirical ``p_B(t)``."""
    rows = empirical_bootstrap_probability(metrics)
    total_waiting = sum(r["waiting"] for r in rows)
    if total_waiting == 0:
        return None
    return sum(r["p_b"] * r["waiting"] for r in rows) / total_waiting


def _model_probability(algorithm: Algorithm,
                       config: SimulationConfig,
                       bootstrapped: int) -> float:
    """Table II evaluated at this simulation's shape.

    ``K`` is the mean per-user capacity in pieces/round; ``z`` the
    supplied bootstrapped count; FairTorrent's zero-deficit pool is
    approximated by the bootstrapped population.
    """
    mean_capacity = sum(c.fraction * c.capacity
                        for c in config.capacity_classes)
    params = boot.BootstrapParameters(
        n_users=max(config.n_users, 3),
        n_seeder=1,
        pieces_per_slot=max(1, round(mean_capacity)),
        bootstrapped=bootstrapped,
        pi_dr=0.2,
        n_bt=config.strategy_params.n_bt,
        omega=0.3,
        n_ft=max(bootstrapped, config.strategy_params.n_bt + 7,
                 round(mean_capacity) + 2),
        altruist_fraction=config.strategy_params.alpha_r * max(1, round(
            mean_capacity)),
    )
    return boot.bootstrap_probability(algorithm, params)


def bootstrap_model_vs_simulation(
        base: SimulationConfig,
        algorithms: Optional[Iterable[Algorithm]] = None,
        ) -> List[Dict[str, object]]:
    """Measured vs. modelled bootstrap probability per mechanism.

    Each row carries the mechanism, the empirical waiting-weighted
    ``p_B``, and the Table II prediction evaluated mid-flash-crowd
    (half the swarm bootstrapped). Callers typically feed the two
    columns to :func:`ranking_agreement`.
    """
    selected = tuple(Algorithm.parse(a) for a in (algorithms or ALL_ALGORITHMS))
    rows: List[Dict[str, object]] = []
    for algorithm in selected:
        result = run_simulation(base.with_algorithm(algorithm))
        measured = mean_empirical_bootstrap_probability(result.metrics)
        predicted = _model_probability(algorithm, base,
                                       bootstrapped=base.n_users // 2)
        rows.append({
            "algorithm": algorithm,
            "measured_p_b": measured,
            "predicted_p_b": predicted,
        })
    return rows


# ----------------------------------------------------------------------
# Engine-equivalence statistics (fast-lineage distributional parity)
# ----------------------------------------------------------------------

#: Two-sided z value for a 95% normal interval.
_Z95 = 1.959963984540054


def _finite(values: Iterable[float]) -> List[float]:
    return [float(v) for v in values
            if v is not None and math.isfinite(v)]


def ks_statistic(sample_a: Sequence[float],
                 sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic ``D``.

    The maximum vertical distance between the two empirical CDFs.
    Non-finite values (``nan``, ``inf`` — e.g. completion times of
    peers that never finished) are dropped first; an empty sample
    after filtering raises ``ValueError`` rather than returning a
    meaningless 0.
    """
    a = sorted(_finite(sample_a))
    b = sorted(_finite(sample_b))
    if not a or not b:
        raise ValueError("ks_statistic needs at least one finite value "
                         "in each sample")
    na, nb = len(a), len(b)
    i = j = 0
    d = 0.0
    while i < na and j < nb:
        # Advance both walks past every copy of the smaller value
        # before measuring: evaluating mid-tie would report a phantom
        # gap between two identical (or tie-sharing) samples.
        x = a[i] if a[i] <= b[j] else b[j]
        while i < na and a[i] == x:
            i += 1
        while j < nb and b[j] == x:
            j += 1
        gap = abs(i / na - j / nb)
        if gap > d:
            d = gap
    return d


def ks_two_sample(sample_a: Sequence[float],
                  sample_b: Sequence[float]) -> Tuple[float, float]:
    """Two-sample KS test: ``(D, p)`` with the asymptotic p-value.

    Uses the classic Kolmogorov asymptotic distribution with the
    Stephens small-sample correction
    ``lambda = (sqrt(en) + 0.12 + 0.11/sqrt(en)) * D`` and its
    alternating-series tail — the same approximation scipy's
    ``ks_2samp(mode="asymp")`` evaluates, implemented here so the
    equivalence suite has no scipy dependency. The p-value is clamped
    to [0, 1].
    """
    d = ks_statistic(sample_a, sample_b)
    na = len(_finite(sample_a))
    nb = len(_finite(sample_b))
    en = math.sqrt(na * nb / (na + nb))
    lam = (en + 0.12 + 0.11 / en) * d
    if lam <= 0.0:
        return d, 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-10:
            break
    p = 2.0 * total
    return d, min(1.0, max(0.0, p))


def confidence_interval(values: Sequence[float],
                        z: float = _Z95) -> Tuple[float, float]:
    """Normal-approximation CI ``mean ± z * std / sqrt(n)``.

    Non-finite values are dropped; an empty sample raises
    ``ValueError``. A single value yields a degenerate (point)
    interval.
    """
    finite = _finite(values)
    if not finite:
        raise ValueError("confidence_interval needs at least one finite "
                         "value")
    n = len(finite)
    mean = sum(finite) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in finite) / (n - 1)
        half = z * math.sqrt(var) / math.sqrt(n)
    else:
        half = 0.0
    return mean - half, mean + half


def intervals_overlap(interval_a: Tuple[float, float],
                      interval_b: Tuple[float, float]) -> bool:
    """Whether two closed intervals share at least one point."""
    (lo_a, hi_a), (lo_b, hi_b) = interval_a, interval_b
    return lo_a <= hi_b and lo_b <= hi_a


def distributional_equivalence(sample_a: Sequence[float],
                               sample_b: Sequence[float],
                               alpha: float = 0.01) -> Dict[str, object]:
    """Combined two-backend equivalence verdict.

    Runs the KS test and the CI-overlap check on the two samples and
    returns a row with ``d``, ``p``, both intervals, and the booleans
    the parity suite asserts: ``ks_pass`` (``p > alpha`` — the
    distributions are not detectably different) and ``ci_overlap``.
    ``alpha`` defaults to 0.01: the suite runs one test per algorithm
    per metric, so a loose 0.05 would false-alarm roughly once per
    seven-algorithm sweep-of-sweeps.
    """
    d, p = ks_two_sample(sample_a, sample_b)
    ci_a = confidence_interval(sample_a)
    ci_b = confidence_interval(sample_b)
    return {
        "d": d,
        "p": p,
        "ci_a": ci_a,
        "ci_b": ci_b,
        "ks_pass": p > alpha,
        "ci_overlap": intervals_overlap(ci_a, ci_b),
    }


def ranking_agreement(scores_a: Sequence[float],
                      scores_b: Sequence[float]) -> float:
    """Pairwise order agreement between two score vectors, in [0, 1].

    1 means every pair is ordered identically (Kendall tau = 1);
    0.5 is chance. Ties in either vector count as half agreement.
    """
    if len(scores_a) != len(scores_b):
        raise ValueError("score vectors must have equal length")
    n = len(scores_a)
    pairs = agree = 0
    for i in range(n):
        for j in range(i + 1, n):
            pairs += 1
            da = scores_a[i] - scores_a[j]
            db = scores_b[i] - scores_b[j]
            if da == 0 or db == 0:
                agree += 0.5
            elif (da > 0) == (db > 0):
                agree += 1
    return agree / pairs if pairs else 1.0
