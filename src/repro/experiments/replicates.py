"""Replicated runs: means, deviations, confidence intervals — and a
crash-safe sweep runner.

A single seed is an anecdote. This module runs a configuration across
several seeds and aggregates the headline metrics — what a careful
reproduction (and the seed-averaged benchmark assertions) should quote.

Two runners are provided:

* :func:`run_replicates` — the original in-process loop: fast, simple,
  but one hung or crashed replicate loses the whole sweep.
* :func:`run_resilient_sweep` — production-scale sweeps on the
  persistent worker-pool engine (:mod:`repro.experiments.executor`):
  ``jobs`` warm workers execute replicates concurrently with crash
  isolation (a segfault or OOM kills one worker, not the sweep),
  per-replicate wall-clock timeouts that stall nobody else, bounded
  retry-with-reseed, and a JSON checkpoint journal that lets an
  interrupted sweep resume from its completed replicates.

The resilient sweep is **order-independent deterministic**: every
replicate's effective seed depends only on ``(config fingerprint,
requested seed, attempt)``, never on which worker ran it or in what
order replicates finished, and journal records are flushed by a single
writer in canonical seed order. Aggregates and journal contents are
therefore digest-identical across ``jobs=1``, ``jobs=8``, and an
interrupted-then-resumed run (:meth:`SweepResult.canonical_digest`,
:func:`journal_digest`). Telemetry — per-replicate wall time, queue
wait, worker id, any :mod:`repro.obs` payload the replicate sampled
(compacted series, profile aggregates, trace counts), and the
end-of-sweep utilization summary — rides along in dedicated fields
that the digests deliberately exclude.

Confidence intervals use the normal approximation
``mean ± z * std / sqrt(n)``; with the typical 3-10 replicates this is
a pragmatic error bar, not a exact small-sample interval — callers
needing exactness can take the raw ``values`` and do their own
statistics (scipy's t-distribution, bootstrap, ...).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import re
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.experiments.executor import (DEFAULT_RECYCLE_AFTER, TaskResult,
                                        TaskSpec, default_jobs, run_tasks)
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import run_simulation

__all__ = ["MetricSummary", "ReplicateResult", "run_replicates",
           "ReplicateOutcome", "SweepResult", "run_resilient_sweep",
           "journal_digest", "HEADLINE_METRICS"]

#: Metric name -> extractor used by :func:`run_replicates`.
HEADLINE_METRICS: Dict[str, Callable[[SimulationMetrics], Optional[float]]] = {
    "mean_completion_time": lambda m: m.mean_completion_time(),
    "completion_fraction": lambda m: m.completion_fraction(),
    "final_fairness": lambda m: m.final_fairness(),
    "mean_bootstrap_time": lambda m: m.mean_bootstrap_time(),
    "susceptibility": lambda m: m.susceptibility(),
}

#: Two-sided z value for a 95% normal interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric across replicates.

    ``n_missing`` counts replicate values that were ``None`` or
    non-finite (a metric with no data — e.g. nobody completed — or a
    replicate that failed outright); the mean/std/CI are computed over
    the finite values only, and are ``nan`` when there are none.
    """

    name: str
    values: tuple
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n_missing: int = 0

    @property
    def n(self) -> int:
        return len(self.values)


def _summarise(name: str, values: Sequence[Optional[float]]) -> MetricSummary:
    finite = [v for v in values if v is not None and math.isfinite(v)]
    n_missing = len(values) - len(finite)
    if not finite:
        # No usable data at all: report nan, not a misleading "infinite
        # mean" — report tables render nan as missing, inf as a value.
        nan = float("nan")
        return MetricSummary(name, tuple(values), nan, nan, nan, nan,
                             n_missing=n_missing)
    mean = sum(finite) / len(finite)
    if len(finite) > 1:
        var = sum((v - mean) ** 2 for v in finite) / (len(finite) - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    half = _Z95 * std / math.sqrt(len(finite))
    return MetricSummary(name, tuple(values), mean, std,
                         mean - half, mean + half, n_missing=n_missing)


@dataclass(frozen=True)
class ReplicateResult:
    """All replicate summaries for one configuration."""

    config: SimulationConfig
    seeds: tuple
    metrics: Dict[str, MetricSummary]

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    def to_rows(self) -> List[Dict[str, float]]:
        """Table-friendly rows: one per metric."""
        return [{
            "metric": s.name,
            "mean": s.mean,
            "std": s.std,
            "ci_low": s.ci_low,
            "ci_high": s.ci_high,
            "n": s.n,
            "n_missing": s.n_missing,
        } for s in self.metrics.values()]


def run_replicates(config: SimulationConfig,
                   seeds: Iterable[int],
                   extractors: Optional[Dict[str, Callable]] = None,
                   ) -> ReplicateResult:
    """Run ``config`` once per seed and aggregate the metrics.

    ``extractors`` defaults to :data:`HEADLINE_METRICS`; pass your own
    mapping to aggregate anything a :class:`SimulationMetrics` exposes.
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    chosen = extractors or HEADLINE_METRICS
    collected: Dict[str, List[Optional[float]]] = {
        name: [] for name in chosen}
    for seed in seeds:
        metrics = run_simulation(config.with_seed(seed)).metrics
        for name, extract in chosen.items():
            collected[name].append(extract(metrics))
    summaries = {name: _summarise(name, values)
                 for name, values in collected.items()}
    return ReplicateResult(config=config, seeds=seeds, metrics=summaries)


# ----------------------------------------------------------------------
# Crash-safe sweep runner
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ReplicateOutcome:
    """What happened to one replicate of a resilient sweep.

    ``seed`` is the requested seed; ``used_seed`` the one that actually
    produced the result (they differ when a crash/timeout forced a
    retry-with-reseed). ``values`` holds the extracted metrics, all
    ``None`` when the replicate exhausted its attempts and was recorded
    as failed. ``telemetry`` (worker id, wall time, queue wait) is
    observational and excluded from determinism digests.

    ``degraded`` marks a replicate whose run the progress watchdog
    finalized early (a livelocked swarm with partial metrics — see
    :mod:`repro.sim.guards`); it is deterministic and journaled.
    ``bundle_path`` links to the crash-forensics bundle the guards
    wrote (violation, stall, or exception); it is machine-local, so —
    like telemetry — it is journaled but digest-excluded.
    """

    seed: int
    used_seed: int
    attempts: int
    status: str  # "ok" | "failed"
    error: Optional[str]
    values: Dict[str, Optional[float]]
    telemetry: Optional[Dict[str, Any]] = None
    degraded: bool = False
    bundle_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def canonical_dict(self) -> Dict[str, Any]:
        """The deterministic portion of this outcome (no telemetry,
        no machine-local bundle path)."""
        return {
            "seed": self.seed,
            "used_seed": self.used_seed,
            "attempts": self.attempts,
            "status": self.status,
            "error": self.error,
            "values": dict(self.values),
            "degraded": self.degraded,
        }


@dataclass(frozen=True)
class SweepResult:
    """Aggregates plus per-replicate outcomes of a resilient sweep.

    ``telemetry`` is the engine's end-of-sweep summary (worker count,
    utilization, crashes, timeouts, recycles, ...); it describes *how*
    the sweep ran and is excluded from :meth:`canonical_digest`.
    """

    config: SimulationConfig
    seeds: tuple
    outcomes: Tuple[ReplicateOutcome, ...]
    metrics: Dict[str, MetricSummary]
    resumed: int  # replicates restored from the checkpoint journal
    telemetry: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def n_degraded(self) -> int:
        """Replicates the watchdog finalized early (partial metrics)."""
        return sum(1 for o in self.outcomes if o.degraded)

    def to_rows(self) -> List[Dict[str, float]]:
        return [{
            "metric": s.name,
            "mean": s.mean,
            "std": s.std,
            "ci_low": s.ci_low,
            "ci_high": s.ci_high,
            "n": s.n,
            "n_missing": s.n_missing,
        } for s in self.metrics.values()]

    def canonical_digest(self) -> str:
        """SHA-256 over everything deterministic in this sweep.

        Identical for ``jobs=1`` vs ``jobs=N`` and for interrupted-
        then-resumed vs uninterrupted runs of the same configuration;
        telemetry (timings, worker ids, utilization) is excluded.
        """
        payload = {
            "config": _config_fingerprint(self.config),
            "seeds": list(self.seeds),
            "outcomes": [o.canonical_dict() for o in self.outcomes],
            "metrics": {name: {
                "values": list(s.values),
                "mean": s.mean,
                "std": s.std,
                "ci_low": s.ci_low,
                "ci_high": s.ci_high,
                "n_missing": s.n_missing,
            } for name, s in self.metrics.items()},
        }
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _replicate_task(config: SimulationConfig, seed: int) -> SimulationMetrics:
    """Default worker task: one full simulation run (module-level so it
    pickles into the worker process)."""
    return run_simulation(config.with_seed(seed)).metrics


def _derive_seed(fingerprint: str, seed: int, attempt: int) -> int:
    """Deterministic retry seed for attempt >= 2.

    Derived from ``(config fingerprint, requested seed, attempt)``
    only — independent of worker assignment, completion order, and
    resume boundaries, so a retried replicate lands on the same
    effective seed no matter how the sweep is scheduled. Attempt 1
    always uses the requested seed itself (see :func:`_used_seed`).
    """
    digest = hashlib.sha256(
        f"{fingerprint}|{seed}|{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _used_seed(fingerprint: str, seed: int, attempt: int) -> int:
    return seed if attempt <= 1 else _derive_seed(fingerprint, seed, attempt)


def _config_fingerprint(config: SimulationConfig) -> str:
    """Stable identity of a configuration for journal validation."""
    return repr(config)


def _journal_append(path: str, record: Dict[str, Any]) -> None:
    """Append one JSON line and force it to disk (crash safety).

    Only ever called from the sweep's parent process, in canonical
    seed order (the engine emits completions as an in-order prefix) —
    the single-writer path that keeps journal bytes independent of
    worker count and completion order.
    """
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _journal_load(path: str, fingerprint: str,
                  metric_names: Sequence[str],
                  ) -> Dict[int, ReplicateOutcome]:
    """Read completed replicates back from a checkpoint journal.

    Truncated trailing lines (the sweep died mid-write) are ignored;
    a journal written for a different configuration or metric set is
    rejected rather than silently producing mixed aggregates.
    """
    if not os.path.exists(path):
        return {}
    completed: Dict[int, ReplicateOutcome] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed sweep
            if record.get("kind") == "header":
                if record.get("config") != fingerprint:
                    raise ValueError(
                        f"checkpoint journal {path!r} was written for a "
                        "different configuration; delete it or use a "
                        "fresh path")
                if set(record.get("metrics", [])) != set(metric_names):
                    raise ValueError(
                        f"checkpoint journal {path!r} aggregates different "
                        "metrics; delete it or use a fresh path")
                continue
            if record.get("kind") != "replicate":
                continue  # summary/telemetry records are observational
            values = {name: record["values"].get(name)
                      for name in metric_names}
            completed[int(record["seed"])] = ReplicateOutcome(
                seed=int(record["seed"]),
                used_seed=int(record["used_seed"]),
                attempts=int(record["attempts"]),
                status=record["status"],
                error=record.get("error"),
                values=values,
                telemetry=record.get("telemetry"),
                degraded=bool(record.get("degraded", False)),
                bundle_path=record.get("bundle_path"),
            )
    return completed


def journal_digest(path: str) -> str:
    """SHA-256 over a journal's deterministic content.

    Covers the header and every parseable replicate record with the
    ``telemetry`` key removed; summary records, torn trailing lines,
    and unknown kinds are skipped. Two sweeps of the same configuration
    produce the same digest regardless of ``jobs`` and regardless of
    interrupt/resume boundaries.
    """
    canonical: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            kind = record.get("kind")
            if kind not in ("header", "replicate"):
                continue
            record.pop("telemetry", None)
            # Bundle paths are machine-local (absolute paths under the
            # configured bundle dir): journaled for forensics, but not
            # part of the sweep's deterministic identity.
            record.pop("bundle_path", None)
            canonical.append(json.dumps(record, sort_keys=True))
    blob = "\n".join(canonical)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_resilient_sweep(config: SimulationConfig,
                        seeds: Iterable[int],
                        extractors: Optional[Dict[str, Callable]] = None,
                        *,
                        journal_path: Optional[str] = None,
                        timeout: Optional[float] = None,
                        max_attempts: int = 3,
                        task: Callable[..., Any] = _replicate_task,
                        jobs: Optional[int] = None,
                        recycle_after: Optional[int] = DEFAULT_RECYCLE_AFTER,
                        start_method: str = "spawn",
                        ) -> SweepResult:
    """Crash-safe replicated sweep on a persistent worker pool.

    ``jobs`` warm workers (default: cores minus one) pull replicates
    from a shared queue — no per-replicate process spawn. A replicate
    that crashes its worker or exceeds ``timeout`` seconds of wall
    clock is retried — up to ``max_attempts`` total tries, each with a
    deterministically reseeded configuration — and recorded as failed
    (not fatal to the sweep) if every attempt dies; only the affected
    worker is killed and respawned, its siblings keep running. Workers
    are recycled after ``recycle_after`` tasks to bound leaked memory.

    Completed replicates are appended to ``journal_path`` (JSON lines,
    fsynced, single writer, canonical seed order), so re-running the
    same call after an interruption resumes from where the sweep died
    and yields aggregates — and journal bytes — identical to an
    uninterrupted run at any ``jobs``.

    ``task(config, seed)`` must be picklable (module-level); it
    defaults to running the simulation and returning its metrics.
    ``extractors`` run in the parent process on the task's return
    value, so they may be lambdas. ``start_method`` selects the
    multiprocessing context (``"spawn"`` for portability; ``"fork"``
    for near-free worker startup on POSIX).
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    if jobs is None:
        jobs = default_jobs()
    chosen = extractors or HEADLINE_METRICS
    metric_names = list(chosen)
    fingerprint = _config_fingerprint(config)

    completed: Dict[int, ReplicateOutcome] = {}
    if journal_path is not None:
        completed = _journal_load(journal_path, fingerprint, metric_names)
        if not os.path.exists(journal_path):
            _journal_append(journal_path, {
                "kind": "header", "config": fingerprint,
                "metrics": metric_names})
    resumed = sum(1 for seed in seeds if seed in completed)

    todo = [seed for seed in seeds if seed not in completed]
    outcome_by_seed: Dict[int, ReplicateOutcome] = dict(completed)

    def _args_for(seed: int) -> Callable[[int], tuple]:
        return lambda attempt: (config, _used_seed(fingerprint, seed,
                                                   attempt))

    def _on_result(result: TaskResult) -> None:
        outcome = _outcome_from_result(result, fingerprint, chosen,
                                       metric_names, max_attempts)
        outcome_by_seed[outcome.seed] = outcome
        if journal_path is not None:
            record = {"kind": "replicate", **outcome.canonical_dict()}
            record["telemetry"] = outcome.telemetry
            if outcome.bundle_path is not None:
                record["bundle_path"] = outcome.bundle_path
            _journal_append(journal_path, record)

    specs = [TaskSpec(key=seed, fn=task, args=_args_for(seed),
                      max_attempts=max_attempts) for seed in todo]
    report = run_tasks(specs, jobs=jobs, timeout=timeout,
                       recycle_after=recycle_after, on_result=_on_result,
                       start_method=start_method)
    sweep_telemetry = report.stats.as_dict()
    if journal_path is not None:
        _journal_append(journal_path, {"kind": "summary",
                                       "telemetry": sweep_telemetry})

    outcomes = [outcome_by_seed[seed] for seed in seeds]
    summaries = {
        name: _summarise(name, [o.values.get(name) for o in outcomes])
        for name in metric_names}
    return SweepResult(config=config, seeds=seeds,
                       outcomes=tuple(outcomes), metrics=summaries,
                       resumed=resumed, telemetry=sweep_telemetry)


def _outcome_from_result(result: TaskResult, fingerprint: str,
                         extractors: Dict[str, Callable],
                         metric_names: Sequence[str],
                         max_attempts: int) -> ReplicateOutcome:
    """Turn an engine task result into a journaled replicate outcome."""
    seed = result.key
    telemetry = result.telemetry.as_dict()
    if result.ok:
        # Observability payloads (compacted series, profile aggregates,
        # trace counts — see repro.obs) ride home on ``metrics.obs``;
        # lift them into the outcome's telemetry so sweeps journal them
        # without perturbing any determinism digest (journal_digest and
        # canonical_digest both exclude telemetry).
        obs_payload = getattr(result.value, "obs", None)
        if obs_payload is not None:
            telemetry["obs"] = obs_payload
        values = {name: extract(result.value)
                  for name, extract in extractors.items()}
        return ReplicateOutcome(
            seed=seed,
            used_seed=_used_seed(fingerprint, seed, result.attempts),
            attempts=result.attempts, status="ok", error=None,
            values=values, telemetry=telemetry,
            degraded=bool(getattr(result.value, "degraded", False)),
            bundle_path=getattr(result.value, "bundle_path", None))
    error = (f"{result.error} "
             f"(attempt {result.attempts}/{max_attempts})")
    # Guard failures embed their forensics bundle in the message
    # (exceptions cross the worker pipe as strings); lift it out so
    # the journal links straight to the bundle.
    match = re.search(r"\[bundle: ([^\]]+)\]", result.error or "")
    return ReplicateOutcome(
        seed=seed, used_seed=seed, attempts=result.attempts,
        status="failed", error=error,
        values={name: None for name in metric_names},
        telemetry=telemetry,
        bundle_path=match.group(1) if match else None)
