"""Replicated runs: means, deviations, confidence intervals — and a
crash-safe sweep runner.

A single seed is an anecdote. This module runs a configuration across
several seeds and aggregates the headline metrics — what a careful
reproduction (and the seed-averaged benchmark assertions) should quote.

Two runners are provided:

* :func:`run_replicates` — the original in-process loop: fast, simple,
  but one hung or crashed replicate loses the whole sweep.
* :func:`run_resilient_sweep` — production-scale sweeps: each replicate
  executes in its own single-worker ``ProcessPoolExecutor`` (so a
  segfault or OOM kills the worker, not the sweep), under a wall-clock
  timeout, with bounded retry-with-reseed on crash/timeout, and a JSON
  checkpoint journal that lets an interrupted sweep resume from its
  completed replicates. The aggregates of a resumed sweep are identical
  to those of an uninterrupted one.

Confidence intervals use the normal approximation
``mean ± z * std / sqrt(n)``; with the typical 3-10 replicates this is
a pragmatic error bar, not a exact small-sample interval — callers
needing exactness can take the raw ``values`` and do their own
statistics (scipy's t-distribution, bootstrap, ...).
"""

from __future__ import annotations

import json
import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import run_simulation

__all__ = ["MetricSummary", "ReplicateResult", "run_replicates",
           "ReplicateOutcome", "SweepResult", "run_resilient_sweep",
           "HEADLINE_METRICS"]

#: Metric name -> extractor used by :func:`run_replicates`.
HEADLINE_METRICS: Dict[str, Callable[[SimulationMetrics], Optional[float]]] = {
    "mean_completion_time": lambda m: m.mean_completion_time(),
    "completion_fraction": lambda m: m.completion_fraction(),
    "final_fairness": lambda m: m.final_fairness(),
    "mean_bootstrap_time": lambda m: m.mean_bootstrap_time(),
    "susceptibility": lambda m: m.susceptibility(),
}

#: Two-sided z value for a 95% normal interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric across replicates.

    ``n_missing`` counts replicate values that were ``None`` or
    non-finite (a metric with no data — e.g. nobody completed — or a
    replicate that failed outright); the mean/std/CI are computed over
    the finite values only, and are ``nan`` when there are none.
    """

    name: str
    values: tuple
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n_missing: int = 0

    @property
    def n(self) -> int:
        return len(self.values)


def _summarise(name: str, values: Sequence[Optional[float]]) -> MetricSummary:
    finite = [v for v in values if v is not None and math.isfinite(v)]
    n_missing = len(values) - len(finite)
    if not finite:
        # No usable data at all: report nan, not a misleading "infinite
        # mean" — report tables render nan as missing, inf as a value.
        nan = float("nan")
        return MetricSummary(name, tuple(values), nan, nan, nan, nan,
                             n_missing=n_missing)
    mean = sum(finite) / len(finite)
    if len(finite) > 1:
        var = sum((v - mean) ** 2 for v in finite) / (len(finite) - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    half = _Z95 * std / math.sqrt(len(finite))
    return MetricSummary(name, tuple(values), mean, std,
                         mean - half, mean + half, n_missing=n_missing)


@dataclass(frozen=True)
class ReplicateResult:
    """All replicate summaries for one configuration."""

    config: SimulationConfig
    seeds: tuple
    metrics: Dict[str, MetricSummary]

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    def to_rows(self) -> List[Dict[str, float]]:
        """Table-friendly rows: one per metric."""
        return [{
            "metric": s.name,
            "mean": s.mean,
            "std": s.std,
            "ci_low": s.ci_low,
            "ci_high": s.ci_high,
            "n": s.n,
            "n_missing": s.n_missing,
        } for s in self.metrics.values()]


def run_replicates(config: SimulationConfig,
                   seeds: Iterable[int],
                   extractors: Optional[Dict[str, Callable]] = None,
                   ) -> ReplicateResult:
    """Run ``config`` once per seed and aggregate the metrics.

    ``extractors`` defaults to :data:`HEADLINE_METRICS`; pass your own
    mapping to aggregate anything a :class:`SimulationMetrics` exposes.
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    chosen = extractors or HEADLINE_METRICS
    collected: Dict[str, List[Optional[float]]] = {
        name: [] for name in chosen}
    for seed in seeds:
        metrics = run_simulation(config.with_seed(seed)).metrics
        for name, extract in chosen.items():
            collected[name].append(extract(metrics))
    summaries = {name: _summarise(name, values)
                 for name, values in collected.items()}
    return ReplicateResult(config=config, seeds=seeds, metrics=summaries)


# ----------------------------------------------------------------------
# Crash-safe sweep runner
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ReplicateOutcome:
    """What happened to one replicate of a resilient sweep.

    ``seed`` is the requested seed; ``used_seed`` the one that actually
    produced the result (they differ when a crash/timeout forced a
    retry-with-reseed). ``values`` holds the extracted metrics, all
    ``None`` when the replicate exhausted its attempts and was recorded
    as failed.
    """

    seed: int
    used_seed: int
    attempts: int
    status: str  # "ok" | "failed"
    error: Optional[str]
    values: Dict[str, Optional[float]]

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class SweepResult:
    """Aggregates plus per-replicate outcomes of a resilient sweep."""

    config: SimulationConfig
    seeds: tuple
    outcomes: Tuple[ReplicateOutcome, ...]
    metrics: Dict[str, MetricSummary]
    resumed: int  # replicates restored from the checkpoint journal

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    def to_rows(self) -> List[Dict[str, float]]:
        return [{
            "metric": s.name,
            "mean": s.mean,
            "std": s.std,
            "ci_low": s.ci_low,
            "ci_high": s.ci_high,
            "n": s.n,
            "n_missing": s.n_missing,
        } for s in self.metrics.values()]


def _replicate_task(config: SimulationConfig, seed: int) -> SimulationMetrics:
    """Default worker task: one full simulation run (module-level so it
    pickles into the worker process)."""
    return run_simulation(config.with_seed(seed)).metrics


def _reseed(seed: int, attempt: int) -> int:
    """Deterministic retry seed: distinct per attempt, stable across
    resumes, far from any plausible user-chosen seed range."""
    return seed + 1_000_003 * attempt


def _config_fingerprint(config: SimulationConfig) -> str:
    """Stable identity of a configuration for journal validation."""
    return repr(config)


def _journal_append(path: str, record: Dict[str, Any]) -> None:
    """Append one JSON line and force it to disk (crash safety)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _journal_load(path: str, fingerprint: str,
                  metric_names: Sequence[str],
                  ) -> Dict[int, ReplicateOutcome]:
    """Read completed replicates back from a checkpoint journal.

    Truncated trailing lines (the sweep died mid-write) are ignored;
    a journal written for a different configuration or metric set is
    rejected rather than silently producing mixed aggregates.
    """
    if not os.path.exists(path):
        return {}
    completed: Dict[int, ReplicateOutcome] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed sweep
            if record.get("kind") == "header":
                if record.get("config") != fingerprint:
                    raise ValueError(
                        f"checkpoint journal {path!r} was written for a "
                        "different configuration; delete it or use a "
                        "fresh path")
                if set(record.get("metrics", [])) != set(metric_names):
                    raise ValueError(
                        f"checkpoint journal {path!r} aggregates different "
                        "metrics; delete it or use a fresh path")
                continue
            if record.get("kind") != "replicate":
                continue
            values = {name: record["values"].get(name)
                      for name in metric_names}
            completed[int(record["seed"])] = ReplicateOutcome(
                seed=int(record["seed"]),
                used_seed=int(record["used_seed"]),
                attempts=int(record["attempts"]),
                status=record["status"],
                error=record.get("error"),
                values=values,
            )
    return completed


def _run_isolated(task: Callable[..., Any], config: SimulationConfig,
                  used_seed: int, timeout: Optional[float]) -> Any:
    """Execute one replicate in a dedicated single-worker process.

    The private pool means a crashing worker (segfault, OOM-kill) or a
    hung replicate takes down only itself: on timeout the worker is
    terminated so it cannot linger and fight the next attempt for CPU.
    """
    pool = ProcessPoolExecutor(max_workers=1)
    try:
        future = pool.submit(task, config, used_seed)
        result = future.result(timeout=timeout)
    except (Exception, KeyboardInterrupt):
        # Kill the worker before re-raising: a hung or still-running
        # process must not outlive its replicate.
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        raise
    pool.shutdown(wait=True)
    return result


def run_resilient_sweep(config: SimulationConfig,
                        seeds: Iterable[int],
                        extractors: Optional[Dict[str, Callable]] = None,
                        *,
                        journal_path: Optional[str] = None,
                        timeout: Optional[float] = None,
                        max_attempts: int = 3,
                        task: Callable[..., Any] = _replicate_task,
                        ) -> SweepResult:
    """Crash-safe replicated sweep with checkpoint/resume.

    Each seed runs in its own worker process. A replicate that crashes
    the worker or exceeds ``timeout`` seconds of wall clock is retried
    — up to ``max_attempts`` total tries, each with a deterministically
    reseeded configuration — and recorded as failed (not fatal to the
    sweep) if every attempt dies. Completed replicates are appended to
    ``journal_path`` (JSON lines, fsynced), so re-running the same call
    after an interruption resumes from where the sweep died and yields
    aggregates identical to an uninterrupted run.

    ``task(config, seed)`` must be picklable (module-level); it
    defaults to running the simulation and returning its metrics.
    ``extractors`` run in the parent process on the task's return
    value, so they may be lambdas.
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    chosen = extractors or HEADLINE_METRICS
    metric_names = list(chosen)
    fingerprint = _config_fingerprint(config)

    completed: Dict[int, ReplicateOutcome] = {}
    if journal_path is not None:
        completed = _journal_load(journal_path, fingerprint, metric_names)
        if not os.path.exists(journal_path):
            _journal_append(journal_path, {
                "kind": "header", "config": fingerprint,
                "metrics": metric_names})
    resumed = sum(1 for seed in seeds if seed in completed)

    outcomes: List[ReplicateOutcome] = []
    for seed in seeds:
        if seed in completed:
            outcomes.append(completed[seed])
            continue
        outcome: Optional[ReplicateOutcome] = None
        last_error: Optional[str] = None
        for attempt in range(1, max_attempts + 1):
            used_seed = seed if attempt == 1 else _reseed(seed, attempt - 1)
            try:
                produced = _run_isolated(task, config, used_seed, timeout)
            except KeyboardInterrupt:
                raise  # an interrupted sweep resumes from the journal
            except FutureTimeoutError:
                last_error = (f"timeout after {timeout}s "
                              f"(attempt {attempt}/{max_attempts})")
                continue
            except Exception as exc:  # worker crash or task error
                last_error = (f"{type(exc).__name__}: {exc} "
                              f"(attempt {attempt}/{max_attempts})")
                continue
            values = {name: extract(produced)
                      for name, extract in chosen.items()}
            outcome = ReplicateOutcome(
                seed=seed, used_seed=used_seed, attempts=attempt,
                status="ok", error=None, values=values)
            break
        if outcome is None:
            outcome = ReplicateOutcome(
                seed=seed, used_seed=seed, attempts=max_attempts,
                status="failed", error=last_error,
                values={name: None for name in metric_names})
        if journal_path is not None:
            _journal_append(journal_path, {
                "kind": "replicate", "seed": outcome.seed,
                "used_seed": outcome.used_seed,
                "attempts": outcome.attempts, "status": outcome.status,
                "error": outcome.error, "values": outcome.values})
        outcomes.append(outcome)

    summaries = {
        name: _summarise(name, [o.values.get(name) for o in outcomes])
        for name in metric_names}
    return SweepResult(config=config, seeds=seeds,
                       outcomes=tuple(outcomes), metrics=summaries,
                       resumed=resumed)
