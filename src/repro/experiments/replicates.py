"""Replicated runs: means, deviations, and confidence intervals.

A single seed is an anecdote. This module runs a configuration across
several seeds and aggregates the headline metrics — what a careful
reproduction (and the seed-averaged benchmark assertions) should quote.

Confidence intervals use the normal approximation
``mean ± z * std / sqrt(n)``; with the typical 3-10 replicates this is
a pragmatic error bar, not a exact small-sample interval — callers
needing exactness can take the raw ``values`` and do their own
statistics (scipy's t-distribution, bootstrap, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import run_simulation

__all__ = ["MetricSummary", "ReplicateResult", "run_replicates",
           "HEADLINE_METRICS"]

#: Metric name -> extractor used by :func:`run_replicates`.
HEADLINE_METRICS: Dict[str, Callable[[SimulationMetrics], Optional[float]]] = {
    "mean_completion_time": lambda m: m.mean_completion_time(),
    "completion_fraction": lambda m: m.completion_fraction(),
    "final_fairness": lambda m: m.final_fairness(),
    "mean_bootstrap_time": lambda m: m.mean_bootstrap_time(),
    "susceptibility": lambda m: m.susceptibility(),
}

#: Two-sided z value for a 95% normal interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric across replicates."""

    name: str
    values: tuple
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def n(self) -> int:
        return len(self.values)


def _summarise(name: str, values: Sequence[float]) -> MetricSummary:
    finite = [v for v in values if v is not None and math.isfinite(v)]
    if not finite:
        nan = float("nan")
        return MetricSummary(name, tuple(values), math.inf, nan,
                             math.inf, math.inf)
    mean = sum(finite) / len(finite)
    if len(finite) > 1:
        var = sum((v - mean) ** 2 for v in finite) / (len(finite) - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    half = _Z95 * std / math.sqrt(len(finite))
    return MetricSummary(name, tuple(values), mean, std,
                         mean - half, mean + half)


@dataclass(frozen=True)
class ReplicateResult:
    """All replicate summaries for one configuration."""

    config: SimulationConfig
    seeds: tuple
    metrics: Dict[str, MetricSummary]

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    def to_rows(self) -> List[Dict[str, float]]:
        """Table-friendly rows: one per metric."""
        return [{
            "metric": s.name,
            "mean": s.mean,
            "std": s.std,
            "ci_low": s.ci_low,
            "ci_high": s.ci_high,
            "n": s.n,
        } for s in self.metrics.values()]


def run_replicates(config: SimulationConfig,
                   seeds: Iterable[int],
                   extractors: Optional[Dict[str, Callable]] = None,
                   ) -> ReplicateResult:
    """Run ``config`` once per seed and aggregate the metrics.

    ``extractors`` defaults to :data:`HEADLINE_METRICS`; pass your own
    mapping to aggregate anything a :class:`SimulationMetrics` exposes.
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    chosen = extractors or HEADLINE_METRICS
    collected: Dict[str, List[Optional[float]]] = {
        name: [] for name in chosen}
    for seed in seeds:
        metrics = run_simulation(config.with_seed(seed)).metrics
        for name, extract in chosen.items():
            collected[name].append(extract(metrics))
    summaries = {name: _summarise(name, values)
                 for name, values in collected.items()}
    return ReplicateResult(config=config, seeds=seeds, metrics=summaries)
