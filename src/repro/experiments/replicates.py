"""Replicated runs: means, deviations, confidence intervals — and a
crash-safe sweep runner.

A single seed is an anecdote. This module runs a configuration across
several seeds and aggregates the headline metrics — what a careful
reproduction (and the seed-averaged benchmark assertions) should quote.

Two runners are provided:

* :func:`run_replicates` — the original in-process loop: fast, simple,
  but one hung or crashed replicate loses the whole sweep.
* :func:`run_resilient_sweep` — production-scale sweeps on the
  persistent worker-pool engine (:mod:`repro.experiments.executor`):
  ``jobs`` warm workers execute replicates concurrently with crash
  isolation (a segfault or OOM kills one worker, not the sweep),
  per-replicate wall-clock timeouts that stall nobody else, bounded
  retry-with-reseed, and a JSON checkpoint journal that lets an
  interrupted sweep resume from its completed replicates.

The resilient sweep is **order-independent deterministic**: every
replicate's effective seed depends only on ``(config fingerprint,
requested seed, attempt)``, never on which worker ran it or in what
order replicates finished, and journal records are flushed by a single
writer in canonical seed order. Aggregates and journal contents are
therefore digest-identical across ``jobs=1``, ``jobs=8``, an
interrupted-then-resumed run, a sweep dispatched to remote agents
(``hosts=...`` — see :mod:`repro.dist`) under any agent-crash
schedule, and a warm re-run served from the content-addressed result
cache (``cache_dir=...``) (:meth:`SweepResult.canonical_digest`,
:func:`journal_digest`). Telemetry — per-replicate wall time, queue
wait, worker id, any :mod:`repro.obs` payload the replicate sampled
(compacted series, profile aggregates, trace counts), and the
end-of-sweep utilization summary — rides along in dedicated fields
that the digests deliberately exclude.

Confidence intervals use the normal approximation
``mean ± z * std / sqrt(n)``; with the typical 3-10 replicates this is
a pragmatic error bar, not a exact small-sample interval — callers
needing exactness can take the raw ``values`` and do their own
statistics (scipy's t-distribution, bootstrap, ...).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import re
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.experiments.executor import (DEFAULT_RECYCLE_AFTER,
                                        LocalPoolBackend, TaskResult,
                                        TaskSpec, default_jobs, run_tasks)
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import run_simulation

__all__ = ["MetricSummary", "ReplicateResult", "run_replicates",
           "ReplicateOutcome", "SweepResult", "run_resilient_sweep",
           "journal_digest", "HEADLINE_METRICS"]

#: Metric name -> extractor used by :func:`run_replicates`.
HEADLINE_METRICS: Dict[str, Callable[[SimulationMetrics], Optional[float]]] = {
    "mean_completion_time": lambda m: m.mean_completion_time(),
    "completion_fraction": lambda m: m.completion_fraction(),
    "final_fairness": lambda m: m.final_fairness(),
    "mean_bootstrap_time": lambda m: m.mean_bootstrap_time(),
    "susceptibility": lambda m: m.susceptibility(),
}

#: Two-sided z value for a 95% normal interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric across replicates.

    ``n_missing`` counts replicate values that were ``None`` or
    non-finite (a metric with no data — e.g. nobody completed — or a
    replicate that failed outright); the mean/std/CI are computed over
    the finite values only, and are ``nan`` when there are none.
    """

    name: str
    values: tuple
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n_missing: int = 0

    @property
    def n(self) -> int:
        return len(self.values)


def _summarise(name: str, values: Sequence[Optional[float]]) -> MetricSummary:
    finite = [v for v in values if v is not None and math.isfinite(v)]
    n_missing = len(values) - len(finite)
    if not finite:
        # No usable data at all: report nan, not a misleading "infinite
        # mean" — report tables render nan as missing, inf as a value.
        nan = float("nan")
        return MetricSummary(name, tuple(values), nan, nan, nan, nan,
                             n_missing=n_missing)
    mean = sum(finite) / len(finite)
    if len(finite) > 1:
        var = sum((v - mean) ** 2 for v in finite) / (len(finite) - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    half = _Z95 * std / math.sqrt(len(finite))
    return MetricSummary(name, tuple(values), mean, std,
                         mean - half, mean + half, n_missing=n_missing)


@dataclass(frozen=True)
class ReplicateResult:
    """All replicate summaries for one configuration."""

    config: SimulationConfig
    seeds: tuple
    metrics: Dict[str, MetricSummary]

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    def to_rows(self) -> List[Dict[str, float]]:
        """Table-friendly rows: one per metric."""
        return [{
            "metric": s.name,
            "mean": s.mean,
            "std": s.std,
            "ci_low": s.ci_low,
            "ci_high": s.ci_high,
            "n": s.n,
            "n_missing": s.n_missing,
        } for s in self.metrics.values()]


def run_replicates(config: SimulationConfig,
                   seeds: Iterable[int],
                   extractors: Optional[Dict[str, Callable]] = None,
                   ) -> ReplicateResult:
    """Run ``config`` once per seed and aggregate the metrics.

    ``extractors`` defaults to :data:`HEADLINE_METRICS`; pass your own
    mapping to aggregate anything a :class:`SimulationMetrics` exposes.
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    chosen = extractors or HEADLINE_METRICS
    collected: Dict[str, List[Optional[float]]] = {
        name: [] for name in chosen}
    for seed in seeds:
        metrics = run_simulation(config.with_seed(seed)).metrics
        for name, extract in chosen.items():
            collected[name].append(extract(metrics))
    summaries = {name: _summarise(name, values)
                 for name, values in collected.items()}
    return ReplicateResult(config=config, seeds=seeds, metrics=summaries)


# ----------------------------------------------------------------------
# Crash-safe sweep runner
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ReplicateOutcome:
    """What happened to one replicate of a resilient sweep.

    ``seed`` is the requested seed; ``used_seed`` the one that actually
    produced the result (they differ when a crash/timeout forced a
    retry-with-reseed). ``values`` holds the extracted metrics, all
    ``None`` when the replicate exhausted its attempts and was recorded
    as failed. ``telemetry`` (worker id, wall time, queue wait) is
    observational and excluded from determinism digests.

    ``degraded`` marks a replicate whose run the progress watchdog
    finalized early (a livelocked swarm with partial metrics — see
    :mod:`repro.sim.guards`); it is deterministic and journaled.
    ``bundle_path`` links to the crash-forensics bundle the guards
    wrote (violation, stall, or exception); it is machine-local, so —
    like telemetry — it is journaled but digest-excluded.

    ``digest_lineage`` records which determinism contract produced the
    values (``"parity-v1"`` for the draw-exact object/vector engines,
    ``"fast-v1"`` for the batched-sampling backend — see
    :attr:`repro.sim.metrics.SimulationMetrics.digest_lineage`). It is
    deterministic, journaled, and part of the canonical digest:
    fast-lineage results can never silently stand in for parity ones.
    """

    seed: int
    used_seed: int
    attempts: int
    status: str  # "ok" | "failed"
    error: Optional[str]
    values: Dict[str, Optional[float]]
    telemetry: Optional[Dict[str, Any]] = None
    degraded: bool = False
    bundle_path: Optional[str] = None
    digest_lineage: str = "parity-v1"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def canonical_dict(self) -> Dict[str, Any]:
        """The deterministic portion of this outcome (no telemetry,
        no machine-local bundle path)."""
        return {
            "seed": self.seed,
            "used_seed": self.used_seed,
            "attempts": self.attempts,
            "status": self.status,
            "error": self.error,
            "values": dict(self.values),
            "degraded": self.degraded,
            "digest_lineage": self.digest_lineage,
        }


@dataclass(frozen=True)
class SweepResult:
    """Aggregates plus per-replicate outcomes of a resilient sweep.

    ``telemetry`` is the engine's end-of-sweep summary (worker count,
    utilization, crashes, timeouts, recycles, ...); it describes *how*
    the sweep ran and is excluded from :meth:`canonical_digest`.
    """

    config: SimulationConfig
    seeds: tuple
    outcomes: Tuple[ReplicateOutcome, ...]
    metrics: Dict[str, MetricSummary]
    resumed: int  # replicates restored from the checkpoint journal
    cached: int = 0  # replicates fetched from the result cache
    telemetry: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def n_degraded(self) -> int:
        """Replicates the watchdog finalized early (partial metrics)."""
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def n_backend_downgraded(self) -> int:
        """Replicates whose run fell back from the requested vector
        backend to the object engine (unsupported config axis). The
        results are still exact — the fallback is telemetry, not part
        of the determinism digest — but a sweep that silently ran 30
        object-engine replicates is not the performance the caller
        asked for, so the CLI surfaces this count."""
        return sum(1 for o in self.outcomes
                   if (o.telemetry or {}).get("backend_downgraded"))

    def to_rows(self) -> List[Dict[str, float]]:
        return [{
            "metric": s.name,
            "mean": s.mean,
            "std": s.std,
            "ci_low": s.ci_low,
            "ci_high": s.ci_high,
            "n": s.n,
            "n_missing": s.n_missing,
        } for s in self.metrics.values()]

    def canonical_digest(self) -> str:
        """SHA-256 over everything deterministic in this sweep.

        Identical for ``jobs=1`` vs ``jobs=N`` and for interrupted-
        then-resumed vs uninterrupted runs of the same configuration;
        telemetry (timings, worker ids, utilization) is excluded.
        """
        payload = {
            "config": _config_fingerprint(self.config),
            "seeds": list(self.seeds),
            "outcomes": [o.canonical_dict() for o in self.outcomes],
            "metrics": {name: {
                "values": list(s.values),
                "mean": s.mean,
                "std": s.std,
                "ci_low": s.ci_low,
                "ci_high": s.ci_high,
                "n_missing": s.n_missing,
            } for name, s in self.metrics.items()},
        }
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _replicate_task(config: SimulationConfig, seed: int) -> SimulationMetrics:
    """Default worker task: one full simulation run (module-level so it
    pickles into the worker process)."""
    return run_simulation(config.with_seed(seed)).metrics


def _derive_seed(fingerprint: str, seed: int, attempt: int) -> int:
    """Deterministic retry seed for attempt >= 2.

    Derived from ``(config fingerprint, requested seed, attempt)``
    only — independent of worker assignment, completion order, and
    resume boundaries, so a retried replicate lands on the same
    effective seed no matter how the sweep is scheduled. Attempt 1
    always uses the requested seed itself (see :func:`_used_seed`).
    """
    digest = hashlib.sha256(
        f"{fingerprint}|{seed}|{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _used_seed(fingerprint: str, seed: int, attempt: int) -> int:
    return seed if attempt <= 1 else _derive_seed(fingerprint, seed, attempt)


def _config_fingerprint(config: SimulationConfig) -> str:
    """Stable identity of a configuration for journal validation.

    ``repr(config)`` deliberately excludes the backend (object and
    vector are digest-identical, so they share journals and cache
    entries), but the fast lineage is *not* interchangeable with the
    parity one — its replicates draw from a different RNG contract.
    Non-parity lineages are therefore marked into the fingerprint, so
    a fast sweep can never resume from (or be served cached results
    of) a parity sweep, and vice versa.

    Hybrid runs (``config.population`` set) additionally append their
    shard plan *and* the subswarm backend: population, subswarm count,
    and coupling interval all change the physics, and unlike plain
    runs the two shard backends are not interchangeable inside one
    hybrid journal (a parity-backend hybrid and a fast-backend hybrid
    produce different hybrid-v1 digests).
    """
    base = repr(config)
    lineage = config.digest_lineage
    if config.population is not None:
        return (f"{base}<digest_lineage={lineage}>"
                f"<hybrid population={config.population} "
                f"n_subswarms={config.n_subswarms} "
                f"coupling_interval={config.coupling_interval} "
                f"backend={config.backend}>")
    if lineage != "parity-v1":
        return f"{base}<digest_lineage={lineage}>"
    return base


def _journal_append(path: str, record: Dict[str, Any]) -> None:
    """Append one JSON line and force it to disk (crash safety).

    Only ever called from the sweep's parent process, in canonical
    seed order (the engine emits completions as an in-order prefix) —
    the single-writer path that keeps journal bytes independent of
    worker count and completion order.
    """
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _journal_load(path: str, fingerprint: str,
                  metric_names: Sequence[str],
                  ) -> Dict[int, ReplicateOutcome]:
    """Read completed replicates back from a checkpoint journal.

    Truncated trailing lines (the sweep died mid-write) are ignored;
    a journal written for a different configuration or metric set is
    rejected rather than silently producing mixed aggregates.
    """
    if not os.path.exists(path):
        return {}
    completed: Dict[int, ReplicateOutcome] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed sweep
            if record.get("kind") == "header":
                if record.get("config") != fingerprint:
                    raise ValueError(
                        f"checkpoint journal {path!r} was written for a "
                        "different configuration; delete it or use a "
                        "fresh path")
                if set(record.get("metrics", [])) != set(metric_names):
                    raise ValueError(
                        f"checkpoint journal {path!r} aggregates different "
                        "metrics; delete it or use a fresh path")
                continue
            if record.get("kind") != "replicate":
                continue  # summary/telemetry records are observational
            values = {name: record["values"].get(name)
                      for name in metric_names}
            completed[int(record["seed"])] = ReplicateOutcome(
                seed=int(record["seed"]),
                used_seed=int(record["used_seed"]),
                attempts=int(record["attempts"]),
                status=record["status"],
                error=record.get("error"),
                values=values,
                telemetry=record.get("telemetry"),
                degraded=bool(record.get("degraded", False)),
                bundle_path=record.get("bundle_path"),
                # Journals written before lineages existed are all
                # parity runs — the fast backend postdates the field.
                digest_lineage=record.get("digest_lineage", "parity-v1"),
            )
    return completed


def journal_digest(path: str) -> str:
    """SHA-256 over a journal's deterministic content.

    Covers the header and every parseable replicate record with the
    ``telemetry`` key removed; summary records, torn trailing lines,
    and unknown kinds are skipped. Two sweeps of the same configuration
    produce the same digest regardless of ``jobs`` and regardless of
    interrupt/resume boundaries.
    """
    canonical: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            kind = record.get("kind")
            if kind not in ("header", "replicate"):
                continue
            record.pop("telemetry", None)
            # Bundle paths are machine-local (absolute paths under the
            # configured bundle dir): journaled for forensics, but not
            # part of the sweep's deterministic identity.
            record.pop("bundle_path", None)
            canonical.append(json.dumps(record, sort_keys=True))
    blob = "\n".join(canonical)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Default base (seconds) of the retry backoff ladder; attempt ``k``
#: (``k >= 2``) waits ``min(cap, base * 2**(k-2)) * (1 + jitter)``.
DEFAULT_RETRY_BACKOFF = 0.25

#: Default ceiling (seconds) of the un-jittered retry backoff.
DEFAULT_RETRY_BACKOFF_CAP = 30.0


def _retry_delay_fn(fingerprint: str, seed: int, base: float,
                    cap: float) -> Optional[Callable[[int], float]]:
    """Jittered exponential backoff between a replicate's attempts.

    The jitter is derived from the retry seed
    (``sha256(fingerprint|seed|attempt)``) — fully deterministic, so a
    re-run backs off identically and journals stay reproducible — yet
    spread across seeds, so a systematically failing config is not
    hammered by every replicate retrying in lockstep.
    """
    if base <= 0.0:
        return None

    def delay(attempt: int) -> float:
        if attempt < 2:
            return 0.0
        jitter = (_derive_seed(fingerprint, seed, attempt)
                  % 1_000_000) / 1_000_000.0
        return min(cap, base * 2.0 ** (attempt - 2)) * (1.0 + jitter)

    return delay


def run_resilient_sweep(config: SimulationConfig,
                        seeds: Iterable[int],
                        extractors: Optional[Dict[str, Callable]] = None,
                        *,
                        journal_path: Optional[str] = None,
                        timeout: Optional[float] = None,
                        max_attempts: int = 3,
                        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                        retry_backoff_cap: float = DEFAULT_RETRY_BACKOFF_CAP,
                        task: Callable[..., Any] = _replicate_task,
                        jobs: Optional[int] = None,
                        recycle_after: Optional[int] = DEFAULT_RECYCLE_AFTER,
                        start_method: str = "spawn",
                        backend: Optional[Any] = None,
                        hosts: Optional[Any] = None,
                        min_agents: int = 1,
                        local_fallback: bool = True,
                        fabric_options: Optional[Dict[str, Any]] = None,
                        cache: Optional[Any] = None,
                        cache_dir: Optional[str] = None,
                        cache_strict: bool = False,
                        ) -> SweepResult:
    """Crash-safe replicated sweep on a persistent worker pool — or a
    distributed fabric of them.

    ``jobs`` warm workers (default: cores minus one) pull replicates
    from a shared queue — no per-replicate process spawn. A replicate
    that crashes its worker or exceeds ``timeout`` seconds of wall
    clock is retried — up to ``max_attempts`` total tries, each with a
    deterministically reseeded configuration and a jittered exponential
    backoff (``retry_backoff`` base seconds, doubling per attempt up to
    ``retry_backoff_cap``, jitter derived from the retry seed so it is
    reproducible; ``retry_backoff=0`` restores immediate requeue) — and
    recorded as failed (not fatal to the sweep) if every attempt dies;
    only the affected worker is killed and respawned, its siblings keep
    running. Workers are recycled after ``recycle_after`` tasks to
    bound leaked memory.

    Completed replicates are appended to ``journal_path`` (JSON lines,
    fsynced, single writer, canonical seed order), so re-running the
    same call after an interruption resumes from where the sweep died
    and yields aggregates — and journal bytes — identical to an
    uninterrupted run at any ``jobs``.

    **Distributed execution.** Pass ``hosts`` (``"h1:7071,h2:7071"``,
    or any iterable of such specs) to dispatch replicates to
    :mod:`repro.dist` runner agents instead of the local pool; the
    dispatcher treats each host as a failure domain (re-dispatching
    in-flight replicates when an agent dies, at the same attempt
    number) and degrades to the local pool when fewer than
    ``min_agents`` agents answer (or raises ``AgentUnreachableError``
    when ``local_fallback=False``). ``fabric_options`` feeds extra
    keywords to :class:`repro.dist.FabricBackend`; alternatively pass a
    ready-made ``backend`` object (anything with ``run(specs, *,
    timeout, on_result)`` delivering results in submission order). The
    sweep's ``canonical_digest`` is byte-identical across local,
    1-agent, N-agent, and agent-crash schedules.

    **Result cache.** Pass ``cache_dir`` (or a ready
    :class:`repro.dist.ResultCache` as ``cache``) to persist completed
    ``ok`` outcomes content-addressed by ``(config fingerprint, seed)``
    and fetch them on overlapping re-runs: cache hits are journaled in
    canonical order exactly like recomputed replicates, so a warm-cache
    sweep is digest-identical to a cold one. Corrupt entries count as
    misses unless ``cache_strict`` (then ``CacheCorruptionError``).

    ``task(config, seed)`` must be picklable (module-level); it
    defaults to running the simulation and returning its metrics.
    ``extractors`` run in the parent process on the task's return
    value, so they may be lambdas. ``start_method`` selects the
    multiprocessing context (``"spawn"`` for portability; ``"fork"``
    for near-free worker startup on POSIX).
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    if retry_backoff < 0.0:
        raise ValueError("retry_backoff must be >= 0")
    if jobs is None:
        jobs = default_jobs()
    chosen = extractors or HEADLINE_METRICS
    metric_names = list(chosen)
    fingerprint = _config_fingerprint(config)

    completed: Dict[int, ReplicateOutcome] = {}
    if journal_path is not None:
        completed = _journal_load(journal_path, fingerprint, metric_names)
        if not os.path.exists(journal_path):
            _journal_append(journal_path, {
                "kind": "header", "config": fingerprint,
                "metrics": metric_names})
    resumed = sum(1 for seed in seeds if seed in completed)

    if cache is None and cache_dir is not None:
        from repro.dist.cache import ResultCache
        cache = ResultCache(cache_dir, strict=cache_strict)

    outcome_by_seed: Dict[int, ReplicateOutcome] = dict(completed)
    journaled = set(completed)

    cached_hits = 0
    if cache is not None:
        for seed in seeds:
            if seed in outcome_by_seed:
                continue
            record = cache.get(fingerprint, seed)
            if record is None:
                continue
            outcome = _outcome_from_cached(record, metric_names)
            if outcome is None:
                # Readable entry, but cached under different extractors
                # (or malformed payload): a plain miss, not corruption.
                cache.stats.hits -= 1
                cache.stats.misses += 1
                continue
            outcome_by_seed[seed] = outcome
            cached_hits += 1

    todo = [seed for seed in seeds if seed not in outcome_by_seed]

    emit_cursor = 0

    def _drain() -> None:
        """Journal the contiguous finished prefix, in canonical seed
        order, regardless of whether each outcome came from the
        journal (skip), the cache, or a just-finished task — the
        single-writer path that keeps warm-cache journal bytes
        identical to a cold run's."""
        nonlocal emit_cursor
        while (emit_cursor < len(seeds)
               and seeds[emit_cursor] in outcome_by_seed):
            seed = seeds[emit_cursor]
            emit_cursor += 1
            if seed in journaled:
                continue
            journaled.add(seed)
            if journal_path is None:
                continue
            outcome = outcome_by_seed[seed]
            record = {"kind": "replicate", **outcome.canonical_dict()}
            record["telemetry"] = outcome.telemetry
            if outcome.bundle_path is not None:
                record["bundle_path"] = outcome.bundle_path
            _journal_append(journal_path, record)

    _drain()  # flush any cache-hit prefix before computing

    def _args_for(seed: int) -> Callable[[int], tuple]:
        return lambda attempt: (config, _used_seed(fingerprint, seed,
                                                   attempt))

    def _on_result(result: TaskResult) -> None:
        outcome = _outcome_from_result(result, fingerprint, chosen,
                                       metric_names, max_attempts,
                                       lineage=config.digest_lineage)
        outcome_by_seed[outcome.seed] = outcome
        if cache is not None and outcome.ok:
            cache.put(fingerprint, outcome.seed, outcome.canonical_dict())
        _drain()

    specs = [TaskSpec(key=seed, fn=task, args=_args_for(seed),
                      max_attempts=max_attempts,
                      retry_delay=_retry_delay_fn(fingerprint, seed,
                                                  retry_backoff,
                                                  retry_backoff_cap))
             for seed in todo]
    if backend is None and hosts is not None:
        from repro.dist.dispatcher import FabricBackend
        fallback = (LocalPoolBackend(jobs=jobs,
                                     recycle_after=recycle_after,
                                     start_method=start_method)
                    if local_fallback else None)
        backend = FabricBackend(hosts, min_agents=min_agents,
                                local_fallback=fallback,
                                **(fabric_options or {}))
    if backend is None:
        report = run_tasks(specs, jobs=jobs, timeout=timeout,
                           recycle_after=recycle_after,
                           on_result=_on_result,
                           start_method=start_method)
    else:
        report = backend.run(specs, timeout=timeout, on_result=_on_result)
    sweep_telemetry = report.stats.as_dict()
    if cache is not None:
        sweep_telemetry["cache"] = cache.stats.as_dict()
    if journal_path is not None:
        _journal_append(journal_path, {"kind": "summary",
                                       "telemetry": sweep_telemetry})

    outcomes = [outcome_by_seed[seed] for seed in seeds]
    summaries = {
        name: _summarise(name, [o.values.get(name) for o in outcomes])
        for name in metric_names}
    return SweepResult(config=config, seeds=seeds,
                       outcomes=tuple(outcomes), metrics=summaries,
                       resumed=resumed, cached=cached_hits,
                       telemetry=sweep_telemetry)


def _outcome_from_cached(record: Any, metric_names: Sequence[str],
                         ) -> Optional[ReplicateOutcome]:
    """Rebuild a replicate outcome from a cached canonical dict.

    Returns ``None`` when the entry — though intact — does not match
    this sweep's metric set or shape (cached by a sweep with different
    extractors): callers treat that as a plain miss.
    """
    if not isinstance(record, dict) or record.get("status") != "ok":
        return None
    values = record.get("values")
    if not isinstance(values, dict) or set(values) != set(metric_names):
        return None
    try:
        return ReplicateOutcome(
            seed=int(record["seed"]),
            used_seed=int(record["used_seed"]),
            attempts=int(record["attempts"]),
            status="ok",
            error=record.get("error"),
            values={name: values.get(name) for name in metric_names},
            telemetry={"cache": "hit"},
            degraded=bool(record.get("degraded", False)),
            digest_lineage=record.get("digest_lineage", "parity-v1"))
    except (KeyError, TypeError, ValueError):
        return None


def _outcome_from_result(result: TaskResult, fingerprint: str,
                         extractors: Dict[str, Callable],
                         metric_names: Sequence[str],
                         max_attempts: int,
                         lineage: str = "parity-v1") -> ReplicateOutcome:
    """Turn an engine task result into a journaled replicate outcome."""
    seed = result.key
    telemetry = result.telemetry.as_dict()
    if result.ok:
        # Observability payloads (compacted series, profile aggregates,
        # trace counts — see repro.obs) ride home on ``metrics.obs``;
        # lift them into the outcome's telemetry so sweeps journal them
        # without perturbing any determinism digest (journal_digest and
        # canonical_digest both exclude telemetry).
        obs_payload = getattr(result.value, "obs", None)
        if obs_payload is not None:
            telemetry["obs"] = obs_payload
        # A vector(-fast) request that fell back to the object engine
        # is exact but slow; carry the reason so sweeps can report how
        # many replicates actually ran on the requested backend (and
        # why they did not).
        downgraded = getattr(result.value, "backend_downgraded", None)
        if downgraded:
            telemetry["backend_downgraded"] = downgraded
        values = {name: extract(result.value)
                  for name, extract in extractors.items()}
        return ReplicateOutcome(
            seed=seed,
            used_seed=_used_seed(fingerprint, seed, result.attempts),
            attempts=result.attempts, status="ok", error=None,
            values=values, telemetry=telemetry,
            degraded=bool(getattr(result.value, "degraded", False)),
            bundle_path=getattr(result.value, "bundle_path", None),
            digest_lineage=getattr(result.value, "digest_lineage",
                                   "parity-v1"))
    error = (f"{result.error} "
             f"(attempt {result.attempts}/{max_attempts})")
    # Guard failures embed their forensics bundle in the message
    # (exceptions cross the worker pipe as strings); lift it out so
    # the journal links straight to the bundle.
    match = re.search(r"\[bundle: ([^\]]+)\]", result.error or "")
    return ReplicateOutcome(
        seed=seed, used_seed=seed, attempts=result.attempts,
        status="failed", error=error,
        values={name: None for name in metric_names},
        telemetry=telemetry,
        bundle_path=match.group(1) if match else None,
        digest_lineage=lineage)
