"""Full reproduction report: every table and figure in one pass.

:func:`full_report` regenerates Tables I-III, the Figure 2/3 rankings,
and Figures 4-6 and renders them as one text document — the artifact a
reader compares against the paper. Used by ``examples/`` and by
``EXPERIMENTS.md``'s regeneration instructions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import figures, tables
from repro.sim.config import SimulationConfig

__all__ = ["full_report"]


def _bootstrap_trajectory_chart() -> str:
    """Mean-field Figure 4c: the Table II dynamics drawn as curves."""
    from repro.core import bootstrapping as boot
    from repro.names import ALL_ALGORITHMS
    from repro.utils import ascii_chart

    params = boot.BootstrapParameters(n_users=1000, pi_dr=0.2, omega=0.3)
    series = {}
    for algorithm in ALL_ALGORITHMS:
        rows = boot.bootstrap_trajectory(algorithm, params, n_slots=40)
        series[algorithm.display_name] = [(r["slot"], r["fraction"])
                                          for r in rows]
    return ascii_chart(
        series, width=60, height=12,
        title="Mean-field bootstrap curves (Table II dynamics, N = 1000)")


def full_report(base: Optional[SimulationConfig] = None,
                include_figures: bool = True) -> str:
    """Render the complete paper-reproduction report as text."""
    sections: List[str] = [
        "Reproduction report: 'A Performance Analysis of Incentive "
        "Mechanisms for Cooperative Computing' (ICDCS 2016)",
        "",
        tables.table1_text(),
        "",
        tables.table2_text(),
        "",
        tables.table3_text(),
        "",
    ]

    rankings2 = tables.figure2_rankings()
    sections.append("Figure 2 - idealized rankings (best first):")
    sections.append("  efficiency: " + " > ".join(
        a.display_name for a in rankings2["efficiency"]))
    sections.append("  fairness:   " + " > ".join(
        a.display_name for a in rankings2["fairness"]))
    sections.append("")

    rankings3 = tables.figure3_rankings()
    sections.append("Figure 3 - piece-availability efficiency ranking:")
    sections.append("  " + " > ".join(
        a.display_name for a in rankings3["ranking"]))
    sections.append("")

    sections.append(_bootstrap_trajectory_chart())
    sections.append("")

    if include_figures:
        for fig in (figures.figure4(base), figures.figure5(base),
                    figures.figure6(base)):
            sections.append(fig.to_text())
            sections.append("")

    return "\n".join(sections)
