"""repro: reproduction of *A Performance Analysis of Incentive
Mechanisms for Cooperative Computing* (Joe-Wong, Im, Shin, Ha —
IEEE ICDCS 2016).

The package has two layers joined by the :class:`repro.names.Algorithm`
enumeration:

* :mod:`repro.core` — the paper's analytical models (Tables I-III,
  Lemmas 1-3, Propositions 1-4, Corollaries 1-2);
* :mod:`repro.sim` + :mod:`repro.algorithms` + :mod:`repro.attacks` —
  the event-driven swarm simulator validating them (Figures 4-6);
* :mod:`repro.experiments` — scenario presets and runners that
  regenerate every table and figure of the evaluation.
"""

from repro.names import Algorithm  # noqa: F401

__version__ = "1.0.0"

__all__ = ["Algorithm", "__version__"]
