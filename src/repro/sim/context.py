"""The controlled interface strategies use to act on the swarm.

Each round, the runner hands every peer's strategy a
:class:`StrategyContext`. The context exposes read access to the state
the algorithm class is allowed to see (neighbor views, pairwise
ledgers, the global reputation board) and *guarded* mutations: sends
are budget-checked and routed through the runner so ledgers, metrics,
availability and T-Chain key state all stay consistent no matter which
strategy is driving.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional

from repro.sim.peer import Peer, PendingPiece

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runner import Simulation

__all__ = ["StrategyContext"]


class StrategyContext:
    """One peer's per-round window onto the simulation."""

    def __init__(self, runner: "Simulation", peer: Peer,
                 rng: random.Random) -> None:
        self._runner = runner
        self.peer = peer
        self.rng = rng

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        return self._runner.round_index

    @property
    def params(self):
        return self._runner.config.strategy_params

    def budget(self) -> int:
        """Whole pieces this peer may still send this round."""
        return self.peer.budget.available()

    def neighbors(self) -> List[int]:
        """Active neighbor ids, ascending (a fresh, mutable copy)."""
        return self._runner.swarm.neighbors(self.peer.peer_id)

    def needy_neighbors(self) -> List[int]:
        """Active neighbors that need at least one of our usable pieces.

        Ascending ids, served from the swarm's version-guarded cache;
        the returned list is a fresh copy the strategy may mutate.
        """
        return self._runner.swarm.needy_neighbors(self.peer)

    def peer_state(self, peer_id: int) -> Peer:
        """Look up another active peer (global-knowledge simulator)."""
        return self._runner.swarm.peer(peer_id)

    def is_active(self, peer_id: int) -> bool:
        return peer_id in self._runner.swarm.peers

    def reputation_of(self, peer_id: int) -> float:
        return self._runner.swarm.reputation.score(peer_id)

    def received_from(self, peer_id: int) -> int:
        return self.peer.received_from.get(peer_id, 0)

    def uploaded_to(self, peer_id: int) -> int:
        return self.peer.uploaded_to.get(peer_id, 0)

    def deficit(self, peer_id: int) -> int:
        return self.peer.deficit(peer_id)

    def received_last_round(self, peer_id: int) -> int:
        return self.peer.received_last_round.get(peer_id, 0)

    def pending_obligations(self) -> List[PendingPiece]:
        """Our unmet T-Chain obligations, oldest first."""
        return sorted(self.peer.pending.values(),
                      key=lambda p: (p.obligation.created_round, p.piece_id))

    # ------------------------------------------------------------------
    # Guarded actions (all budget-checked by the runner)
    # ------------------------------------------------------------------
    def send_piece(self, target_id: int,
                   piece_id: Optional[int] = None) -> bool:
        """Send one plain (immediately usable) piece.

        The piece is chosen rarest-first among those the target needs
        unless ``piece_id`` pins it. Returns True if a piece was sent.
        """
        return self._runner.transfer_plain(self.peer, target_id, piece_id)

    def send_encrypted(self, target_id: int) -> bool:
        """T-Chain: seed one encrypted piece, creating an obligation."""
        return self._runner.tchain_seed(self.peer, target_id)

    def send_encrypted_random(self) -> bool:
        """T-Chain: seed a random eligible (non-blacklisted) neighbor."""
        return self._runner.tchain_seed_random(self.peer, self.rng)

    def fulfill_obligation(self, pending: PendingPiece) -> bool:
        """T-Chain: attempt to reciprocate for ``pending`` (unlocks it)."""
        return self._runner.tchain_fulfill(self.peer, pending)

    def report_fake_upload(self, beneficiary_id: int, amount: float) -> None:
        """Collusion attack: inject a false-praise reputation report."""
        self._runner.swarm.reputation.report(beneficiary_id, amount,
                                             genuine=False)

    # ------------------------------------------------------------------
    # Observability (no-op unless the run enables tracing)
    # ------------------------------------------------------------------
    def note_decision(self, name: str, target_id: Optional[int] = None,
                      **fields) -> None:
        """Trace a strategy decision (``choke`` category, e.g.
        ``"unchoke"``/``"optimistic"``). Strategies may call this
        unconditionally: with tracing off it returns immediately."""
        obs = self._runner.obs
        if obs is not None:
            obs.note_decision(self._runner, self.peer, name,
                              target_id=target_id, **fields)
