"""Simulation configuration objects.

:class:`SimulationConfig` fully describes one run: swarm size, file
size, upload-capacity distribution, the incentive mechanism under
test, the free-rider population and its attack plan, and termination
settings. Configurations are plain frozen dataclasses so experiments
can derive variants with :func:`dataclasses.replace`.

Units: capacities are in *pieces per round*; one round is one
simulated second (the paper's plots are in seconds).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.names import Algorithm
from repro.obs.config import ObsConfig
from repro.sim.faults import FaultConfig
from repro.sim.guards import GuardConfig

__all__ = [
    "CapacityClass",
    "AttackConfig",
    "FaultConfig",
    "GuardConfig",
    "ObsConfig",
    "StrategyParameters",
    "SimulationConfig",
    "DEFAULT_CAPACITY_CLASSES",
    "targeted_attack_for",
]


@dataclass(frozen=True)
class CapacityClass:
    """A group of users sharing one upload capacity.

    ``fraction`` of the swarm gets ``capacity`` pieces/round. Mirrors
    the heterogeneous-capacity populations of BitTorrent measurement
    studies (a few fast peers, many slow ones).
    """

    fraction: float
    capacity: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError("fraction must lie in (0, 1]")
        if self.capacity < 0:
            raise ConfigurationError("capacity must be non-negative")


#: Default heterogeneous population: 10% fast, 30% medium, 40% slow,
#: 20% very slow — total mean capacity 2.1 pieces/round.
DEFAULT_CAPACITY_CLASSES: Tuple[CapacityClass, ...] = (
    CapacityClass(0.10, 6.0),
    CapacityClass(0.30, 3.0),
    CapacityClass(0.40, 1.0),
    CapacityClass(0.20, 0.5),
)


@dataclass(frozen=True)
class AttackConfig:
    """Which free-riding attacks are active (Section IV-C, V-B2).

    All free-riders always use *simple* free-riding (upload nothing
    while requesting pieces). The remaining flags layer the targeted
    attacks on top:

    * ``collusion`` — T-Chain: colluders falsely confirm indirect
      reciprocations for each other, extracting decryption keys.
    * ``whitewash_interval`` — FairTorrent: free-riders reset their
      identity every this-many rounds, clearing accumulated deficits.
    * ``false_praise`` — reputation: colluders inject fake upload
      reports to inflate each other's global reputation.
    * ``large_view`` — all algorithms: free-riders connect to every
      peer instead of a bounded neighbor view, multiplying their
      exposure to altruistic/optimistic uploads.
    """

    collusion: bool = False
    whitewash_interval: Optional[int] = None
    false_praise: bool = False
    large_view: bool = False
    fake_praise_amount: float = 5.0

    def __post_init__(self) -> None:
        if self.whitewash_interval is not None and self.whitewash_interval < 1:
            raise ConfigurationError("whitewash_interval must be >= 1")
        if self.fake_praise_amount < 0:
            raise ConfigurationError("fake_praise_amount must be non-negative")

    def with_large_view(self) -> "AttackConfig":
        return replace(self, large_view=True)


def targeted_attack_for(algorithm: Algorithm,
                        large_view: bool = False) -> AttackConfig:
    """The most effective attack per algorithm (Section V-B2).

    Simple non-collusive free-riding everywhere, plus collusion for
    T-Chain and whitewashing for FairTorrent.
    """
    algorithm = Algorithm.parse(algorithm)
    return AttackConfig(
        collusion=(algorithm is Algorithm.TCHAIN),
        whitewash_interval=30 if algorithm is Algorithm.FAIRTORRENT else None,
        # The paper's Fig. 5 uses *simple* free-riding against the
        # reputation system; the false-praise collusion of Section IV-C
        # is available separately as an ablation (AttackConfig).
        false_praise=False,
        large_view=large_view,
    )


@dataclass(frozen=True)
class StrategyParameters:
    """Tunables of the six exchange algorithms.

    Attributes
    ----------
    alpha_bt:
        BitTorrent's optimistic-unchoke probability (paper: 0.2).
    n_bt:
        BitTorrent's number of reciprocal unchoke slots.
    alpha_r:
        Reputation algorithm's altruism (bootstrapping) probability.
    tchain_obligation_patience:
        Rounds an uploader waits for reciprocation before treating the
        receiver as non-compliant and refusing further service.
    tchain_max_pending:
        Refuse new encrypted uploads to a peer with this many unmet
        obligations toward us (T-Chain's leverage against free-riders).
    """

    alpha_bt: float = 0.2
    n_bt: int = 4
    alpha_r: float = 0.1
    tchain_obligation_patience: int = 2
    tchain_max_pending: int = 3

    def __post_init__(self) -> None:
        for name in ("alpha_bt", "alpha_r"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        if self.n_bt < 1:
            raise ConfigurationError("n_bt must be >= 1")
        if self.tchain_obligation_patience < 1:
            raise ConfigurationError("tchain_obligation_patience must be >= 1")
        if self.tchain_max_pending < 1:
            raise ConfigurationError("tchain_max_pending must be >= 1")


@dataclass(frozen=True)
class SimulationConfig:
    """Full description of one simulation run (Section V-A setup)."""

    algorithm: Algorithm
    n_users: int = 200
    n_pieces: int = 64
    capacity_classes: Sequence[CapacityClass] = DEFAULT_CAPACITY_CLASSES
    seeder_capacity: float = 4.0
    #: Number of seeders ``n_S`` (Table II); each gets the full
    #: ``seeder_capacity``, so total seed bandwidth is ``n_S * u_S``.
    n_seeders: int = 1
    flash_crowd_duration: float = 10.0
    #: "flash" reproduces Section V-A's flash crowd; "poisson" is a
    #: robustness extension with users arriving at ``arrival_rate``/s.
    arrival_process: str = "flash"
    arrival_rate: float = 20.0
    freerider_fraction: float = 0.0
    attack: AttackConfig = field(default_factory=AttackConfig)
    #: Fault-injection layer (transfer loss, crashes, seeder outages,
    #: delayed reports). The default is fully reliable — the paper's
    #: model — and leaves the simulation bit-for-bit unchanged.
    faults: FaultConfig = field(default_factory=FaultConfig)
    strategy_params: StrategyParameters = field(default_factory=StrategyParameters)
    #: Per-round probability that an incomplete user aborts and leaves
    #: (churn; the fluid model's theta). The paper's experiments use 0.
    abort_rate: float = 0.0
    #: Seed lingering: after completing, a user stays and uploads as a
    #: seed, leaving each round with this probability (the fluid
    #: model's gamma). ``None`` reproduces the paper: depart at once.
    seed_linger_rate: Optional[float] = None
    #: Neighbor-view topology: "random" (the default bounded random
    #: views), "ring" (a regular ring lattice), or "smallworld"
    #: (Watts-Strogatz rewiring of the ring) — robustness extensions.
    view_topology: str = "random"
    #: Piece-selection policy: "rarest" is local-rarest-first (the
    #: paper's assumption); "random" picks uniformly among needed
    #: pieces — the classic availability ablation of ref [27].
    piece_selection: str = "rarest"
    #: Record every transfer in ``SimulationMetrics.transfers`` — useful
    #: for per-transfer invariant checks; off by default (memory).
    record_transfers: bool = False
    #: Runtime invariant guards, stall watchdog, and crash forensics
    #: (:mod:`repro.sim.guards`). Off by default: guards are
    #: observation-only, but the paper's bare simulator stays the
    #: baseline.
    guards: GuardConfig = field(default_factory=GuardConfig)
    #: Streaming observability: event tracer, per-round samplers, span
    #: profiler (:mod:`repro.obs`). Off by default and observation-only
    #: like guards — an instrumented run is digest-identical to a bare
    #: one.
    obs: ObsConfig = field(default_factory=ObsConfig)
    #: Opt-out for the zero-seed-bandwidth sanity check: a swarm whose
    #: only seeders have zero capacity can never distribute anything,
    #: which is almost always a configuration mistake — except in unit
    #: tests that inject pieces by hand.
    allow_unseeded: bool = False
    neighbor_count: int = 40
    max_rounds: int = 600
    seed: int = 0
    sample_interval: int = 1
    #: Round-loop implementation: "object" is the per-peer-object
    #: oracle engine; "vector" is the struct-of-arrays numpy fast path
    #: (:mod:`repro.sim.vector`) that replays the object engine's
    #: draws for byte-identical metrics digests; "vector-fast" is the
    #: batched-sampling engine that draws from its own PCG64 stream
    #: and promises *distributional* equivalence only (digest lineage
    #: ``fast-v1``). The backend is excluded from ``repr`` — sweep
    #: fingerprints, result-cache keys and journals are backend-neutral
    #: for the byte-parity engines, and :func:`digest_lineage` is what
    #: keys the fast lineage apart (see
    #: ``repro.experiments.replicates._config_fingerprint``).
    backend: str = field(repr=False, default="object")
    #: What to do when the chosen backend cannot run this config (see
    #: :func:`repro.sim.vector.vector_unsupported_reason`): ``"warn"``
    #: falls back to the object engine with a ``RuntimeWarning``,
    #: ``"silent"`` falls back quietly, ``"error"`` raises
    #: :class:`repro.errors.BackendFallbackError`. Fallback runs are
    #: draw-exact either way (the object engine is the oracle) and are
    #: flagged in ``SimulationMetrics.backend_downgraded``; the policy
    #: only controls how loudly the lost speedup is reported, so it is
    #: excluded from ``repr`` (fingerprints/cache keys) like
    #: ``backend`` itself.
    backend_fallback: str = field(repr=False, default="warn")
    #: Fluid/event-driven hybrid mode (:mod:`repro.sim.hybrid`,
    #: docs/SCALING.md). ``None`` (default) runs the configured swarm
    #: directly. A positive integer requests a *population* of that
    #: many users simulated as ``n_subswarms`` sampled event-driven
    #: subswarms of ``n_users`` peers each, coupled through the fluid
    #: aggregate and scaled back up by shard weight
    #: (``population / (n_subswarms * n_users)``). Excluded from
    #: ``repr`` so plain-run fingerprints stay byte-stable; hybrid
    #: identity is carried by ``digest_lineage == "hybrid-v1"`` plus
    #: the explicit hybrid tag ``_config_fingerprint`` appends.
    population: Optional[int] = field(repr=False, default=None)
    #: Number of sampled subswarms (K) in hybrid mode; ignored when
    #: ``population`` is None.
    n_subswarms: int = field(repr=False, default=8)
    #: Rounds between fluid<->event-driven exchanges in hybrid mode:
    #: the granularity at which subswarm aggregates (piece
    #: availability, seeder share, credit distribution) are folded
    #: into the fluid reservoir and the conservation ledger is
    #: checked. Ignored when ``population`` is None.
    coupling_interval: int = field(repr=False, default=25)

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithm", Algorithm.parse(self.algorithm))
        if self.n_users < 2:
            raise ConfigurationError("n_users must be at least 2")
        if self.n_pieces < 1:
            raise ConfigurationError("n_pieces must be at least 1")
        classes = tuple(self.capacity_classes)
        if not classes:
            raise ConfigurationError("capacity_classes must be non-empty")
        total_fraction = sum(c.fraction for c in classes)
        if abs(total_fraction - 1.0) > 1e-9:
            raise ConfigurationError(
                f"capacity class fractions must sum to 1, got {total_fraction}")
        object.__setattr__(self, "capacity_classes", classes)
        if self.seeder_capacity < 0:
            raise ConfigurationError("seeder_capacity must be non-negative")
        if self.n_seeders < 1:
            raise ConfigurationError("n_seeders must be at least 1")
        if not 0.0 <= self.abort_rate < 1.0:
            raise ConfigurationError("abort_rate must lie in [0, 1)")
        if self.seed_linger_rate is not None and not (
                0.0 < self.seed_linger_rate <= 1.0):
            raise ConfigurationError(
                "seed_linger_rate must lie in (0, 1] or be None")
        if self.view_topology not in ("random", "ring", "smallworld"):
            raise ConfigurationError(
                "view_topology must be 'random', 'ring', or 'smallworld'")
        if self.flash_crowd_duration < 0:
            raise ConfigurationError("flash_crowd_duration must be non-negative")
        if self.arrival_process not in ("flash", "poisson"):
            raise ConfigurationError(
                "arrival_process must be 'flash' or 'poisson'")
        if self.piece_selection not in ("rarest", "random"):
            raise ConfigurationError(
                "piece_selection must be 'rarest' or 'random'")
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if not 0.0 <= self.freerider_fraction < 1.0:
            raise ConfigurationError("freerider_fraction must lie in [0, 1)")
        if self.neighbor_count < 1:
            raise ConfigurationError("neighbor_count must be >= 1")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if self.sample_interval < 1:
            raise ConfigurationError("sample_interval must be >= 1")
        if self.backend not in ("object", "vector", "vector-fast"):
            raise ConfigurationError(
                "backend must be 'object', 'vector', or 'vector-fast'")
        if self.backend_fallback not in ("warn", "error", "silent"):
            raise ConfigurationError(
                "backend_fallback must be 'warn', 'error', or 'silent'")
        if self.n_subswarms < 1:
            raise ConfigurationError("n_subswarms must be >= 1")
        if self.coupling_interval < 1:
            raise ConfigurationError("coupling_interval must be >= 1")
        if self.population is not None:
            if self.population < self.n_subswarms * self.n_users:
                raise ConfigurationError(
                    f"population={self.population} is smaller than the "
                    f"sampled mass ({self.n_subswarms} subswarms x "
                    f"{self.n_users} users): shard weights would fall "
                    "below 1. Lower n_subswarms or n_users, or raise "
                    "the population")
            if self.arrival_process != "flash":
                raise ConfigurationError(
                    "hybrid mode models the flash-crowd workload; "
                    "arrival_process must be 'flash' when population "
                    "is set")
            if self.record_transfers:
                raise ConfigurationError(
                    "record_transfers is unsupported in hybrid mode "
                    "(per-transfer logs do not survive shard scaling)")
        # Cross-field checks: combinations that are individually legal
        # but can only produce a meaningless (or never-ending) run.
        if (self.seeder_capacity == 0.0 and not self.allow_unseeded):
            raise ConfigurationError(
                f"seeder_capacity=0 with {self.n_users} downloaders: the "
                "seeders can never emit a piece, so no user can complete. "
                "Raise seeder_capacity, or set allow_unseeded=True if the "
                "swarm is seeded by other means (e.g. a test injecting "
                "pieces directly)")
        if self.sample_interval > self.max_rounds:
            raise ConfigurationError(
                f"sample_interval={self.sample_interval} exceeds "
                f"max_rounds={self.max_rounds}: no sample would ever be "
                "taken. Lower sample_interval or raise max_rounds")
        if (self.arrival_process == "flash"
                and self.flash_crowd_duration > self.max_rounds):
            raise ConfigurationError(
                f"flash_crowd_duration={self.flash_crowd_duration} exceeds "
                f"max_rounds={self.max_rounds}: part of the flash crowd "
                "would never arrive before the run is cut off")

    @property
    def digest_lineage(self) -> str:
        """Which determinism contract this config's backend promises.

        ``"parity-v1"`` — byte-identical metrics digests across the
        object and vector engines (the original contract). ``"fast-v1"``
        — the batched-sampling engine: same seeded determinism, but
        digests are only comparable to other fast-v1 runs; against
        parity-v1 the guarantee is distributional (KS/CI-overlap, see
        ``tests/integration/test_distributional_parity.py``).
        ``"hybrid-v1"`` — population-scale fluid/event-driven hybrid
        runs (``population`` set): deterministic for a given config
        and seed across any ``--jobs`` count, but only comparable to
        other hybrid-v1 runs of the same shard plan; against full
        event-driven runs the guarantee is the EXPERIMENTS.md shape
        contract (``tests/integration/test_hybrid_parity.py``).
        """
        if self.population is not None:
            return "hybrid-v1"
        return "fast-v1" if self.backend == "vector-fast" else "parity-v1"

    @property
    def n_freeriders(self) -> int:
        return int(round(self.n_users * self.freerider_fraction))

    @property
    def n_compliant(self) -> int:
        return self.n_users - self.n_freeriders

    def with_algorithm(self, algorithm: Algorithm) -> "SimulationConfig":
        """Variant testing a different mechanism (same everything else)."""
        return replace(self, algorithm=Algorithm.parse(algorithm))

    def with_attack(self, attack: AttackConfig,
                    freerider_fraction: Optional[float] = None,
                    ) -> "SimulationConfig":
        """Variant with free-riders running ``attack``."""
        fraction = (self.freerider_fraction if freerider_fraction is None
                    else freerider_fraction)
        return replace(self, attack=attack, freerider_fraction=fraction)

    def with_seed(self, seed: int) -> "SimulationConfig":
        return replace(self, seed=seed)

    def with_faults(self, faults: FaultConfig) -> "SimulationConfig":
        """Variant running under the given fault-injection layer."""
        return replace(self, faults=faults)

    def with_backend(self, backend: str) -> "SimulationConfig":
        """Variant executed by the given round-loop backend."""
        return replace(self, backend=backend)

    def with_backend_fallback(self, policy: str) -> "SimulationConfig":
        """Variant with the given backend-downgrade policy."""
        return replace(self, backend_fallback=policy)

    def with_population(self, population: Optional[int],
                        n_subswarms: Optional[int] = None,
                        coupling_interval: Optional[int] = None,
                        ) -> "SimulationConfig":
        """Variant run as a fluid/event-driven hybrid at ``population``
        scale (``None`` switches back to a plain run). ``n_users``
        becomes the per-subswarm sample size; see docs/SCALING.md."""
        overrides: Dict[str, Any] = {"population": population}
        if n_subswarms is not None:
            overrides["n_subswarms"] = n_subswarms
        if coupling_interval is not None:
            overrides["coupling_interval"] = coupling_interval
        return replace(self, **overrides)

    def with_guards(self, mode: str = "cheap",
                    **overrides: Any) -> "SimulationConfig":
        """Variant with invariant guards enabled at ``mode``.

        Keyword overrides are applied to the current
        :class:`~repro.sim.guards.GuardConfig`, e.g.
        ``cfg.with_guards("full", watchdog_window=200)``.
        """
        return replace(self, guards=replace(self.guards, mode=mode,
                                            **overrides))

    def with_obs(self, trace: bool = True, sample_every: int = 1,
                 profile: bool = False,
                 **overrides: Any) -> "SimulationConfig":
        """Variant with the observability layer enabled.

        Defaults switch on full-sampling tracing plus every-round
        series sampling; keyword overrides reach the underlying
        :class:`~repro.obs.config.ObsConfig`, e.g.
        ``cfg.with_obs(profile=True, trace_buffer=1 << 20)``.
        """
        return replace(self, obs=replace(self.obs, trace=trace,
                                         sample_every=sample_every,
                                         profile=profile, **overrides))

    # ------------------------------------------------------------------
    # Serialisation (crash bundles / replay)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        data = asdict(self)
        data["algorithm"] = self.algorithm.value
        data["capacity_classes"] = [asdict(c) for c in self.capacity_classes]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationConfig":
        """Rebuild a config from :meth:`to_dict` output (e.g. a crash
        bundle). Unknown keys are rejected so a stale bundle fails
        loudly instead of silently dropping fields."""
        payload = dict(data)
        payload["capacity_classes"] = tuple(
            CapacityClass(**c) for c in payload.get("capacity_classes", ()))
        for key, factory in (("attack", AttackConfig),
                             ("faults", FaultConfig),
                             ("strategy_params", StrategyParameters),
                             ("guards", GuardConfig),
                             ("obs", ObsConfig)):
            value = payload.get(key)
            if isinstance(value, Mapping):
                payload[key] = factory(**value)
        return cls(**payload)
