"""Struct-of-arrays fast path for the round loop (the ``vector`` backend).

:class:`VectorSimulation` executes the same simulation as
:class:`repro.sim.runner.Simulation` but stores swarm state in
contiguous arrays indexed by *slot* (one slot per lineage: seeders
first, then users in creation order) instead of one Python object per
peer:

* piece state as integer bitmasks plus a ``(n_slots, n_words)`` numpy
  ``uint64`` matrix of held-or-pending words, so "which neighbors can
  I serve" is one batched ``AND``/``any`` over the neighbor rows;
* pairwise ledgers (uploaded-to / received-from / FairTorrent
  deficits) as per-slot dicts, maintained only for the algorithms
  that read them — plus an incrementally-maintained creditor set for
  reciprocity so its no-RNG turns never touch numpy at all;
* reputations, budgets, totals, times and attack flags as flat
  per-slot arrays;
* T-Chain pending obligations as per-slot dicts mirrored into numpy
  blacklist columns (pending count, oldest round).

Each uploader turn computes its needy-neighbor pool *once* as a
batched array query, materializes it as an ascending Python list, and
repairs it in place after every send (only the send's target can
change state during the uploader's own turn). The per-algorithm
decision rules live in :mod:`repro.algorithms.vector_kernels`.

Determinism contract
--------------------
The object engine is the oracle. For every supported configuration the
vector backend consumes the *same named random streams in the same
order* and produces a byte-identical metrics digest
(:func:`repro.sim.metrics.metrics_digest`) — enforced per algorithm by
``tests/integration/test_seed_equivalence.py`` and property-tested by
the fuzz suite. To keep that guarantee the event engine is bypassed
rather than re-implemented: rounds fire at exactly ``t = 1.0, 2.0,
...`` with arrivals delivered in index order before the round whose
time they do not exceed, which is precisely the order the event queue
produces (arrival events are scheduled first and carry earlier
sequence numbers). Hot paths inline ``random.Random``'s
``_randbelow``/``shuffle`` (see :func:`_randbelow` / :func:`_shuffle`)
so index draws stay bit-identical to ``rng.choice``/``rng.shuffle``
while exposing the drawn index for O(1) pool repair.

Fault injection
---------------
All five fault axes run natively with draw-exact parity: the loss
coin is flipped on the shared "faults" stream at exactly the points
the object engine flips it (after the budget consume of every send
primitive); seeder outages are processed at the top of each round in
seeder-slot order; crash coins are drawn per incomplete member —
member-insertion order, after churn — with the same array teardown
churn uses plus the fault tally and coalition shrink; delayed
reputation reports are queued by lineage id and flushed (or dropped
and counted) at the top of the next due round; and obligation expiry
scans the pending-piece dicts behind a per-slot oldest-round
short-circuit. Sweeps with ``degradation_rows`` over any fault axis
therefore run vectorized.

Unsupported features
--------------------
Observation layers that hook the object engine's internals are not
reimplemented here: runtime guards, the observability runtime and
per-transfer recording all require the object backend.
:func:`vector_unsupported_reason` reports why a config cannot run
vectorized; :func:`repro.sim.runner.run_simulation` applies the
config's ``backend_fallback`` policy ("warn" falls back to the object
engine with a ``RuntimeWarning``, "silent" falls back quietly,
"error" raises) in that case.
"""

from __future__ import annotations

import hashlib
import math
import random
from array import array
from bisect import bisect_left, insort
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.names import Algorithm
from repro.sim.arrivals import flash_crowd_arrivals, poisson_arrivals
from repro.sim.bandwidth import UploadBudget
from repro.sim.config import SimulationConfig
from repro.sim.faults import FaultModel
from repro.sim.metrics import MetricsCollector, PeerSummary
from repro.sim.pieces import AvailabilityMap, bits_to_list, iter_bits
from repro.sim.rng import RandomStreams

__all__ = ["VectorSimulation", "VectorFastSimulation",
           "vector_unsupported_reason"]

#: Sentinel for "no pending obligation" in the oldest-round columns;
#: must compare greater than every reachable blacklist horizon.
_NO_PENDING = 1 << 62

_EMPTY_IDS = np.empty(0, dtype=np.int64)

#: Views at or below this size run discovery as a plain Python loop
#: over bigint masks; larger ones (large-view attackers, seeders) use
#: the numpy word-matrix query.
_SMALL_VIEW = 96

#: Single-bit uint64 constants so per-send word updates skip a
#: ``np.uint64(...)`` construction.
_U64_BITS = [np.uint64(1 << i) for i in range(64)]


def _randbelow(getrandbits, n: int) -> int:
    """``random.Random._randbelow_with_getrandbits``, inlined.

    Bit-identical draw sequence to ``rng.randrange(n)`` /
    ``rng.choice(seq)`` (which is ``seq[_randbelow(len(seq))]``), with
    the index exposed so callers can repair list pools in place.
    """
    k = n.bit_length()
    r = getrandbits(k)
    while r >= n:
        r = getrandbits(k)
    return r


def _shuffle(x: list, getrandbits) -> None:
    """``random.Random.shuffle``, inlined (draw-identical)."""
    for i in range(len(x) - 1, 0, -1):
        n = i + 1
        k = n.bit_length()
        j = getrandbits(k)
        while j >= n:
            j = getrandbits(k)
        x[i], x[j] = x[j], x[i]


def vector_unsupported_reason(config: SimulationConfig) -> Optional[str]:
    """Why ``config`` cannot run on the vector backend (None = it can).

    The vector engine covers every algorithm (including propshare),
    both arrival processes, all attack flags, churn/lingering, both
    topologies, both piece policies, and all five fault axes. What it
    does not implement are the object engine's instrumentation hooks.
    """
    if config.guards.enabled:
        return "runtime invariant guards (config.guards)"
    if config.obs.enabled:
        return "the observability runtime (config.obs)"
    if config.record_transfers:
        return "per-transfer recording (config.record_transfers)"
    return None


class _Turn:
    """Per-uploader-turn cache of the needy-neighbor pool.

    ``needy`` is the ascending list of view-member ids that need at
    least one of the uploader's usable pieces — or ``None`` until
    first use for kernels that may finish a turn without it
    (BitTorrent's tit-for-tat slots). During one uploader's turn only
    its *targets* change state, so after each successful send the
    engine pops the single affected entry (by drawn index when known,
    by bisection otherwise) instead of recomputing the pool.
    """

    __slots__ = ("uslot", "needy")

    def __init__(self, uslot: int, needy: Optional[List[int]]) -> None:
        self.uslot = uslot
        self.needy = needy


class VectorSimulation:
    """One configured run on the struct-of-arrays backend."""

    #: Determinism contract stamped onto the metrics (see
    #: ``SimulationMetrics.digest_lineage``); the fast engine overrides.
    digest_lineage = "parity-v1"

    def __init__(self, config: SimulationConfig) -> None:
        reason = vector_unsupported_reason(config)
        if reason is not None:
            raise ConfigurationError(
                f"the vector backend does not support {reason}; "
                "use backend='object'")
        from repro.algorithms.vector_kernels import (
            DEFICIT_ALGORITHMS, RECEIVED_ALGORITHMS, RECEIPT_ALGORITHMS)

        kernels, run_spray, run_freerider = self._select_kernels()
        self.config = config
        algorithm = config.algorithm
        self.n_pieces = config.n_pieces
        self._full_mask = (1 << config.n_pieces) - 1
        self._n_words = (config.n_pieces + 63) // 64
        self._n_bytes = self._n_words * 8
        self.neighbor_count = config.neighbor_count
        self.max_rounds = config.max_rounds
        self.sample_interval = config.sample_interval
        self.attack = config.attack
        self.params = config.strategy_params
        self._collusion = config.attack.collusion
        self._piece_random = config.piece_selection == "random"
        self._max_pending = config.strategy_params.tchain_max_pending
        self._patience = config.strategy_params.tchain_obligation_patience
        self._is_tchain = algorithm is Algorithm.TCHAIN
        #: Ledgers are only maintained for algorithms that read them;
        #: everything else skips the per-send dict updates.
        self._need_rcv = algorithm in RECEIVED_ALGORITHMS
        self._is_rec = algorithm is Algorithm.RECIPROCITY
        self._need_dev = algorithm in DEFICIT_ALGORITHMS
        self._track_rcv = algorithm in RECEIPT_ALGORITHMS
        #: BitTorrent/PropShare read their all-time received ledger as
        #: a slot matrix (vectorized fallback scans); Reciprocity keeps
        #: dicts plus the incremental creditor sets instead.
        self._use_rmat = self._need_rcv and not self._is_rec

        self.streams = RandomStreams(config.seed)
        self._views_rng = self.streams.stream("views")
        self._piece_rng = self.streams.stream("pieces")
        self._piece_grb = self._piece_rng.getrandbits
        self._order_rng = self.streams.stream("order")
        self._tchain_rng = self.streams.stream("tchain")
        self._tchain_grb = self._tchain_rng.getrandbits
        self._churn_rng = self.streams.stream("churn")
        self._linger_rng = self.streams.stream("linger")
        #: Fault injection: same substream as the object engine, drawn
        #: at the same points (see the module docstring), so faulted
        #: runs stay digest-identical across backends.
        self.faults = FaultModel(config.faults, self.streams.stream("faults"))
        self._loss_on = config.faults.transfer_loss_rate > 0.0
        self._outage_on = config.faults.seeder_outage_rate > 0.0
        self._crash_on = config.faults.crash_hazard > 0.0
        self._delay_rounds = config.faults.report_delay_rounds
        self._delay_on = self._delay_rounds > 0
        #: Delayed reputation reports: (due round, uploader lineage,
        #: amount), appended in report order so the due rounds are
        #: monotone — a deque pop from the left flushes them.
        self._delayed_reports: Deque[Tuple[int, int, float]] = deque()
        self._expiry = config.faults.obligation_expiry_rounds
        #: (receiver lineage, piece) pairs whose delivery was lost —
        #: cleared (and counted as a retry) when a later send lands.
        self._lost: Set[Tuple[int, int]] = set()

        self.collector = MetricsCollector()
        self.availability = AvailabilityMap(config.n_pieces)
        self._avail_add = self.availability.add_piece
        self._rarest = self.availability.rarest_subset
        self.round_index = 0
        self.now = 0.0
        self._finished = False
        self._arrived = 0
        self.nboot = 0
        self.ncomp = 0
        self.unfinished = config.n_compliant
        self.fake_reported = 0.0
        # Transfer counters accumulated locally and flushed to the
        # collector before every sample (see _flush_counters).
        self._c_tot = 0
        self._c_peer = 0
        self._c_fr = 0

        n_seeders = config.n_seeders
        self._n_seeders = n_seeders
        n_slots = n_seeders + config.n_users
        self.n_slots = n_slots

        # ---- per-slot state (parallel arrays) -----------------------
        self.usable: List[int] = [0] * n_slots      # usable-piece bitmask
        self.held: List[int] = [0] * n_slots        # usable | pending
        self.cnt: List[int] = [0] * n_slots         # usable-piece count
        self.caps: List[float] = [0.0] * n_slots
        self.seeder: List[bool] = [False] * n_slots
        self.free: List[bool] = [False] * n_slots
        self.largev: List[bool] = [False] * n_slots
        self.wwint: List[Optional[int]] = [None] * n_slots
        self.arrival: List[float] = [0.0] * n_slots
        self.boot: List[Optional[float]] = [None] * n_slots
        self.comp: List[Optional[float]] = [None] * n_slots
        self.departed_f: List[bool] = [False] * n_slots
        self.done: List[bool] = [False] * n_slots
        #: Transient-outage horizon (only seeders ever set it; the
        #: object engine checks every peer, so keep the full array).
        self.offline_until: List[int] = [0] * n_slots
        self.up: List[int] = [0] * n_slots          # total_uploaded
        self.down: List[int] = [0] * n_slots        # total_downloaded
        self.raw: List[int] = [0] * n_slots         # total_received_raw
        self.budgets: List[UploadBudget] = [None] * n_slots  # type: ignore
        self.colluders: List[Set[int]] = [set() for _ in range(n_slots)]
        self.ids: List[int] = [0] * n_slots         # current peer id
        self.lineage: List[int] = [0] * n_slots
        self.srng: List[random.Random] = [None] * n_slots  # type: ignore
        self.kern: List[object] = [None] * n_slots
        #: Held-or-pending bitmask rows as uint64 words, for batched
        #: "who needs what I have" queries over neighbor slot arrays.
        #: The backing store is an ``array.array`` with the numpy
        #: matrix as a shared-memory view: per-send scalar updates go
        #: through the array (~3x faster than numpy scalar indexing)
        #: while batched reads stay vectorized — no sync step needed.
        self._Wf = array("Q", bytes(8 * n_slots * self._n_words))
        self.W = np.frombuffer(self._Wf, dtype=np.uint64).reshape(
            n_slots, self._n_words)
        #: Usable-only word rows (wp in discovery queries), kept in
        #: lockstep with ``usable`` so a turn never re-packs a bigint.
        self._UWf = array("Q", bytes(8 * n_slots * self._n_words))
        self.UW = np.frombuffer(self._UWf, dtype=np.uint64).reshape(
            n_slots, self._n_words)
        # Preallocated discovery scratch (gather and compare buffers).
        self._gbuf = np.empty((n_slots, self._n_words), dtype=np.uint64)
        self._ebuf = np.empty((n_slots, self._n_words), dtype=bool)

        # Pairwise ledgers, algorithm-gated (see class docstring).
        mk = n_slots
        self.rcv_d: List[Dict[int, int]] = (
            [{} for _ in range(mk)]
            if self._need_rcv and not self._use_rmat else [])
        #: All-time received ledger as a slot matrix (same whitewash
        #: semantics as ``D`` below: column zeroed, row kept);
        #: array-backed like ``W`` for cheap per-send increments.
        self._Rf = (array("i", bytes(4 * mk * mk))
                    if self._use_rmat else None)
        self.R = (np.frombuffer(self._Rf, dtype=np.int32).reshape(mk, mk)
                  if self._use_rmat else None)
        self.upl_d: List[Dict[int, int]] = (
            [{} for _ in range(mk)] if self._is_rec else [])
        self.cred: List[Set[int]] = (
            [set() for _ in range(mk)] if self._is_rec else [])
        #: FairTorrent pairwise deficit (sent minus received), as a
        #: slot-by-slot matrix so a turn's min-deficit scan is one
        #: numpy gather instead of a dict walk. Slot-keying matches
        #: the object engine's id-keyed ledgers because a peer's own
        #: ledger survives whitewashing while *others'* balances
        #: toward its old identity are orphaned — ``_reset_identity``
        #: zeroes the whitewashed column to reproduce that.
        self._Df = (array("i", bytes(4 * mk * mk))
                    if self._need_dev else None)
        self.D = (np.frombuffer(self._Df, dtype=np.int32).reshape(mk, mk)
                  if self._need_dev else None)

        # T-Chain pending obligations: piece -> (uploader_id,
        # designated_target, created_round), with numpy blacklist
        # mirrors (count, oldest created round).
        self.pend: List[Dict[int, Tuple[int, Optional[int], int]]] = (
            [{} for _ in range(n_slots)])
        self.poldest: List[int] = [_NO_PENDING] * n_slots
        self._pcnt = array("i", bytes(4 * n_slots))
        self.pcnt_np = np.frombuffer(self._pcnt, dtype=np.int32)
        self._poldest_arr = array("q", [_NO_PENDING]) * n_slots
        self.poldest_np = np.frombuffer(self._poldest_arr, dtype=np.int64)
        self._pend_nonempty = 0

        # Tit-for-tat receipt windows (bittorrent / propshare only).
        self.last_rcv: List[Dict[int, int]] = [{} for _ in range(n_slots)]
        self.this_rcv: List[Dict[int, int]] = [{} for _ in range(n_slots)]
        self._rcv_dirty: Set[int] = set()
        self._rcv_last_nonempty: Set[int] = set()

        # ---- identity space -----------------------------------------
        self._next_id = 0
        self._id_cap = max(64, n_slots)
        self.slot_np = np.full(self._id_cap, -1, dtype=np.int64)
        self.rep: List[float] = []                  # reputation by peer id

        # ---- membership and views (keyed by current peer id) --------
        self.members: Dict[int, int] = {}           # id -> slot, insertion order
        self.active: List[int] = []                 # sorted active ids
        self.vset: Dict[int, Set[int]] = {}
        self.varr: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._static_views: Dict[int, Set[int]] = {}
        self._turn: Optional[_Turn] = None
        self._coalition: List[int] = []             # coalition slots

        self._install_topology()

        # ---- population (mirrors Simulation._build_population) ------
        for index in range(n_seeders):
            s = index
            pid = self._allocate_id(s)
            self.ids[s] = pid
            self.lineage[s] = pid
            self.caps[s] = config.seeder_capacity
            self.seeder[s] = True
            self.largev[s] = True
            self.usable[s] = self._full_mask
            self.held[s] = self._full_mask
            self.cnt[s] = config.n_pieces
            self.W[s] = self._mask_words(self._full_mask)
            self.UW[s] = self.W[s]
            self.budgets[s] = UploadBudget(config.seeder_capacity)
            self.srng[s] = self.streams.stream(f"seeder:{index}")
            self.kern[s] = run_spray
            self._add_member(s)

        capacities = self._capacity_assignments()
        if config.arrival_process == "poisson":
            arrivals = poisson_arrivals(config.n_users, config.arrival_rate,
                                        self.streams.stream("arrivals"))
        else:
            arrivals = flash_crowd_arrivals(config.n_users,
                                            config.flash_crowd_duration,
                                            self.streams.stream("arrivals"))
        self._arrivals = arrivals
        role_rng = self.streams.stream("roles")
        freerider_indices = set(
            role_rng.sample(range(config.n_users), config.n_freeriders))

        kernel = kernels[algorithm]
        for index in range(config.n_users):
            s = n_seeders + index
            pid = self._allocate_id(s)
            self.ids[s] = pid
            self.lineage[s] = pid
            self.caps[s] = capacities[index]
            self.arrival[s] = arrivals[index]
            self.budgets[s] = UploadBudget(capacities[index])
            self.srng[s] = self.streams.stream(f"strategy:{pid}")
            if index in freerider_indices:
                self.free[s] = True
                self.largev[s] = config.attack.large_view
                self.wwint[s] = config.attack.whitewash_interval
                self._coalition.append(s)
                self.kern[s] = run_freerider
            else:
                self.kern[s] = kernel
        self._sync_coalition()
        #: Lineage id -> slot: lineages are assigned once per slot and
        #: never reassigned, so this map is immutable after population.
        #: Delayed reports resolve through it exactly like the object
        #: engine's ``_peers_by_lineage`` (whitewashed peers keep their
        #: slot, so reports land on the *current* identity).
        self._lineage_slot = {self.lineage[s]: s for s in range(n_slots)}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _select_kernels(self):
        """(kernel table, seeder kernel, freerider kernel) for this
        engine; the fast lineage overrides this with its batched
        variants."""
        from repro.algorithms.vector_kernels import (
            KERNELS, run_freerider, run_spray)
        return KERNELS, run_spray, run_freerider

    def _install_topology(self) -> None:
        topology = self.config.view_topology
        if topology == "random":
            return
        import networkx as nx

        n = self.config.n_users
        k = max(2, min(self.config.neighbor_count, n - 1))
        if k % 2:
            k -= 1  # watts_strogatz needs an even degree
        rewire = 0.0 if topology == "ring" else 0.1
        graph = nx.watts_strogatz_graph(
            n, k, rewire, seed=self.streams.stream("topology").randint(
                0, 2**31 - 1))
        first_user_id = self.config.n_seeders
        self._static_views = {
            first_user_id + node: {first_user_id + other
                                   for other in graph.neighbors(node)}
            for node in graph.nodes
        }

    def _capacity_assignments(self) -> List[float]:
        cfg = self.config
        counts = [int(cls.fraction * cfg.n_users)
                  for cls in cfg.capacity_classes]
        shortfall = cfg.n_users - sum(counts)
        order = sorted(range(len(counts)),
                       key=lambda i: -cfg.capacity_classes[i].fraction)
        for i in range(shortfall):
            counts[order[i % len(order)]] += 1
        capacities: List[float] = []
        for cls, count in zip(cfg.capacity_classes, counts):
            capacities.extend([cls.capacity] * count)
        self.streams.stream("capacity").shuffle(capacities)
        return capacities

    def _allocate_id(self, slot: int) -> int:
        pid = self._next_id
        self._next_id += 1
        self.rep.append(0.0)
        if pid >= self._id_cap:
            self._grow_id_space()
        self.slot_np[pid] = slot
        return pid

    def _grow_id_space(self) -> None:
        new_cap = self._id_cap * 2
        grown = np.full(new_cap, -1, dtype=np.int64)
        grown[:self._id_cap] = self.slot_np
        self.slot_np = grown
        self._id_cap = new_cap

    # ------------------------------------------------------------------
    # Views and membership (mirrors Swarm)
    # ------------------------------------------------------------------
    def _mask_words(self, mask: int) -> np.ndarray:
        return np.frombuffer(mask.to_bytes(self._n_bytes, "little"),
                             dtype="<u8")

    def _feas_sel(self, u: int, slots: np.ndarray, n: int) -> np.ndarray:
        """Boolean mask over ``slots``: who needs ≥1 usable piece of ``u``.

        A target is needy iff ``usable_u & ~held_t != 0``, i.e. its
        held-words ANDed with the uploader's usable-words differ from
        the usable-words somewhere. Runs through preallocated scratch
        so the hot query allocates only its (n,) result.
        """
        g = self._gbuf[:n]
        np.take(self.W, slots, axis=0, out=g, mode="clip")
        wp = self.UW[u]
        np.bitwise_and(g, wp, out=g)
        ne = self._ebuf[:n]
        np.not_equal(g, wp, out=ne)
        return np.logical_or.reduce(ne, axis=1)

    def _add_member(self, s: int) -> None:
        pid = self.ids[s]
        self.members[pid] = s
        insort(self.active, pid)
        for piece in iter_bits(self.usable[s]):
            self.availability.add_piece(piece)
        self._build_view(s)

    def _build_view(self, s: int) -> None:
        pid = self.ids[s]
        others = [q for q in self.members if q != pid]
        if self.largev[s]:
            chosen = others
        elif pid in self._static_views:
            wanted = self._static_views[pid]
            chosen = [q for q in others if q in wanted]
        else:
            k = min(self.neighbor_count, len(others))
            chosen = self._views_rng.sample(others, k) if k else []
        for q in chosen:
            self._connect(pid, q)
        # Existing large-view attackers connect to every newcomer too.
        largev = self.largev
        for q, os_ in self.members.items():
            if largev[os_] and q != pid:
                self._connect(pid, q)

    def _connect(self, a: int, b: int) -> None:
        va = self.vset.get(a)
        if va is None:
            va = self.vset[a] = set()
        if b not in va:
            va.add(b)
            self.varr.pop(a, None)
        vb = self.vset.get(b)
        if vb is None:
            vb = self.vset[b] = set()
        if a not in vb:
            vb.add(a)
            self.varr.pop(b, None)

    def _disconnect_all(self, pid: int) -> None:
        for nb in self.vset.pop(pid, set()):
            self.vset[nb].discard(pid)
            self.varr.pop(nb, None)
        self.varr.pop(pid, None)

    def _view(self, pid: int) -> Tuple[np.ndarray, np.ndarray, list, list]:
        """Sorted view-member ids and slots, as arrays and as lists.

        Lazily rebuilt after view changes. Small views run discovery
        as a plain bigint loop over the lists (cheaper than numpy
        dispatch below ``_SMALL_VIEW`` members); large views — the
        seeders' large-view attackers' — use the array form.
        """
        hit = self.varr.get(pid)
        if hit is None:
            vs = self.vset.get(pid)
            if not vs:
                hit = (_EMPTY_IDS, _EMPTY_IDS, [], [])
            else:
                ids = np.array(sorted(vs), dtype=np.int64)
                slots = self.slot_np[ids]
                hit = (ids, slots, ids.tolist(), slots.tolist())
            self.varr[pid] = hit
        return hit

    def _remove_member(self, pid: int) -> None:
        s = self.members.pop(pid)
        self.active.pop(bisect_left(self.active, pid))
        for piece in iter_bits(self.usable[s]):
            self.availability.remove_piece(piece)
        self._disconnect_all(pid)

    def _reset_identity(self, s: int) -> None:
        """Whitewash: fresh id, same slot (mirrors Swarm.reset_identity)."""
        old = self.ids[s]
        del self.members[old]
        self.active.pop(bisect_left(self.active, old))
        self._disconnect_all(old)
        self.rep[old] = 0.0
        if self.D is not None:
            # Others' balances pointed at the discarded identity; the
            # whitewasher's own ledger (row ``s``) survives, exactly
            # as id-keyed dicts would orphan the old column entries.
            self.D[:, s] = 0
        if self.R is not None:
            self.R[:, s] = 0
        new = self._allocate_id(s)
        self.ids[s] = new
        self.members[new] = s
        insort(self.active, new)
        self._build_view(s)

    def _sync_coalition(self) -> None:
        if not (self.attack.collusion or self.attack.false_praise):
            return
        ids = {self.ids[s] for s in self._coalition if not self.departed_f[s]}
        for s in self._coalition:
            self.colluders[s] = ids - {self.ids[s]}

    # ------------------------------------------------------------------
    # Needy queries
    # ------------------------------------------------------------------
    def _needy_list(self, u: int) -> List[int]:
        """Ascending needy view-member ids for uploader ``u``."""
        ids, slots, vids, vslots = self._view(self.ids[u])
        n = len(vids)
        if n == 0:
            return []
        if n > _SMALL_VIEW:
            return ids[self._feas_sel(u, slots, n)].tolist()
        uw = self.usable[u]
        held = self.held
        # Interest test without the bigint invert: the target lacks
        # one of u's usable pieces iff held & usable != usable.
        return [p for p, t in zip(vids, vslots) if held[t] & uw != uw]

    def begin_turn(self, u: int) -> _Turn:
        """Compute the uploader's needy pool once for this turn."""
        turn = _Turn(u, self._needy_list(u))
        self._turn = turn
        return turn

    def begin_turn_lazy(self, u: int) -> _Turn:
        """A turn whose needy pool is built on first use."""
        turn = _Turn(u, None)
        self._turn = turn
        return turn

    def ensure_needy(self, turn: _Turn) -> List[int]:
        needy = self._needy_list(turn.uslot)
        turn.needy = needy
        return needy

    # ------------------------------------------------------------------
    # Transfer primitives (mirror runner.transfer_plain and friends)
    # ------------------------------------------------------------------
    def _choose_piece(self, candidate_mask: int) -> Optional[int]:
        """``rarest_first`` / random policy, draw-identical, inlined."""
        if not candidate_mask:
            return None
        if self._piece_random:
            lst = bits_to_list(candidate_mask)
            n = len(lst)
            grb = self._piece_grb
            k = n.bit_length()
            r = grb(k)
            while r >= n:
                r = grb(k)
            return lst[r]
        tie = self._rarest(candidate_mask)
        if not tie:
            return None
        if tie & (tie - 1) == 0:  # single bit: unique rarest piece
            return tie.bit_length() - 1
        lst = bits_to_list(tie)
        n = len(lst)
        grb = self._piece_grb
        k = n.bit_length()
        r = grb(k)
        while r >= n:
            r = grb(k)
        return lst[r]

    def _add_usable(self, s: int, piece: int) -> None:
        bit = 1 << piece
        self.usable[s] |= bit
        self.held[s] |= bit
        self.cnt[s] += 1
        idx = s * self._n_words + (piece >> 6)
        pb = 1 << (piece & 63)
        self._Wf[idx] |= pb
        self._UWf[idx] |= pb
        self._avail_add(piece)

    def _mark_done(self, s: int) -> None:
        if not self.done[s]:
            self.done[s] = True
            if not self.free[s] and not self.seeder[s]:
                self.unfinished -= 1

    def _piece_gained(self, s: int) -> None:
        if self.boot[s] is None and self.cnt[s] >= 1:
            self.boot[s] = self.now
            self.nboot += 1
        if self.cnt[s] == self.n_pieces and self.comp[s] is None:
            self.comp[s] = self.now
            self.ncomp += 1
            self._mark_done(s)

    def _plain_send(self, u: int, target_id: int,
                    j: Optional[int] = None) -> bool:
        """Send one usable piece; mirrors ``Simulation.transfer_plain``.

        ``j``, when given, is the target's index in the current turn's
        needy pool (the caller drew it), making pool repair O(1).

        Callers always gate on ``budget.can_send()`` immediately
        before calling (the object strategies do the same), so the
        budget check is not repeated here.
        """
        ts = self.members.get(target_id)
        if ts is None or self.seeder[ts] or self.cnt[ts] == self.n_pieces:
            return False
        uid = self.ids[u]
        if target_id == uid:
            return False
        cand = self.usable[u] & ~self.held[ts]
        piece = self._choose_piece(cand)
        if piece is None:
            return False
        # budget.consume(), inlined: the caller's can_send() gate
        # already established one whole credit.
        b = self.budgets[u]
        b._credits_num -= b._den
        b.total_consumed += 1
        # Fault hook (runner._transfer_lost): the budget is spent but
        # nothing is delivered, no ledgers move, no reputation earned.
        if self._loss_on and self.faults.transfer_lost():
            self.collector.record_lost_transfer()
            self._lost.add((self.lineage[ts], piece))
            return False
        self.up[u] += 1
        from_seeder = self.seeder[u]
        if not from_seeder:
            # _report_upload, inlined: delayed reports queue by the
            # uploader's lineage and land (or drop) at flush time.
            if self._delay_on:
                self._delayed_reports.append(
                    (self.round_index + self._delay_rounds,
                     self.lineage[u], 1.0))
                self.collector.record_delayed_report()
            else:
                self.rep[uid] += 1.0
        if self._use_rmat:
            self._Rf[ts * self.n_slots + u] += 1
        elif self._need_rcv:
            d = self.rcv_d[ts]
            nv = d.get(uid, 0) + 1
            d[uid] = nv
            if self._is_rec:
                if nv > self.upl_d[ts].get(uid, 0):
                    self.cred[ts].add(uid)
                du = self.upl_d[u]
                nu = du.get(target_id, 0) + 1
                du[target_id] = nu
                if nu >= self.rcv_d[u].get(target_id, 0):
                    self.cred[u].discard(target_id)
        if self._need_dev:
            # FairTorrent deficit = sent - received, both directions.
            ns = self.n_slots
            df = self._Df
            df[u * ns + ts] += 1
            df[ts * ns + u] -= 1
        if self._track_rcv:
            d = self.this_rcv[ts]
            d[uid] = d.get(uid, 0) + 1
            self._rcv_dirty.add(ts)
        self.raw[ts] += 1
        self.down[ts] += 1
        # _add_usable, inlined.
        bit = 1 << piece
        self.usable[ts] |= bit
        self.held[ts] |= bit
        cnt = self.cnt[ts] + 1
        self.cnt[ts] = cnt
        idx = ts * self._n_words + (piece >> 6)
        pb = 1 << (piece & 63)
        self._Wf[idx] |= pb
        self._UWf[idx] |= pb
        self._avail_add(piece)
        # _note_delivery: a landing send recovers a previous loss.
        if self._lost:
            key = (self.lineage[ts], piece)
            if key in self._lost:
                self._lost.discard(key)
                self.collector.record_retried_transfer()
        # record_transfer, batched (flushed before every sample).
        self._c_tot += 1
        if not from_seeder:
            self._c_peer += 1
            if self.free[ts]:
                self._c_fr += 1
        # _piece_gained, inlined.
        if self.boot[ts] is None:
            self.boot[ts] = self.now
            self.nboot += 1
        if cnt == self.n_pieces and self.comp[ts] is None:
            self.comp[ts] = self.now
            self.ncomp += 1
            self._mark_done(ts)
        # Repair the turn's needy pool: only the target changed state.
        # Post-send interest is the pre-send candidate mask minus the
        # piece just delivered, so the target leaves iff it was the
        # last candidate.
        turn = self._turn
        if turn is not None and turn.uslot == u:
            needy = turn.needy
            if needy is not None and cand == bit:
                if j is None:
                    j = bisect_left(needy, target_id)
                    if j < len(needy) and needy[j] == target_id:
                        needy.pop(j)
                else:
                    needy.pop(j)
        return True

    # ------------------------------------------------------------------
    # T-Chain mechanics (mirror the runner's tchain_* family)
    # ------------------------------------------------------------------
    def _blacklisted(self, ts: int) -> bool:
        if len(self.pend[ts]) >= self._max_pending:
            return True
        return self.poldest[ts] <= self.round_index - self._patience

    def _add_pending(self, ts: int, piece: int, uploader_id: int,
                     designated: Optional[int]) -> None:
        pd = self.pend[ts]
        if not pd:
            self._pend_nonempty += 1
        created = self.round_index
        pd[piece] = (uploader_id, designated, created)
        self.held[ts] |= 1 << piece
        self._Wf[ts * self._n_words + (piece >> 6)] |= 1 << (piece & 63)
        self._pcnt[ts] += 1
        if created < self.poldest[ts]:
            self.poldest[ts] = created
            self._poldest_arr[ts] = created

    def _pop_pending(self, s: int, piece: int) -> Tuple[int, Optional[int], int]:
        pd = self.pend[s]
        entry = pd.pop(piece)
        if not pd:
            self._pend_nonempty -= 1
        self._pcnt[s] -= 1
        if entry[2] == self.poldest[s]:
            oldest = min((e[2] for e in pd.values()), default=_NO_PENDING)
            self.poldest[s] = oldest
            self._poldest_arr[s] = oldest
        return entry

    def _drop_pending(self, s: int, piece: int) -> None:
        self._pop_pending(s, piece)
        self.held[s] &= ~(1 << piece)
        self._Wf[s * self._n_words + (piece >> 6)] &= ~(1 << (piece & 63))

    def _unlock(self, s: int, piece: int) -> None:
        """Key released: pending piece becomes usable (runner._unlock)."""
        self._pop_pending(s, piece)
        # The held bit (and its W mirror) stays set; only usable gains.
        self.usable[s] |= 1 << piece
        self._UWf[s * self._n_words + (piece >> 6)] |= 1 << (piece & 63)
        self.cnt[s] += 1
        self._avail_add(piece)
        self.down[s] += 1
        if self.free[s]:
            self._c_fr += 1  # record_unlock, batched
        self._piece_gained(s)

    def _tchain_draw(self, m: int) -> int:
        """One index draw on the tchain stream (fast lineage overrides)."""
        return _randbelow(self._tchain_grb, m)

    def _shuffled_candidates(self, candidates: List[int]) -> Iterable[int]:
        """``candidates`` in uniform-random order.

        The parity engine must shuffle eagerly (the object strategy
        draws the full shuffle whether or not the loop consumes it);
        the fast lineage overrides this with a lazy partial
        Fisher-Yates that only draws indices actually consumed.
        """
        _shuffle(candidates, self._tchain_grb)
        return candidates

    def _choose_designated(self, u: int, target_id: int,
                           piece: int) -> Optional[int]:
        ids, slots, vids, vslots = self._view(self.ids[u])
        n = len(vids)
        if n == 0:
            return None
        if n > _SMALL_VIEW:
            pb = _U64_BITS[piece & 63]
            ok = (self.W[slots, piece >> 6] & pb) == 0
            options = ids[ok]
            options = options[options != target_id]
            m = options.size
            if m == 0:
                return None
            return int(options[self._tchain_draw(m)])
        held = self.held
        options_l = [p for p, t in zip(vids, vslots)
                     if not (held[t] >> piece) & 1 and p != target_id]
        m = len(options_l)
        if m == 0:
            return None
        return options_l[self._tchain_draw(m)]

    def _deliver_encrypted(self, u: int, ts: int, piece: int,
                           from_seeder: bool) -> bool:
        """Shared body of runner._tchain_deliver / _forward_encrypted.

        Every caller gates on ``can_send()`` first, so the budget
        consume is inlined unchecked like ``_plain_send``'s. Returns
        False when fault injection drops the send (budget spent, no
        obligation created) — exactly the object engine's contract.
        """
        b = self.budgets[u]
        b._credits_num -= b._den
        b.total_consumed += 1
        if self._loss_on and self.faults.transfer_lost():
            self.collector.record_lost_transfer()
            self._lost.add((self.lineage[ts], piece))
            return False
        uid = self.ids[u]
        self.up[u] += 1
        if not from_seeder:
            if self._delay_on:
                self._delayed_reports.append(
                    (self.round_index + self._delay_rounds,
                     self.lineage[u], 1.0))
                self.collector.record_delayed_report()
            else:
                self.rep[uid] += 1.0
        self.raw[ts] += 1
        if self._lost:
            key = (self.lineage[ts], piece)
            if key in self._lost:
                self._lost.discard(key)
                self.collector.record_retried_transfer()
        designated: Optional[int] = None
        if not (self.usable[ts] & ~self.held[u]):
            # The sender needs nothing the target has: designate a
            # third user for indirect reciprocity.
            designated = self._choose_designated(u, self.ids[ts], piece)
        # record_transfer(usable=False), batched.
        self._c_tot += 1
        if not from_seeder:
            self._c_peer += 1
        colluding = (self._collusion and self.free[ts]
                     and designated is not None
                     and designated in self.colluders[ts])
        if colluding:
            self._add_usable(ts, piece)
            self.down[ts] += 1
            self._c_fr += 1  # record_unlock(for_freerider=True), batched
            self._piece_gained(ts)
        else:
            self._add_pending(ts, piece, uid, designated)
            if self.boot[ts] is None:
                self.boot[ts] = self.now
                self.nboot += 1
        return True

    def tchain_seed(self, u: int, target_id: int) -> bool:
        budget = self.budgets[u]
        if not budget.can_send():
            return False
        ts = self.members.get(target_id)
        if ts is None or self.seeder[ts] or self.cnt[ts] == self.n_pieces:
            return False
        if target_id == self.ids[u]:
            return False
        if self._blacklisted(ts):
            return False
        piece = self._choose_piece(self.usable[u] & ~self.held[ts])
        if piece is None:
            return False
        return self._deliver_encrypted(u, ts, piece,
                                       from_seeder=self.seeder[u])

    def tchain_elig(self, u: int) -> List[int]:
        """Seeding-phase candidates: needy, non-blacklisted view members.

        Identical to the discovery inside ``runner.tchain_seed_random``;
        the T-Chain kernel computes it once per turn and repairs the
        single seeded target after each successful seed (a seed mutates
        no other peer's eligibility).
        """
        ids, slots, vids, vslots = self._view(self.ids[u])
        n = len(vids)
        if n == 0:
            return []
        if n > _SMALL_VIEW:
            sel = self._feas_sel(u, slots, n)
            sel &= self.pcnt_np[slots] < self._max_pending
            sel &= self.poldest_np[slots] > (self.round_index - self._patience)
            return ids[sel].tolist()
        uw = self.usable[u]
        held = self.held
        pend = self.pend
        maxp = self._max_pending
        horizon = self.round_index - self._patience
        poldest = self.poldest
        return [p for p, t in zip(vids, vslots)
                if held[t] & uw != uw and len(pend[t]) < maxp
                and poldest[t] > horizon]

    def tchain_seed_random(self, u: int, rng: random.Random) -> bool:
        """One encrypted seed to a shuffled needy candidate (uncached
        mirror of ``runner.tchain_seed_random``; fulfil path 3 uses the
        same shape inline)."""
        candidates = self.tchain_elig(u)
        _shuffle(candidates, rng.getrandbits)
        for target_id in candidates:
            if self.tchain_seed(u, target_id):
                return True
        return False

    def _forward_target(self, u: int, uploader_id: int,
                        designated: Optional[int],
                        piece: int) -> Optional[int]:
        if designated is not None:
            ds = self.members.get(designated)
            if (ds is not None and not (self.held[ds] >> piece) & 1
                    and not self._blacklisted(ds)):
                return designated
        ids, slots, vids, vslots = self._view(self.ids[u])
        n = len(vids)
        if n == 0:
            return None
        if n > _SMALL_VIEW:
            pb = _U64_BITS[piece & 63]
            ok = (self.W[slots, piece >> 6] & pb) == 0
            ok &= self.pcnt_np[slots] < self._max_pending
            ok &= self.poldest_np[slots] > (self.round_index - self._patience)
            options = ids[ok]
            options = options[options != uploader_id]
            m = options.size
            if m == 0:
                return None
            return int(options[self._tchain_draw(m)])
        held = self.held
        pend = self.pend
        maxp = self._max_pending
        horizon = self.round_index - self._patience
        poldest = self.poldest
        options_l = [p for p, t in zip(vids, vslots)
                     if not (held[t] >> piece) & 1
                     and len(pend[t]) < maxp and poldest[t] > horizon
                     and p != uploader_id]
        m = len(options_l)
        if m == 0:
            return None
        return options_l[self._tchain_draw(m)]

    def tchain_fulfill(self, u: int, piece: int) -> bool:
        """Reciprocate for one pending piece (runner.tchain_fulfill)."""
        entry = self.pend[u].get(piece)
        if entry is None:
            return False
        budget = self.budgets[u]
        if not budget.can_send():
            return False
        uploader_id, designated, _created = entry
        us = self.members.get(uploader_id)
        if us is None:
            # Key holder left: the encrypted data is worthless.
            self._drop_pending(u, piece)
            return False

        # (1) Direct reciprocity.
        if (self.cnt[us] < self.n_pieces
                and self.usable[u] & ~self.held[us]):
            if self._plain_send(u, uploader_id):
                self._unlock(u, piece)
                return True
            if not budget.can_send():
                return False

        # (2) Forward the received piece (indirect reciprocity). A lost
        # forward spends the budget but leaves the key locked, and —
        # like runner.tchain_fulfill — does *not* fall through to (3).
        forward_id = self._forward_target(u, uploader_id, designated, piece)
        if forward_id is not None:
            if self._deliver_encrypted(u, self.members[forward_id], piece,
                                       from_seeder=False):
                self._unlock(u, piece)
                return True
            return False

        # (3) Generalised indirect reciprocity: any other piece,
        # still encrypted, to any needy non-uploader neighbor.
        if self.cnt[u] > 0:
            candidates = [pid for pid in self._needy_list(u)
                          if pid != uploader_id]
            for pid in self._shuffled_candidates(candidates):
                if self.tchain_seed(u, pid):
                    self._unlock(u, piece)
                    return True
        return False

    # ------------------------------------------------------------------
    # Round phases (mirror Simulation._on_round)
    # ------------------------------------------------------------------
    def _on_arrival(self, index: int) -> None:
        self._add_member(self._n_seeders + index)
        self._arrived += 1

    def _shuffle_active(self, active: List[int]) -> List[int]:
        """Per-round turn order (draw-identical to the object engine);
        the fast lineage overrides this with a batched permutation."""
        _shuffle(active, self._order_rng.getrandbits)
        return active

    def _on_round(self) -> None:
        self.round_index += 1
        if self._delayed_reports:
            self._flush_due_reports()
        self._process_seeder_outages()
        active = self._shuffle_active(list(self.active))
        members = self.members
        budgets = self.budgets
        kern = self.kern
        srng = self.srng
        check_off = self._outage_on
        offline_until = self.offline_until
        r = self.round_index
        for pid in active:
            s = members.get(pid)
            if s is None:
                continue  # departed earlier this round (unreachable here)
            if check_off and offline_until[s] > r:
                continue  # transient outage: no credit, no sends
            budgets[s].new_round()
            kern[s](self, s, srng[s])
            self._turn = None
        if self._track_rcv:
            self._roll_receipts()
        self._process_departures()
        self._process_churn()
        self._process_crashes()
        self._expire_obligations()
        self._process_whitewashing()
        if self.round_index % self.sample_interval == 0:
            self._sample()
        if self._all_done() or self.round_index >= self.max_rounds:
            self._finished = True

    def _process_seeder_outages(self) -> None:
        """Transient seeder failures (runner._process_seeder_outages):
        offline seeders keep pieces and views but earn no budget."""
        if not self._outage_on:
            return
        duration = self.config.faults.seeder_outage_duration
        r = self.round_index
        offline_until = self.offline_until
        collector = self.collector
        for s in range(self._n_seeders):
            if offline_until[s] > r:
                collector.record_seeder_downtime()
                continue
            if self.faults.seeder_fails():
                offline_until[s] = r + duration
                collector.record_seeder_outage()
                collector.record_seeder_downtime()

    def _roll_receipts(self) -> None:
        """Mirror of ``peer.end_round()`` over every active peer."""
        dirty = self._rcv_dirty
        for s in self._rcv_last_nonempty - dirty:
            self.last_rcv[s] = {}
        for s in dirty:
            self.last_rcv[s] = self.this_rcv[s]
            self.this_rcv[s] = {}
        self._rcv_last_nonempty = dirty
        self._rcv_dirty = set()

    def _drop_orphaned(self, departed_id: int) -> None:
        """Keys held by a departed uploader are lost: drop those pieces."""
        if self._pend_nonempty == 0:
            return
        for pid, s in list(self.members.items()):
            pd = self.pend[s]
            if not pd:
                continue
            orphaned = [piece for piece, e in pd.items()
                        if e[0] == departed_id]
            for piece in orphaned:
                self._drop_pending(s, piece)
            if orphaned:
                self.collector.record_orphaned_obligations(len(orphaned))

    def _process_departures(self) -> None:
        linger = self.config.seed_linger_rate
        for pid in list(self.members):
            s = self.members[pid]
            if self.seeder[s] or self.cnt[s] < self.n_pieces:
                continue
            if self.comp[s] is None:
                self.comp[s] = self.now
                self.ncomp += 1
                self._mark_done(s)
            if linger is not None and self._linger_rng.random() >= linger:
                continue  # stays one more round as a lingering seed
            self.departed_f[s] = True
            self._remove_member(pid)
            self._drop_orphaned(pid)

    def _process_churn(self) -> None:
        rate = self.config.abort_rate
        if rate <= 0.0:
            return
        for pid in list(self.members):
            s = self.members[pid]
            if self.seeder[s] or self.cnt[s] == self.n_pieces:
                continue
            if self._churn_rng.random() < rate:
                self.departed_f[s] = True
                self._mark_done(s)
                self._remove_member(pid)
                self._drop_orphaned(pid)

    def _process_crashes(self) -> None:
        """Permanent mid-download failures (runner._process_crashes).

        Crash coins are flipped on the faults stream per incomplete
        member in insertion order — the same order the object engine
        walks ``swarm.peers`` — with the churn teardown plus the fault
        tally; crashed colluders shrink the coalition. The fast
        lineage overrides this with batched geometric sampling.
        """
        if not self._crash_on:
            return
        coalition_hit = False
        members = self.members
        for pid in list(members):
            s = members[pid]
            if self.seeder[s] or self.cnt[s] == self.n_pieces:
                continue
            if self.faults.peer_crashes():
                self.departed_f[s] = True
                self._mark_done(s)
                self._remove_member(pid)
                self._drop_orphaned(pid)
                self.collector.record_crash()
                coalition_hit = coalition_hit or self.free[s]
        if coalition_hit:
            self._sync_coalition()

    def _expire_obligations(self) -> None:
        """Key timeout (runner._expire_obligations): drop pending
        pieces older than the expiry horizon. The per-slot oldest
        pending round short-circuits slots with nothing stale, so the
        scan only touches dicts that actually expire something."""
        expiry = self._expiry
        if expiry is None or self._pend_nonempty == 0:
            return
        horizon = self.round_index - expiry
        poldest = self.poldest
        members = self.members
        for pid in list(members):
            s = members[pid]
            if poldest[s] > horizon:
                continue
            pd = self.pend[s]
            stale = [piece for piece, e in pd.items() if e[2] <= horizon]
            for piece in stale:
                self._drop_pending(s, piece)
            if stale:
                self.collector.record_expired_obligations(len(stale))

    def _flush_due_reports(self) -> None:
        """Deliver delayed reputation reports that have come due.

        Mirrors ``runner._flush_due_reports``: reports resolve through
        the lineage to the *current* peer id (so whitewashed lineages
        credit the live identity), and reports whose lineage departed
        or crashed are discarded and counted."""
        reports = self._delayed_reports
        r = self.round_index
        lineage_slot = self._lineage_slot
        departed_f = self.departed_f
        while reports and reports[0][0] <= r:
            _due, lineage_id, amount = reports.popleft()
            s = lineage_slot[lineage_id]
            if departed_f[s]:
                self.collector.record_dropped_report()
                continue
            self.rep[self.ids[s]] += amount

    def _process_whitewashing(self) -> None:
        interval = self.attack.whitewash_interval
        if interval is None:
            return
        reset_any = False
        r = self.round_index
        for pid in list(self.members):
            s = self.members[pid]
            if self.free[s] and self.wwint[s] and r % self.wwint[s] == 0:
                self._reset_identity(s)
                reset_any = True
        if reset_any:
            self._sync_coalition()

    def _all_done(self) -> bool:
        return self._arrived >= self.config.n_users and self.unfinished == 0

    def _flush_counters(self) -> None:
        if self._c_tot or self._c_fr:
            self.collector.add_transfer_counts(self._c_tot, self._c_peer,
                                               self._c_fr)
            self._c_tot = self._c_peer = self._c_fr = 0

    def _sample(self) -> None:
        self._flush_counters()
        ud_ratios: List[float] = []
        du_ratios: List[float] = []
        count = 0
        members = self.members
        for pid in self.active:
            s = members[pid]
            if self.seeder[s]:
                continue
            count += 1
            if self.free[s]:
                continue
            down = self.down[s]
            upl = self.up[s]
            if down > 0:
                ud_ratios.append(upl / down)
            if upl > 0:
                du_ratios.append(down / upl)
        fairness_ud = (sum(ud_ratios) / len(ud_ratios)
                       if ud_ratios else None)
        fairness_du = (sum(du_ratios) / len(du_ratios)
                       if du_ratios else None)
        self.collector.sample(
            time=self.now,
            active_peers=count,
            arrived=self._arrived,
            population=self.config.n_users,
            bootstrapped=self.nboot,
            completed=self.ncomp,
            fairness_ud=fairness_ud,
            fairness_du=fairness_du,
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _summaries(self) -> List[PeerSummary]:
        return [PeerSummary(
            peer_id=self.ids[s],
            lineage_id=self.lineage[s],
            capacity=self.caps[s],
            is_freerider=self.free[s],
            arrival_time=self.arrival[s],
            bootstrap_time=self.boot[s],
            completion_time=self.comp[s],
            uploaded=self.up[s],
            downloaded=self.down[s],
        ) for s in range(self._n_seeders, self.n_slots)]

    def run(self):
        """Execute the run to completion; returns a SimulationResult."""
        import gc

        from repro.sim.runner import SimulationResult

        arrivals = self._arrivals
        n_arrivals = len(arrivals)
        i = 0
        # The round loop allocates heavily (pools, tie lists, pending
        # tuples) but keeps almost nothing cyclic; generational GC
        # passes are pure overhead here, so pause collection for the
        # loop when it was on.
        resume_gc = gc.isenabled()
        if resume_gc:
            gc.disable()
        try:
            while not self._finished:
                t = float(self.round_index + 1)
                while i < n_arrivals and arrivals[i] <= t:
                    self._on_arrival(i)
                    i += 1
                self.now = t
                self._on_round()
        finally:
            if resume_gc:
                gc.enable()
        self._flush_counters()
        raw = sum(self.raw[s] for s in range(self._n_seeders, self.n_slots))
        metrics = self.collector.finalize(self._summaries(),
                                          self.round_index, raw)
        metrics.digest_lineage = self.digest_lineage
        return SimulationResult(config=self.config, metrics=metrics)


#: Draws refilled per batch by :class:`_FastSampler`. Big enough to
#: amortize the Generator call, small enough that an average run still
#: consumes most of its final buffer.
_FS_BUF = 4096


class _FastSampler:
    """Buffered uniform draws from a PCG64 ``numpy.random.Generator``.

    The fast lineage's replacement for per-draw Mersenne calls: 64-bit
    integers and unit doubles are generated ``_FS_BUF`` at a time and
    handed out from plain Python lists, so the per-draw cost is a list
    index instead of a ``random.Random`` method call. ``randbelow``
    maps a 64-bit word onto ``[0, n)`` by modulo; the bias is
    ``n / 2**64`` — under 1e-13 for any reachable pool size, far below
    what any distributional test can resolve (and explicitly outside
    the parity-v1 contract: this sampler only ever runs under the
    ``fast-v1`` digest lineage).

    The stream is seeded from ``sha256(f"{seed}:fast-v1")`` so it is
    decoupled from every named Mersenne stream — population setup
    (arrivals, capacities, roles, views, topology) stays on the
    Mersenne streams and therefore identical per seed across all three
    backends; only in-round decision draws come from here.
    """

    __slots__ = ("_gen", "_ints", "_ipos", "_flts", "_fpos")

    def __init__(self, seed: int) -> None:
        derived = int.from_bytes(
            hashlib.sha256(f"{seed}:fast-v1".encode()).digest()[:8], "big")
        self._gen = np.random.Generator(np.random.PCG64(derived))
        self._ints: List[int] = []
        self._ipos = 0
        self._flts: List[float] = []
        self._fpos = 0

    def randbelow(self, n: int) -> int:
        """Uniform index in ``[0, n)`` (modulo map, see class doc)."""
        pos = self._ipos
        ints = self._ints
        if pos == len(ints):
            ints = self._ints = self._gen.integers(
                0, 1 << 64, size=_FS_BUF, dtype=np.uint64).tolist()
            pos = 0
        self._ipos = pos + 1
        return ints[pos] % n

    def random(self) -> float:
        """Uniform double in ``[0, 1)``."""
        pos = self._fpos
        flts = self._flts
        if pos == len(flts):
            flts = self._flts = self._gen.random(_FS_BUF).tolist()
            pos = 0
        self._fpos = pos + 1
        return flts[pos]

    def shuffle(self, x: list) -> None:
        """Permute ``x`` in place via one batched ``permutation`` call."""
        if len(x) > 1:
            x[:] = [x[i] for i in self._gen.permutation(len(x)).tolist()]


class VectorFastSimulation(VectorSimulation):
    """The ``vector-fast`` backend: batched sampling, fast-v1 lineage.

    Same struct-of-arrays state, round phases, transfer primitives and
    fault injection as :class:`VectorSimulation` — the overrides below
    swap only *where randomness comes from* and *how much of it is
    drawn*:

    * in-round decision draws (piece picks, candidate choices,
      optimism coins, turn-order shuffles) come from one buffered
      PCG64 stream (:class:`_FastSampler`) instead of replaying the
      object engine's Mersenne streams draw-for-draw;
    * kernels use the batched variants in
      :mod:`repro.algorithms.vector_kernels` (``FAST_KERNELS``), which
      drop draw-parity bookkeeping: T-Chain seeds via a lazy partial
      Fisher-Yates instead of a full shuffle per send, FairTorrent
      buckets its deficit levels once per turn, Reputation caches its
      weight vector across sends.

    Results are *distributionally* equivalent to the object engine
    (enforced by ``tests/integration/test_distributional_parity.py``)
    but not digest-identical; metrics are stamped
    ``digest_lineage="fast-v1"`` so they can never be mistaken for
    parity results. Population setup still runs on the named Mersenne
    streams, so a given seed produces the same peers, capacities,
    roles, arrival times and topology on every backend. Low-frequency
    draws (churn, lingering, whitewash views, loss/outage fault coins)
    also stay on their Mersenne streams — they are off the hot path
    and keeping them shared narrows the behavioural diff to the
    decision kernels. Per-round crash hazards are the exception: a
    per-member Bernoulli walk is O(members) every round, so this class
    replaces it with batched geometric gap sampling on the fast stream
    (O(crashes) draws; same Binomial crash pattern, enforced
    distributionally by the fault-parity suite).
    """

    digest_lineage = "fast-v1"

    def __init__(self, config: SimulationConfig) -> None:
        self._fs = _FastSampler(config.seed)
        super().__init__(config)
        n_slots = self.n_slots
        # Persistent needy pools (see _pool_for): per-uploader lists of
        # maybe-stale needy member ids, the ids last observed satisfied,
        # the usable mask the split was computed under, and the view
        # tuple it was built from (identity doubles as a view version:
        # every connect/disconnect pops ``varr``, so a changed view is
        # a changed tuple).
        self._pl: List[Optional[List[int]]] = [None] * n_slots
        self._pout: List[Optional[List[int]]] = [None] * n_slots
        self._puw: List[int] = [0] * n_slots
        self._pview: List[Optional[tuple]] = [None] * n_slots
        # Rescan short-circuit state: the evicted-list length at the
        # last rescan and the AND of the evictees' held masks as of
        # then. held only grows, so if that (stale-low) AND still
        # covers the current usable set, no evictee can have become
        # interesting — the rescan is skipped. Any eviction since
        # (detected by the length) invalidates the pair.
        self._plen: List[int] = [0] * n_slots
        self._pand: List[int] = [-1] * n_slots
        # Reverse pending index for _drop_orphaned: uploader id -> the
        # slots it has ever delivered an encrypted piece to. A superset
        # (never decremented — resolved entries just go stale), popped
        # wholesale when the uploader departs.
        self._pend_by_up: Dict[int, set] = {}
        self._install_fast_paths()

    def _select_kernels(self):
        from repro.algorithms.vector_kernels import (
            FAST_KERNELS, run_freerider, run_spray_fast)
        return FAST_KERNELS, run_spray_fast, run_freerider

    def _shuffle_active(self, active: List[int]) -> List[int]:
        self._fs.shuffle(active)
        return active

    def _tchain_draw(self, m: int) -> int:
        return self._fs.randbelow(m)

    def _process_crashes(self) -> None:
        # Geometric gap sampling over the candidate list: the skip to
        # the next crash is Geometric(hazard), so a round costs
        # O(crashes) draws instead of O(members) coins while the
        # per-candidate crash probability stays exactly ``hazard``.
        if not self._crash_on:
            return
        members = self.members
        seeder = self.seeder
        cnt = self.cnt
        npieces = self.n_pieces
        candidates = [pid for pid, s in members.items()
                      if not seeder[s] and cnt[s] != npieces]
        n = len(candidates)
        if n == 0:
            return
        hazard = self.config.faults.crash_hazard
        log_skip = math.log1p(-hazard)
        rnd = self._fs.random
        coalition_hit = False
        i = 0
        while True:
            u = 1.0 - rnd()
            i += int(math.log(u) / log_skip)
            if i >= n:
                break
            pid = candidates[i]
            s = members[pid]
            self.departed_f[s] = True
            self._mark_done(s)
            self._remove_member(pid)
            self._drop_orphaned(pid)
            self.collector.record_crash()
            coalition_hit = coalition_hit or self.free[s]
            i += 1
        if coalition_hit:
            self._sync_coalition()

    def _expire_obligations(self) -> None:
        # Expiry shrinks ``held`` without a view change — the one
        # mutation the cached needy pools' "held only grows" rescan
        # shortcut cannot see — so any expiry invalidates every pool.
        before = self.collector.faults.obligations_expired
        super()._expire_obligations()
        if self.collector.faults.obligations_expired != before:
            self._pview[:] = [None] * self.n_slots

    def _choose_designated(self, u: int, target_id: int,
                           piece: int) -> Optional[int]:
        # Rejection sampling: drawing uniformly from the whole view
        # and retrying on invalid candidates is exactly uniform over
        # the valid subset, without materialising it. A bounded probe
        # budget guards the low-acceptance tail (late game, when most
        # of the view already holds the piece); the fallback scan is
        # the parity engine's exact enumeration.
        _, _, vids, vslots = self._view(self.ids[u])
        n = len(vids)
        if n == 0:
            return None
        rb = self._fs.randbelow
        held = self.held
        for _ in range(8):
            j = rb(n) if n > 1 else 0
            p = vids[j]
            if not (held[vslots[j]] >> piece) & 1 and p != target_id:
                return p
        options = [p for p, t in zip(vids, vslots)
                   if not (held[t] >> piece) & 1 and p != target_id]
        m = len(options)
        if m == 0:
            return None
        return options[rb(m) if m > 1 else 0]

    def _forward_target(self, u: int, uploader_id: int,
                        designated: Optional[int],
                        piece: int) -> Optional[int]:
        if designated is not None:
            ds = self.members.get(designated)
            if (ds is not None and not (self.held[ds] >> piece) & 1
                    and not self._blacklisted(ds)):
                return designated
        _, _, vids, vslots = self._view(self.ids[u])
        n = len(vids)
        if n == 0:
            return None
        rb = self._fs.randbelow
        held = self.held
        pend = self.pend
        maxp = self._max_pending
        horizon = self.round_index - self._patience
        poldest = self.poldest
        for _ in range(8):
            j = rb(n) if n > 1 else 0
            p = vids[j]
            t = vslots[j]
            if (not (held[t] >> piece) & 1 and len(pend[t]) < maxp
                    and poldest[t] > horizon and p != uploader_id):
                return p
        options = [p for p, t in zip(vids, vslots)
                   if not (held[t] >> piece) & 1
                   and len(pend[t]) < maxp and poldest[t] > horizon
                   and p != uploader_id]
        m = len(options)
        if m == 0:
            return None
        return options[rb(m) if m > 1 else 0]

    def _shuffled_candidates(self, candidates: List[int]) -> Iterable[int]:
        # Lazy partial Fisher-Yates: each consumed element costs one
        # buffered draw; abandoning the iteration early (the common
        # case — the first willing candidate accepts) draws nothing
        # for the rest of the pool.
        rb = self._fs.randbelow
        n = len(candidates)
        while n:
            j = rb(n) if n > 1 else 0
            n -= 1
            candidates[j], candidates[n] = candidates[n], candidates[j]
            yield candidates[n]

    # ------------------------------------------------------------------
    # Cached needy pools
    # ------------------------------------------------------------------
    # The parity engine rebuilds the needy pool from the view on every
    # turn (the object strategies do the same scan). Here each
    # uploader keeps its pool across turns as a *superset* of the true
    # needy set: members can only leave it by becoming satisfied, and
    # kernels validate each drawn candidate with one bigint test,
    # evicting stale entries into ``_pout``. Rejection sampling from a
    # superset with per-draw validation is exactly uniform over the
    # true pool, so the policy distribution is unchanged. Re-entry
    # happens only when the uploader's usable set grows (interest is
    # monotone in it): ``_pool_for`` rescans the evicted list whenever
    # the usable snapshot moved. View changes (arrival, churn,
    # whitewash, departure) invalidate the whole split via the view
    # tuple identity. Pools are swap-pop mutated and therefore
    # unordered — every fast kernel draws by index or by weight, never
    # by position, so order does not matter.
    def _pool_for(self, u: int) -> List[int]:
        """The uploader's pool, stored as *slots* (no id indirection:
        a slot outlives the ids that pass through it, and a slot
        reassignment always changes the view and rebuilds the pool)."""
        hit = self._view(self.ids[u])
        uw = self.usable[u]
        if self._pview[u] is not hit:
            held = self.held
            cnt = self.cnt
            npieces = self.n_pieces
            pool: List[int] = []
            out: List[int] = []
            pand = -1
            for t in hit[3]:
                h = held[t]
                if h & uw != uw:
                    pool.append(t)
                elif cnt[t] != npieces:
                    # Completed members are dropped outright: cnt is
                    # monotone per slot, so they can never rejoin.
                    out.append(t)
                    pand &= h
            self._pl[u] = pool
            self._pout[u] = out
            self._plen[u] = len(out)
            self._pand[u] = pand
            self._puw[u] = uw
            self._pview[u] = hit
            return pool
        if self._puw[u] != uw:
            pool = self._pl[u]
            out = self._pout[u]
            if out and not (len(out) == self._plen[u]
                            and self._pand[u] & uw == uw):
                held = self.held
                keep: List[int] = []
                pand = -1
                for t in out:
                    h = held[t]
                    if h & uw != uw:
                        pool.append(t)
                    else:
                        keep.append(t)
                        pand &= h
                out[:] = keep
                self._plen[u] = len(keep)
                self._pand[u] = pand
            self._puw[u] = uw
        return self._pl[u]

    def _needy_list(self, u: int) -> List[int]:
        # Always the bigint listcomp, never ``_feas_sel``: the fast
        # engine does not maintain the W/UW numpy mirrors (see
        # _install_fast_paths), so the numpy dispatch would read
        # stale rows.
        _, _, vids, vslots = self._view(self.ids[u])
        uw = self.usable[u]
        held = self.held
        return [p for p, t in zip(vids, vslots) if held[t] & uw != uw]

    def begin_turn(self, u: int) -> _Turn:
        turn = _Turn(u, self._pool_for(u))
        self._turn = turn
        return turn

    def ensure_needy(self, turn: _Turn) -> List[int]:
        needy = self._pool_for(turn.uslot)
        turn.needy = needy
        return needy

    def _avail_shift_mask(self, mask: int, delta: int) -> None:
        """Move every piece in ``mask`` up or down one availability
        level — per-*level* bigint transfers instead of the base
        engine's per-piece ``add_piece``/``remove_piece`` calls. The
        ``moved`` accumulator keeps a piece from being shifted twice
        when its destination level comes up later in the scan."""
        am = self.availability
        counts = am._counts
        buckets = am._buckets
        levels = am._levels
        moved = 0
        for level in levels[:]:
            hit = buckets[level] & mask & ~moved
            if not hit:
                continue
            moved |= hit
            remaining = buckets[level] & ~hit
            if remaining:
                buckets[level] = remaining
            else:
                del buckets[level]
                levels.pop(bisect_left(levels, level))
            new = level + delta
            if new in buckets:
                buckets[new] |= hit
            else:
                buckets[new] = hit
                insort(levels, new)
            for p in bits_to_list(hit):
                counts[p] = new

    def _add_member(self, s: int) -> None:
        pid = self.ids[s]
        self.members[pid] = s
        insort(self.active, pid)
        if self.usable[s]:
            self._avail_shift_mask(self.usable[s], 1)
        self._build_view(s)

    def _remove_member(self, pid: int) -> None:
        s = self.members.pop(pid)
        self.active.pop(bisect_left(self.active, pid))
        if self.usable[s]:
            self._avail_shift_mask(self.usable[s], -1)
        self._disconnect_all(pid)

    def _drop_orphaned(self, departed_id: int) -> None:
        # The base engine scans every member's pending dict; here the
        # reverse index narrows the scan to the slots the departed
        # uploader ever delivered to. Stale index entries (resolved or
        # departed targets) fall out via the membership and pending
        # checks — the result set is identical to the full scan's.
        slots = self._pend_by_up.pop(departed_id, None)
        if slots is None or self._pend_nonempty == 0:
            return
        members = self.members
        ids = self.ids
        pend = self.pend
        for s in slots:
            if members.get(ids[s]) != s:
                continue
            pd = pend[s]
            if not pd:
                continue
            orphaned = [piece for piece, e in pd.items()
                        if e[0] == departed_id]
            for piece in orphaned:
                self._drop_pending(s, piece)
            if orphaned:
                self.collector.record_orphaned_obligations(len(orphaned))

    # ------------------------------------------------------------------
    # Specialised hot paths
    # ------------------------------------------------------------------
    def _install_fast_paths(self) -> None:
        """Shadow the shared transfer primitives with closures.

        The fast lineage has no draw-parity contract to honour, so its
        send/unlock/deliver paths can bind every piece of hot engine
        state into closure cells (one ``LOAD_DEREF`` instead of two
        dict lookups per access) and inline the availability-map and
        piece-choice bodies. Only state the engine *rebinds* during a
        run (``_turn``, ``now``, the batched metric counters, the
        receipt dirty-set) is read through ``sim`` — everything
        captured below is mutated in place, never replaced.

        These paths also skip the W/UW/pcnt/poldest numpy mirrors
        entirely: their only readers are the ``_feas_sel`` /
        ``pcnt_np`` / ``poldest_np`` large-view branches, which this
        class never reaches (``_needy_list``, ``_choose_designated``
        and ``_forward_target`` are overridden with bigint paths, and
        the fast kernels never call ``tchain_elig``). The bigint
        columns and the ``pend`` / ``poldest`` structures stay exact.
        """
        sim = self
        members = self.members
        ids = self.ids
        seeder = self.seeder
        free = self.free
        usable = self.usable
        held = self.held
        cnt = self.cnt
        budgets = self.budgets
        rep = self.rep
        up = self.up
        raw = self.raw
        down = self.down
        boot = self.boot
        comp = self.comp
        done = self.done
        Rf = self._Rf
        Df = self._Df
        npieces = self.n_pieces
        ns = self.n_slots
        use_rmat = self._use_rmat
        need_rcv = self._need_rcv
        is_rec = self._is_rec
        need_dev = self._need_dev
        track = self._track_rcv
        this_rcv = self.this_rcv
        rcv_d = self.rcv_d
        upl_d = self.upl_d
        cred = self.cred
        lineage = self.lineage
        lost = self._lost
        loss_on = self._loss_on
        delay_on = self._delay_on
        delay_rounds = self._delay_rounds
        delayed_reports = self._delayed_reports
        faults = self.faults
        collector = self.collector
        counts = self.availability._counts
        buckets = self.availability._buckets
        levels = self.availability._levels
        piece_random = self._piece_random
        rb = self._fs.randbelow
        pout = self._pout
        pbu = self._pend_by_up
        pend = self.pend
        poldest = self.poldest

        def choose(cand: int) -> Optional[int]:
            if not cand:
                return None
            if piece_random:
                lst = bits_to_list(cand)
                return lst[rb(len(lst))]
            # Hybrid rarest-first: the level scan costs one bigint AND
            # per availability level probed, and probes grow as the
            # candidate set shrinks (the rare pieces are the ones the
            # target already has). Sparse sets go the other way round
            # — enumerate the candidates and min-scan their counts.
            if cand.bit_count() <= 32:
                bc = 1 << 30
                ties: List[int] = []
                for p in bits_to_list(cand):
                    c = counts[p]
                    if c < bc:
                        bc = c
                        ties = [p]
                    elif c == bc:
                        ties.append(p)
                return ties[rb(len(ties))] if len(ties) > 1 else ties[0]
            tie = 0
            for level in levels:
                tie = buckets[level] & cand
                if tie:
                    break
            if not tie:
                return None
            if tie & (tie - 1):
                lst = bits_to_list(tie)
                return lst[rb(len(lst))]
            return tie.bit_length() - 1

        def avail_add(piece: int, bit: int) -> None:
            old = counts[piece]
            new = old + 1
            counts[piece] = new
            remaining = buckets[old] & ~bit
            if remaining:
                buckets[old] = remaining
            else:
                del buckets[old]
                levels.pop(bisect_left(levels, old))
            if new in buckets:
                buckets[new] |= bit
            else:
                buckets[new] = bit
                insort(levels, new)

        def piece_gained(ts: int, c: int) -> None:
            if boot[ts] is None:
                boot[ts] = sim.now
                sim.nboot += 1
            if c == npieces and comp[ts] is None:
                comp[ts] = sim.now
                sim.ncomp += 1
                if not done[ts]:
                    done[ts] = True
                    if not free[ts] and not seeder[ts]:
                        sim.unfinished -= 1

        def fast_send(u: int, target_id: int,
                      j: Optional[int] = None) -> bool:
            ts = members.get(target_id)
            if ts is None or seeder[ts]:
                return False
            c = cnt[ts]
            if c == npieces:
                return False
            uid = ids[u]
            if target_id == uid:
                return False
            cand = usable[u] & ~held[ts]
            if not cand:
                return False
            # Piece choice, inlined (same body as ``choose``).
            if piece_random:
                lst = bits_to_list(cand)
                piece = lst[rb(len(lst))] if len(lst) > 1 else lst[0]
            elif cand.bit_count() <= 32:
                bc = 1 << 30
                ties = []
                for p in bits_to_list(cand):
                    ac = counts[p]
                    if ac < bc:
                        bc = ac
                        ties = [p]
                    elif ac == bc:
                        ties.append(p)
                piece = ties[rb(len(ties))] if len(ties) > 1 else ties[0]
            else:
                tie = 0
                for level in levels:
                    tie = buckets[level] & cand
                    if tie:
                        break
                if tie & (tie - 1):
                    lst = bits_to_list(tie)
                    piece = lst[rb(len(lst))]
                elif tie:
                    piece = tie.bit_length() - 1
                else:
                    return False
            b = budgets[u]
            b._credits_num -= b._den
            b.total_consumed += 1
            if loss_on and faults.transfer_lost():
                collector.record_lost_transfer()
                lost.add((lineage[ts], piece))
                return False
            up[u] += 1
            from_seeder = seeder[u]
            if not from_seeder:
                if delay_on:
                    delayed_reports.append(
                        (sim.round_index + delay_rounds, lineage[u], 1.0))
                    collector.record_delayed_report()
                else:
                    rep[uid] += 1.0
            if use_rmat:
                Rf[ts * ns + u] += 1
            elif need_rcv:
                d = rcv_d[ts]
                nv = d.get(uid, 0) + 1
                d[uid] = nv
                if is_rec:
                    if nv > upl_d[ts].get(uid, 0):
                        cred[ts].add(uid)
                    du = upl_d[u]
                    nu = du.get(target_id, 0) + 1
                    du[target_id] = nu
                    if nu >= rcv_d[u].get(target_id, 0):
                        cred[u].discard(target_id)
            if need_dev:
                Df[u * ns + ts] += 1
                Df[ts * ns + u] -= 1
            if track:
                d = this_rcv[ts]
                d[uid] = d.get(uid, 0) + 1
                sim._rcv_dirty.add(ts)
            raw[ts] += 1
            down[ts] += 1
            bit = 1 << piece
            usable[ts] |= bit
            held[ts] |= bit
            c += 1
            cnt[ts] = c
            # Availability map, inlined (same body as ``avail_add``).
            old = counts[piece]
            new = old + 1
            counts[piece] = new
            remaining = buckets[old] & ~bit
            if remaining:
                buckets[old] = remaining
            else:
                del buckets[old]
                levels.pop(bisect_left(levels, old))
            if new in buckets:
                buckets[new] |= bit
            else:
                buckets[new] = bit
                insort(levels, new)
            if lost:
                key = (lineage[ts], piece)
                if key in lost:
                    lost.discard(key)
                    collector.record_retried_transfer()
            sim._c_tot += 1
            if not from_seeder:
                sim._c_peer += 1
                if free[ts]:
                    sim._c_fr += 1
            # piece_gained, inlined.
            if boot[ts] is None:
                boot[ts] = sim.now
                sim.nboot += 1
            if c == npieces and comp[ts] is None:
                comp[ts] = sim.now
                sim.ncomp += 1
                if not done[ts]:
                    done[ts] = True
                    if not free[ts] and not seeder[ts]:
                        sim.unfinished -= 1
            # Pool repair: the target leaves the pool iff the piece
            # just sent was its last interesting one; it goes to the
            # evicted list so a usable-set change can re-admit it —
            # unless it just completed, in which case it never can.
            turn = sim._turn
            if turn is not None and turn.uslot == u:
                needy = turn.needy
                if needy is not None and cand == bit:
                    if j is None:
                        try:
                            j = needy.index(ts)
                        except ValueError:
                            j = None
                    if j is not None:
                        needy[j] = needy[-1]
                        needy.pop()
                        if c != npieces:
                            pout[u].append(ts)
            return True

        def fast_unlock(s: int, piece: int) -> None:
            pd = pend[s]
            entry = pd.pop(piece)
            if not pd:
                sim._pend_nonempty -= 1
            if entry[2] == poldest[s]:
                poldest[s] = min((e[2] for e in pd.values()),
                                 default=_NO_PENDING)
            bit = 1 << piece
            usable[s] |= bit
            c = cnt[s] + 1
            cnt[s] = c
            avail_add(piece, bit)
            down[s] += 1
            if free[s]:
                sim._c_fr += 1  # record_unlock, batched
            piece_gained(s, c)

        def fast_deliver(u: int, ts: int, piece: int,
                         from_seeder: bool) -> bool:
            b = budgets[u]
            b._credits_num -= b._den
            b.total_consumed += 1
            if loss_on and faults.transfer_lost():
                collector.record_lost_transfer()
                lost.add((lineage[ts], piece))
                return False
            uid = ids[u]
            up[u] += 1
            if not from_seeder:
                if delay_on:
                    delayed_reports.append(
                        (sim.round_index + delay_rounds, lineage[u], 1.0))
                    collector.record_delayed_report()
                else:
                    rep[uid] += 1.0
            raw[ts] += 1
            if lost:
                key = (lineage[ts], piece)
                if key in lost:
                    lost.discard(key)
                    collector.record_retried_transfer()
            designated: Optional[int] = None
            if not (usable[ts] & ~held[u]):
                designated = sim._choose_designated(u, ids[ts], piece)
            sim._c_tot += 1
            if not from_seeder:
                sim._c_peer += 1
            if (sim._collusion and free[ts] and designated is not None
                    and designated in sim.colluders[ts]):
                sim._add_usable(ts, piece)
                down[ts] += 1
                sim._c_fr += 1
                sim._piece_gained(ts)
            else:
                # _add_pending, inlined.
                pd = pend[ts]
                if not pd:
                    sim._pend_nonempty += 1
                created = sim.round_index
                pd[piece] = (uid, designated, created)
                held[ts] |= 1 << piece
                ups = pbu.get(uid)
                if ups is None:
                    pbu[uid] = {ts}
                else:
                    ups.add(ts)
                if created < poldest[ts]:
                    poldest[ts] = created
                if boot[ts] is None:
                    boot[ts] = sim.now
                    sim.nboot += 1
            return True

        maxp = self._max_pending
        patience = self._patience

        def fast_tchain_seed(u: int, target_id: int) -> bool:
            # Base tchain_seed with the budget probe, blacklist test
            # and delivery call flattened into one frame.
            b = budgets[u]
            if b._credits_num < b._den:
                return False
            ts = members.get(target_id)
            if ts is None or seeder[ts] or cnt[ts] == npieces:
                return False
            if target_id == ids[u]:
                return False
            if (len(pend[ts]) >= maxp
                    or poldest[ts] <= sim.round_index - patience):
                return False
            piece = choose(usable[u] & ~held[ts])
            if piece is None:
                return False
            return fast_deliver(u, ts, piece, seeder[u])

        self._choose_piece = choose
        self._plain_send = fast_send
        self._unlock = fast_unlock
        self._deliver_encrypted = fast_deliver
        self.tchain_seed = fast_tchain_seed
