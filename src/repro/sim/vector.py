"""Struct-of-arrays fast path for the round loop (the ``vector`` backend).

:class:`VectorSimulation` executes the same simulation as
:class:`repro.sim.runner.Simulation` but stores swarm state in
contiguous arrays indexed by *slot* (one slot per lineage: seeders
first, then users in creation order) instead of one Python object per
peer:

* piece state as integer bitmasks plus a ``(n_slots, n_words)`` numpy
  ``uint64`` matrix of held-or-pending words, so "which neighbors can
  I serve" is one batched ``AND``/``any`` over the neighbor rows;
* pairwise ledgers (uploaded-to / received-from / FairTorrent
  deficits) as per-slot dicts, maintained only for the algorithms
  that read them — plus an incrementally-maintained creditor set for
  reciprocity so its no-RNG turns never touch numpy at all;
* reputations, budgets, totals, times and attack flags as flat
  per-slot arrays;
* T-Chain pending obligations as per-slot dicts mirrored into numpy
  blacklist columns (pending count, oldest round).

Each uploader turn computes its needy-neighbor pool *once* as a
batched array query, materializes it as an ascending Python list, and
repairs it in place after every send (only the send's target can
change state during the uploader's own turn). The per-algorithm
decision rules live in :mod:`repro.algorithms.vector_kernels`.

Determinism contract
--------------------
The object engine is the oracle. For every supported configuration the
vector backend consumes the *same named random streams in the same
order* and produces a byte-identical metrics digest
(:func:`repro.sim.metrics.metrics_digest`) — enforced per algorithm by
``tests/integration/test_seed_equivalence.py`` and property-tested by
the fuzz suite. To keep that guarantee the event engine is bypassed
rather than re-implemented: rounds fire at exactly ``t = 1.0, 2.0,
...`` with arrivals delivered in index order before the round whose
time they do not exceed, which is precisely the order the event queue
produces (arrival events are scheduled first and carry earlier
sequence numbers). Hot paths inline ``random.Random``'s
``_randbelow``/``shuffle`` (see :func:`_randbelow` / :func:`_shuffle`)
so index draws stay bit-identical to ``rng.choice``/``rng.shuffle``
while exposing the drawn index for O(1) pool repair.

Unsupported features
--------------------
Observation and failure layers that hook the object engine's internals
are not reimplemented here: fault injection, runtime guards, the
observability runtime and per-transfer recording all require the
object backend. :func:`vector_unsupported_reason` reports why a config
cannot run vectorized; :func:`repro.sim.runner.run_simulation` falls
back to the object engine (with a ``RuntimeWarning``) in that case.
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.names import Algorithm
from repro.sim.arrivals import flash_crowd_arrivals, poisson_arrivals
from repro.sim.bandwidth import UploadBudget
from repro.sim.config import SimulationConfig
from repro.sim.faults import FaultConfig
from repro.sim.metrics import MetricsCollector, PeerSummary
from repro.sim.pieces import AvailabilityMap, bits_to_list, iter_bits
from repro.sim.rng import RandomStreams

__all__ = ["VectorSimulation", "vector_unsupported_reason"]

#: Sentinel for "no pending obligation" in the oldest-round columns;
#: must compare greater than every reachable blacklist horizon.
_NO_PENDING = 1 << 62

_EMPTY_IDS = np.empty(0, dtype=np.int64)

#: Views at or below this size run discovery as a plain Python loop
#: over bigint masks; larger ones (large-view attackers, seeders) use
#: the numpy word-matrix query.
_SMALL_VIEW = 96

#: Single-bit uint64 constants so per-send word updates skip a
#: ``np.uint64(...)`` construction.
_U64_BITS = [np.uint64(1 << i) for i in range(64)]


def _randbelow(getrandbits, n: int) -> int:
    """``random.Random._randbelow_with_getrandbits``, inlined.

    Bit-identical draw sequence to ``rng.randrange(n)`` /
    ``rng.choice(seq)`` (which is ``seq[_randbelow(len(seq))]``), with
    the index exposed so callers can repair list pools in place.
    """
    k = n.bit_length()
    r = getrandbits(k)
    while r >= n:
        r = getrandbits(k)
    return r


def _shuffle(x: list, getrandbits) -> None:
    """``random.Random.shuffle``, inlined (draw-identical)."""
    for i in range(len(x) - 1, 0, -1):
        n = i + 1
        k = n.bit_length()
        j = getrandbits(k)
        while j >= n:
            j = getrandbits(k)
        x[i], x[j] = x[j], x[i]


def vector_unsupported_reason(config: SimulationConfig) -> Optional[str]:
    """Why ``config`` cannot run on the vector backend (None = it can).

    The vector engine covers every algorithm (including propshare),
    both arrival processes, all attack flags, churn/lingering, both
    topologies and both piece policies. What it does not implement are
    the object engine's instrumentation hooks.
    """
    if config.faults != FaultConfig():
        return "fault injection (config.faults)"
    if config.guards.enabled:
        return "runtime invariant guards (config.guards)"
    if config.obs.enabled:
        return "the observability runtime (config.obs)"
    if config.record_transfers:
        return "per-transfer recording (config.record_transfers)"
    return None


class _Turn:
    """Per-uploader-turn cache of the needy-neighbor pool.

    ``needy`` is the ascending list of view-member ids that need at
    least one of the uploader's usable pieces — or ``None`` until
    first use for kernels that may finish a turn without it
    (BitTorrent's tit-for-tat slots). During one uploader's turn only
    its *targets* change state, so after each successful send the
    engine pops the single affected entry (by drawn index when known,
    by bisection otherwise) instead of recomputing the pool.
    """

    __slots__ = ("uslot", "needy")

    def __init__(self, uslot: int, needy: Optional[List[int]]) -> None:
        self.uslot = uslot
        self.needy = needy


class VectorSimulation:
    """One configured run on the struct-of-arrays backend."""

    def __init__(self, config: SimulationConfig) -> None:
        reason = vector_unsupported_reason(config)
        if reason is not None:
            raise ConfigurationError(
                f"the vector backend does not support {reason}; "
                "use backend='object'")
        from repro.algorithms.vector_kernels import (
            KERNELS, DEFICIT_ALGORITHMS, RECEIVED_ALGORITHMS,
            RECEIPT_ALGORITHMS, run_freerider, run_spray)

        self.config = config
        algorithm = config.algorithm
        self.n_pieces = config.n_pieces
        self._full_mask = (1 << config.n_pieces) - 1
        self._n_words = (config.n_pieces + 63) // 64
        self._n_bytes = self._n_words * 8
        self.neighbor_count = config.neighbor_count
        self.max_rounds = config.max_rounds
        self.sample_interval = config.sample_interval
        self.attack = config.attack
        self.params = config.strategy_params
        self._collusion = config.attack.collusion
        self._piece_random = config.piece_selection == "random"
        self._max_pending = config.strategy_params.tchain_max_pending
        self._patience = config.strategy_params.tchain_obligation_patience
        self._is_tchain = algorithm is Algorithm.TCHAIN
        #: Ledgers are only maintained for algorithms that read them;
        #: everything else skips the per-send dict updates.
        self._need_rcv = algorithm in RECEIVED_ALGORITHMS
        self._is_rec = algorithm is Algorithm.RECIPROCITY
        self._need_dev = algorithm in DEFICIT_ALGORITHMS
        self._track_rcv = algorithm in RECEIPT_ALGORITHMS
        #: BitTorrent/PropShare read their all-time received ledger as
        #: a slot matrix (vectorized fallback scans); Reciprocity keeps
        #: dicts plus the incremental creditor sets instead.
        self._use_rmat = self._need_rcv and not self._is_rec

        self.streams = RandomStreams(config.seed)
        self._views_rng = self.streams.stream("views")
        self._piece_rng = self.streams.stream("pieces")
        self._piece_grb = self._piece_rng.getrandbits
        self._order_rng = self.streams.stream("order")
        self._tchain_rng = self.streams.stream("tchain")
        self._tchain_grb = self._tchain_rng.getrandbits
        self._churn_rng = self.streams.stream("churn")
        self._linger_rng = self.streams.stream("linger")

        self.collector = MetricsCollector()
        self.availability = AvailabilityMap(config.n_pieces)
        self._avail_add = self.availability.add_piece
        self._rarest = self.availability.rarest_subset
        self.round_index = 0
        self.now = 0.0
        self._finished = False
        self._arrived = 0
        self.nboot = 0
        self.ncomp = 0
        self.unfinished = config.n_compliant
        self.fake_reported = 0.0
        # Transfer counters accumulated locally and flushed to the
        # collector before every sample (see _flush_counters).
        self._c_tot = 0
        self._c_peer = 0
        self._c_fr = 0

        n_seeders = config.n_seeders
        self._n_seeders = n_seeders
        n_slots = n_seeders + config.n_users
        self.n_slots = n_slots

        # ---- per-slot state (parallel arrays) -----------------------
        self.usable: List[int] = [0] * n_slots      # usable-piece bitmask
        self.held: List[int] = [0] * n_slots        # usable | pending
        self.cnt: List[int] = [0] * n_slots         # usable-piece count
        self.caps: List[float] = [0.0] * n_slots
        self.seeder: List[bool] = [False] * n_slots
        self.free: List[bool] = [False] * n_slots
        self.largev: List[bool] = [False] * n_slots
        self.wwint: List[Optional[int]] = [None] * n_slots
        self.arrival: List[float] = [0.0] * n_slots
        self.boot: List[Optional[float]] = [None] * n_slots
        self.comp: List[Optional[float]] = [None] * n_slots
        self.departed_f: List[bool] = [False] * n_slots
        self.done: List[bool] = [False] * n_slots
        self.up: List[int] = [0] * n_slots          # total_uploaded
        self.down: List[int] = [0] * n_slots        # total_downloaded
        self.raw: List[int] = [0] * n_slots         # total_received_raw
        self.budgets: List[UploadBudget] = [None] * n_slots  # type: ignore
        self.colluders: List[Set[int]] = [set() for _ in range(n_slots)]
        self.ids: List[int] = [0] * n_slots         # current peer id
        self.lineage: List[int] = [0] * n_slots
        self.srng: List[random.Random] = [None] * n_slots  # type: ignore
        self.kern: List[object] = [None] * n_slots
        #: Held-or-pending bitmask rows as uint64 words, for batched
        #: "who needs what I have" queries over neighbor slot arrays.
        self.W = np.zeros((n_slots, self._n_words), dtype=np.uint64)
        self._Wf = self.W.reshape(-1)               # flat view, scalar updates
        #: Usable-only word rows (wp in discovery queries), kept in
        #: lockstep with ``usable`` so a turn never re-packs a bigint.
        self.UW = np.zeros((n_slots, self._n_words), dtype=np.uint64)
        self._UWf = self.UW.reshape(-1)
        # Preallocated discovery scratch (gather and compare buffers).
        self._gbuf = np.empty((n_slots, self._n_words), dtype=np.uint64)
        self._ebuf = np.empty((n_slots, self._n_words), dtype=bool)

        # Pairwise ledgers, algorithm-gated (see class docstring).
        mk = n_slots
        self.rcv_d: List[Dict[int, int]] = (
            [{} for _ in range(mk)]
            if self._need_rcv and not self._use_rmat else [])
        #: All-time received ledger as a slot matrix (same whitewash
        #: semantics as ``D`` below: column zeroed, row kept).
        self.R = (np.zeros((mk, mk), dtype=np.int32)
                  if self._use_rmat else None)
        self._Rf = self.R.reshape(-1) if self.R is not None else None
        self.upl_d: List[Dict[int, int]] = (
            [{} for _ in range(mk)] if self._is_rec else [])
        self.cred: List[Set[int]] = (
            [set() for _ in range(mk)] if self._is_rec else [])
        #: FairTorrent pairwise deficit (sent minus received), as a
        #: slot-by-slot matrix so a turn's min-deficit scan is one
        #: numpy gather instead of a dict walk. Slot-keying matches
        #: the object engine's id-keyed ledgers because a peer's own
        #: ledger survives whitewashing while *others'* balances
        #: toward its old identity are orphaned — ``_reset_identity``
        #: zeroes the whitewashed column to reproduce that.
        self.D = (np.zeros((mk, mk), dtype=np.int32)
                  if self._need_dev else None)
        self._Df = self.D.reshape(-1) if self.D is not None else None

        # T-Chain pending obligations: piece -> (uploader_id,
        # designated_target, created_round), with numpy blacklist
        # mirrors (count, oldest created round).
        self.pend: List[Dict[int, Tuple[int, Optional[int], int]]] = (
            [{} for _ in range(n_slots)])
        self.poldest: List[int] = [_NO_PENDING] * n_slots
        self.pcnt_np = np.zeros(n_slots, dtype=np.int32)
        self.poldest_np = np.full(n_slots, _NO_PENDING, dtype=np.int64)
        self._pend_nonempty = 0

        # Tit-for-tat receipt windows (bittorrent / propshare only).
        self.last_rcv: List[Dict[int, int]] = [{} for _ in range(n_slots)]
        self.this_rcv: List[Dict[int, int]] = [{} for _ in range(n_slots)]
        self._rcv_dirty: Set[int] = set()
        self._rcv_last_nonempty: Set[int] = set()

        # ---- identity space -----------------------------------------
        self._next_id = 0
        self._id_cap = max(64, n_slots)
        self.slot_np = np.full(self._id_cap, -1, dtype=np.int64)
        self.rep: List[float] = []                  # reputation by peer id

        # ---- membership and views (keyed by current peer id) --------
        self.members: Dict[int, int] = {}           # id -> slot, insertion order
        self.active: List[int] = []                 # sorted active ids
        self.vset: Dict[int, Set[int]] = {}
        self.varr: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._static_views: Dict[int, Set[int]] = {}
        self._turn: Optional[_Turn] = None
        self._coalition: List[int] = []             # coalition slots

        self._install_topology()

        # ---- population (mirrors Simulation._build_population) ------
        for index in range(n_seeders):
            s = index
            pid = self._allocate_id(s)
            self.ids[s] = pid
            self.lineage[s] = pid
            self.caps[s] = config.seeder_capacity
            self.seeder[s] = True
            self.largev[s] = True
            self.usable[s] = self._full_mask
            self.held[s] = self._full_mask
            self.cnt[s] = config.n_pieces
            self.W[s] = self._mask_words(self._full_mask)
            self.UW[s] = self.W[s]
            self.budgets[s] = UploadBudget(config.seeder_capacity)
            self.srng[s] = self.streams.stream(f"seeder:{index}")
            self.kern[s] = run_spray
            self._add_member(s)

        capacities = self._capacity_assignments()
        if config.arrival_process == "poisson":
            arrivals = poisson_arrivals(config.n_users, config.arrival_rate,
                                        self.streams.stream("arrivals"))
        else:
            arrivals = flash_crowd_arrivals(config.n_users,
                                            config.flash_crowd_duration,
                                            self.streams.stream("arrivals"))
        self._arrivals = arrivals
        role_rng = self.streams.stream("roles")
        freerider_indices = set(
            role_rng.sample(range(config.n_users), config.n_freeriders))

        kernel = KERNELS[algorithm]
        for index in range(config.n_users):
            s = n_seeders + index
            pid = self._allocate_id(s)
            self.ids[s] = pid
            self.lineage[s] = pid
            self.caps[s] = capacities[index]
            self.arrival[s] = arrivals[index]
            self.budgets[s] = UploadBudget(capacities[index])
            self.srng[s] = self.streams.stream(f"strategy:{pid}")
            if index in freerider_indices:
                self.free[s] = True
                self.largev[s] = config.attack.large_view
                self.wwint[s] = config.attack.whitewash_interval
                self._coalition.append(s)
                self.kern[s] = run_freerider
            else:
                self.kern[s] = kernel
        self._sync_coalition()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _install_topology(self) -> None:
        topology = self.config.view_topology
        if topology == "random":
            return
        import networkx as nx

        n = self.config.n_users
        k = max(2, min(self.config.neighbor_count, n - 1))
        if k % 2:
            k -= 1  # watts_strogatz needs an even degree
        rewire = 0.0 if topology == "ring" else 0.1
        graph = nx.watts_strogatz_graph(
            n, k, rewire, seed=self.streams.stream("topology").randint(
                0, 2**31 - 1))
        first_user_id = self.config.n_seeders
        self._static_views = {
            first_user_id + node: {first_user_id + other
                                   for other in graph.neighbors(node)}
            for node in graph.nodes
        }

    def _capacity_assignments(self) -> List[float]:
        cfg = self.config
        counts = [int(cls.fraction * cfg.n_users)
                  for cls in cfg.capacity_classes]
        shortfall = cfg.n_users - sum(counts)
        order = sorted(range(len(counts)),
                       key=lambda i: -cfg.capacity_classes[i].fraction)
        for i in range(shortfall):
            counts[order[i % len(order)]] += 1
        capacities: List[float] = []
        for cls, count in zip(cfg.capacity_classes, counts):
            capacities.extend([cls.capacity] * count)
        self.streams.stream("capacity").shuffle(capacities)
        return capacities

    def _allocate_id(self, slot: int) -> int:
        pid = self._next_id
        self._next_id += 1
        self.rep.append(0.0)
        if pid >= self._id_cap:
            self._grow_id_space()
        self.slot_np[pid] = slot
        return pid

    def _grow_id_space(self) -> None:
        new_cap = self._id_cap * 2
        grown = np.full(new_cap, -1, dtype=np.int64)
        grown[:self._id_cap] = self.slot_np
        self.slot_np = grown
        self._id_cap = new_cap

    # ------------------------------------------------------------------
    # Views and membership (mirrors Swarm)
    # ------------------------------------------------------------------
    def _mask_words(self, mask: int) -> np.ndarray:
        return np.frombuffer(mask.to_bytes(self._n_bytes, "little"),
                             dtype="<u8")

    def _feas_sel(self, u: int, slots: np.ndarray, n: int) -> np.ndarray:
        """Boolean mask over ``slots``: who needs ≥1 usable piece of ``u``.

        A target is needy iff ``usable_u & ~held_t != 0``, i.e. its
        held-words ANDed with the uploader's usable-words differ from
        the usable-words somewhere. Runs through preallocated scratch
        so the hot query allocates only its (n,) result.
        """
        g = self._gbuf[:n]
        np.take(self.W, slots, axis=0, out=g, mode="clip")
        wp = self.UW[u]
        np.bitwise_and(g, wp, out=g)
        ne = self._ebuf[:n]
        np.not_equal(g, wp, out=ne)
        return np.logical_or.reduce(ne, axis=1)

    def _add_member(self, s: int) -> None:
        pid = self.ids[s]
        self.members[pid] = s
        insort(self.active, pid)
        for piece in iter_bits(self.usable[s]):
            self.availability.add_piece(piece)
        self._build_view(s)

    def _build_view(self, s: int) -> None:
        pid = self.ids[s]
        others = [q for q in self.members if q != pid]
        if self.largev[s]:
            chosen = others
        elif pid in self._static_views:
            wanted = self._static_views[pid]
            chosen = [q for q in others if q in wanted]
        else:
            k = min(self.neighbor_count, len(others))
            chosen = self._views_rng.sample(others, k) if k else []
        for q in chosen:
            self._connect(pid, q)
        # Existing large-view attackers connect to every newcomer too.
        largev = self.largev
        for q, os_ in self.members.items():
            if largev[os_] and q != pid:
                self._connect(pid, q)

    def _connect(self, a: int, b: int) -> None:
        va = self.vset.get(a)
        if va is None:
            va = self.vset[a] = set()
        if b not in va:
            va.add(b)
            self.varr.pop(a, None)
        vb = self.vset.get(b)
        if vb is None:
            vb = self.vset[b] = set()
        if a not in vb:
            vb.add(a)
            self.varr.pop(b, None)

    def _disconnect_all(self, pid: int) -> None:
        for nb in self.vset.pop(pid, set()):
            self.vset[nb].discard(pid)
            self.varr.pop(nb, None)
        self.varr.pop(pid, None)

    def _view(self, pid: int) -> Tuple[np.ndarray, np.ndarray, list, list]:
        """Sorted view-member ids and slots, as arrays and as lists.

        Lazily rebuilt after view changes. Small views run discovery
        as a plain bigint loop over the lists (cheaper than numpy
        dispatch below ``_SMALL_VIEW`` members); large views — the
        seeders' large-view attackers' — use the array form.
        """
        hit = self.varr.get(pid)
        if hit is None:
            vs = self.vset.get(pid)
            if not vs:
                hit = (_EMPTY_IDS, _EMPTY_IDS, [], [])
            else:
                ids = np.array(sorted(vs), dtype=np.int64)
                slots = self.slot_np[ids]
                hit = (ids, slots, ids.tolist(), slots.tolist())
            self.varr[pid] = hit
        return hit

    def _remove_member(self, pid: int) -> None:
        s = self.members.pop(pid)
        self.active.pop(bisect_left(self.active, pid))
        for piece in iter_bits(self.usable[s]):
            self.availability.remove_piece(piece)
        self._disconnect_all(pid)

    def _reset_identity(self, s: int) -> None:
        """Whitewash: fresh id, same slot (mirrors Swarm.reset_identity)."""
        old = self.ids[s]
        del self.members[old]
        self.active.pop(bisect_left(self.active, old))
        self._disconnect_all(old)
        self.rep[old] = 0.0
        if self.D is not None:
            # Others' balances pointed at the discarded identity; the
            # whitewasher's own ledger (row ``s``) survives, exactly
            # as id-keyed dicts would orphan the old column entries.
            self.D[:, s] = 0
        if self.R is not None:
            self.R[:, s] = 0
        new = self._allocate_id(s)
        self.ids[s] = new
        self.members[new] = s
        insort(self.active, new)
        self._build_view(s)

    def _sync_coalition(self) -> None:
        if not (self.attack.collusion or self.attack.false_praise):
            return
        ids = {self.ids[s] for s in self._coalition if not self.departed_f[s]}
        for s in self._coalition:
            self.colluders[s] = ids - {self.ids[s]}

    # ------------------------------------------------------------------
    # Needy queries
    # ------------------------------------------------------------------
    def _needy_list(self, u: int) -> List[int]:
        """Ascending needy view-member ids for uploader ``u``."""
        ids, slots, vids, vslots = self._view(self.ids[u])
        n = len(vids)
        if n == 0:
            return []
        if n > _SMALL_VIEW:
            return ids[self._feas_sel(u, slots, n)].tolist()
        uw = self.usable[u]
        held = self.held
        # Interest test without the bigint invert: the target lacks
        # one of u's usable pieces iff held & usable != usable.
        return [p for p, t in zip(vids, vslots) if held[t] & uw != uw]

    def begin_turn(self, u: int) -> _Turn:
        """Compute the uploader's needy pool once for this turn."""
        turn = _Turn(u, self._needy_list(u))
        self._turn = turn
        return turn

    def begin_turn_lazy(self, u: int) -> _Turn:
        """A turn whose needy pool is built on first use."""
        turn = _Turn(u, None)
        self._turn = turn
        return turn

    def ensure_needy(self, turn: _Turn) -> List[int]:
        needy = self._needy_list(turn.uslot)
        turn.needy = needy
        return needy

    # ------------------------------------------------------------------
    # Transfer primitives (mirror runner.transfer_plain and friends)
    # ------------------------------------------------------------------
    def _choose_piece(self, candidate_mask: int) -> Optional[int]:
        """``rarest_first`` / random policy, draw-identical, inlined."""
        if not candidate_mask:
            return None
        if self._piece_random:
            lst = bits_to_list(candidate_mask)
            n = len(lst)
            grb = self._piece_grb
            k = n.bit_length()
            r = grb(k)
            while r >= n:
                r = grb(k)
            return lst[r]
        tie = self._rarest(candidate_mask)
        if not tie:
            return None
        if tie & (tie - 1) == 0:  # single bit: unique rarest piece
            return tie.bit_length() - 1
        lst = bits_to_list(tie)
        n = len(lst)
        grb = self._piece_grb
        k = n.bit_length()
        r = grb(k)
        while r >= n:
            r = grb(k)
        return lst[r]

    def _add_usable(self, s: int, piece: int) -> None:
        bit = 1 << piece
        self.usable[s] |= bit
        self.held[s] |= bit
        self.cnt[s] += 1
        idx = s * self._n_words + (piece >> 6)
        b = _U64_BITS[piece & 63]
        self._Wf[idx] |= b
        self._UWf[idx] |= b
        self._avail_add(piece)

    def _mark_done(self, s: int) -> None:
        if not self.done[s]:
            self.done[s] = True
            if not self.free[s] and not self.seeder[s]:
                self.unfinished -= 1

    def _piece_gained(self, s: int) -> None:
        if self.boot[s] is None and self.cnt[s] >= 1:
            self.boot[s] = self.now
            self.nboot += 1
        if self.cnt[s] == self.n_pieces and self.comp[s] is None:
            self.comp[s] = self.now
            self.ncomp += 1
            self._mark_done(s)

    def _plain_send(self, u: int, target_id: int,
                    j: Optional[int] = None) -> bool:
        """Send one usable piece; mirrors ``Simulation.transfer_plain``.

        ``j``, when given, is the target's index in the current turn's
        needy pool (the caller drew it), making pool repair O(1).

        Callers always gate on ``budget.can_send()`` immediately
        before calling (the object strategies do the same), so the
        budget check is not repeated here.
        """
        ts = self.members.get(target_id)
        if ts is None or self.seeder[ts] or self.cnt[ts] == self.n_pieces:
            return False
        uid = self.ids[u]
        if target_id == uid:
            return False
        cand = self.usable[u] & ~self.held[ts]
        piece = self._choose_piece(cand)
        if piece is None:
            return False
        # budget.consume(), inlined: the caller's can_send() gate
        # already established one whole credit.
        b = self.budgets[u]
        b._credits_num -= b._den
        b.total_consumed += 1
        self.up[u] += 1
        from_seeder = self.seeder[u]
        if not from_seeder:
            self.rep[uid] += 1.0
        if self._use_rmat:
            self._Rf[ts * self.n_slots + u] += 1
        elif self._need_rcv:
            d = self.rcv_d[ts]
            nv = d.get(uid, 0) + 1
            d[uid] = nv
            if self._is_rec:
                if nv > self.upl_d[ts].get(uid, 0):
                    self.cred[ts].add(uid)
                du = self.upl_d[u]
                nu = du.get(target_id, 0) + 1
                du[target_id] = nu
                if nu >= self.rcv_d[u].get(target_id, 0):
                    self.cred[u].discard(target_id)
        if self._need_dev:
            # FairTorrent deficit = sent - received, both directions.
            ns = self.n_slots
            df = self._Df
            df[u * ns + ts] += 1
            df[ts * ns + u] -= 1
        if self._track_rcv:
            d = self.this_rcv[ts]
            d[uid] = d.get(uid, 0) + 1
            self._rcv_dirty.add(ts)
        self.raw[ts] += 1
        self.down[ts] += 1
        # _add_usable, inlined.
        bit = 1 << piece
        self.usable[ts] |= bit
        self.held[ts] |= bit
        cnt = self.cnt[ts] + 1
        self.cnt[ts] = cnt
        idx = ts * self._n_words + (piece >> 6)
        b = _U64_BITS[piece & 63]
        self._Wf[idx] |= b
        self._UWf[idx] |= b
        self._avail_add(piece)
        # record_transfer, batched (flushed before every sample).
        self._c_tot += 1
        if not from_seeder:
            self._c_peer += 1
            if self.free[ts]:
                self._c_fr += 1
        # _piece_gained, inlined.
        if self.boot[ts] is None:
            self.boot[ts] = self.now
            self.nboot += 1
        if cnt == self.n_pieces and self.comp[ts] is None:
            self.comp[ts] = self.now
            self.ncomp += 1
            self._mark_done(ts)
        # Repair the turn's needy pool: only the target changed state.
        # Post-send interest is the pre-send candidate mask minus the
        # piece just delivered, so the target leaves iff it was the
        # last candidate.
        turn = self._turn
        if turn is not None and turn.uslot == u:
            needy = turn.needy
            if needy is not None and cand == bit:
                if j is None:
                    j = bisect_left(needy, target_id)
                    if j < len(needy) and needy[j] == target_id:
                        needy.pop(j)
                else:
                    needy.pop(j)
        return True

    # ------------------------------------------------------------------
    # T-Chain mechanics (mirror the runner's tchain_* family)
    # ------------------------------------------------------------------
    def _blacklisted(self, ts: int) -> bool:
        if len(self.pend[ts]) >= self._max_pending:
            return True
        return self.poldest[ts] <= self.round_index - self._patience

    def _add_pending(self, ts: int, piece: int, uploader_id: int,
                     designated: Optional[int]) -> None:
        pd = self.pend[ts]
        if not pd:
            self._pend_nonempty += 1
        created = self.round_index
        pd[piece] = (uploader_id, designated, created)
        self.held[ts] |= 1 << piece
        self._Wf[ts * self._n_words + (piece >> 6)] |= _U64_BITS[piece & 63]
        self.pcnt_np[ts] += 1
        if created < self.poldest[ts]:
            self.poldest[ts] = created
            self.poldest_np[ts] = created

    def _pop_pending(self, s: int, piece: int) -> Tuple[int, Optional[int], int]:
        pd = self.pend[s]
        entry = pd.pop(piece)
        if not pd:
            self._pend_nonempty -= 1
        self.pcnt_np[s] -= 1
        if entry[2] == self.poldest[s]:
            oldest = min((e[2] for e in pd.values()), default=_NO_PENDING)
            self.poldest[s] = oldest
            self.poldest_np[s] = oldest
        return entry

    def _drop_pending(self, s: int, piece: int) -> None:
        self._pop_pending(s, piece)
        self.held[s] &= ~(1 << piece)
        self._Wf[s * self._n_words + (piece >> 6)] &= ~_U64_BITS[piece & 63]

    def _unlock(self, s: int, piece: int) -> None:
        """Key released: pending piece becomes usable (runner._unlock)."""
        self._pop_pending(s, piece)
        # The held bit (and its W mirror) stays set; only usable gains.
        self.usable[s] |= 1 << piece
        self._UWf[s * self._n_words + (piece >> 6)] |= _U64_BITS[piece & 63]
        self.cnt[s] += 1
        self._avail_add(piece)
        self.down[s] += 1
        if self.free[s]:
            self._c_fr += 1  # record_unlock, batched
        self._piece_gained(s)

    def _choose_designated(self, u: int, target_id: int,
                           piece: int) -> Optional[int]:
        ids, slots, vids, vslots = self._view(self.ids[u])
        n = len(vids)
        if n == 0:
            return None
        if n > _SMALL_VIEW:
            pb = _U64_BITS[piece & 63]
            ok = (self.W[slots, piece >> 6] & pb) == 0
            options = ids[ok]
            options = options[options != target_id]
            m = options.size
            if m == 0:
                return None
            return int(options[_randbelow(self._tchain_grb, m)])
        held = self.held
        options_l = [p for p, t in zip(vids, vslots)
                     if not (held[t] >> piece) & 1 and p != target_id]
        m = len(options_l)
        if m == 0:
            return None
        return options_l[_randbelow(self._tchain_grb, m)]

    def _deliver_encrypted(self, u: int, ts: int, piece: int,
                           from_seeder: bool) -> None:
        """Shared body of runner._tchain_deliver / _forward_encrypted.

        Every caller gates on ``can_send()`` first, so the budget
        consume is inlined unchecked like ``_plain_send``'s.
        """
        b = self.budgets[u]
        b._credits_num -= b._den
        b.total_consumed += 1
        uid = self.ids[u]
        self.up[u] += 1
        if not from_seeder:
            self.rep[uid] += 1.0
        self.raw[ts] += 1
        designated: Optional[int] = None
        if not (self.usable[ts] & ~self.held[u]):
            # The sender needs nothing the target has: designate a
            # third user for indirect reciprocity.
            designated = self._choose_designated(u, self.ids[ts], piece)
        # record_transfer(usable=False), batched.
        self._c_tot += 1
        if not from_seeder:
            self._c_peer += 1
        colluding = (self._collusion and self.free[ts]
                     and designated is not None
                     and designated in self.colluders[ts])
        if colluding:
            self._add_usable(ts, piece)
            self.down[ts] += 1
            self._c_fr += 1  # record_unlock(for_freerider=True), batched
            self._piece_gained(ts)
        else:
            self._add_pending(ts, piece, uid, designated)
            if self.boot[ts] is None:
                self.boot[ts] = self.now
                self.nboot += 1

    def tchain_seed(self, u: int, target_id: int) -> bool:
        budget = self.budgets[u]
        if not budget.can_send():
            return False
        ts = self.members.get(target_id)
        if ts is None or self.seeder[ts] or self.cnt[ts] == self.n_pieces:
            return False
        if target_id == self.ids[u]:
            return False
        if self._blacklisted(ts):
            return False
        piece = self._choose_piece(self.usable[u] & ~self.held[ts])
        if piece is None:
            return False
        self._deliver_encrypted(u, ts, piece, from_seeder=self.seeder[u])
        return True

    def tchain_elig(self, u: int) -> List[int]:
        """Seeding-phase candidates: needy, non-blacklisted view members.

        Identical to the discovery inside ``runner.tchain_seed_random``;
        the T-Chain kernel computes it once per turn and repairs the
        single seeded target after each successful seed (a seed mutates
        no other peer's eligibility).
        """
        ids, slots, vids, vslots = self._view(self.ids[u])
        n = len(vids)
        if n == 0:
            return []
        if n > _SMALL_VIEW:
            sel = self._feas_sel(u, slots, n)
            sel &= self.pcnt_np[slots] < self._max_pending
            sel &= self.poldest_np[slots] > (self.round_index - self._patience)
            return ids[sel].tolist()
        uw = self.usable[u]
        held = self.held
        pend = self.pend
        maxp = self._max_pending
        horizon = self.round_index - self._patience
        poldest = self.poldest
        return [p for p, t in zip(vids, vslots)
                if held[t] & uw != uw and len(pend[t]) < maxp
                and poldest[t] > horizon]

    def tchain_seed_random(self, u: int, rng: random.Random) -> bool:
        """One encrypted seed to a shuffled needy candidate (uncached
        mirror of ``runner.tchain_seed_random``; fulfil path 3 uses the
        same shape inline)."""
        candidates = self.tchain_elig(u)
        _shuffle(candidates, rng.getrandbits)
        for target_id in candidates:
            if self.tchain_seed(u, target_id):
                return True
        return False

    def _forward_target(self, u: int, uploader_id: int,
                        designated: Optional[int],
                        piece: int) -> Optional[int]:
        if designated is not None:
            ds = self.members.get(designated)
            if (ds is not None and not (self.held[ds] >> piece) & 1
                    and not self._blacklisted(ds)):
                return designated
        ids, slots, vids, vslots = self._view(self.ids[u])
        n = len(vids)
        if n == 0:
            return None
        if n > _SMALL_VIEW:
            pb = _U64_BITS[piece & 63]
            ok = (self.W[slots, piece >> 6] & pb) == 0
            ok &= self.pcnt_np[slots] < self._max_pending
            ok &= self.poldest_np[slots] > (self.round_index - self._patience)
            options = ids[ok]
            options = options[options != uploader_id]
            m = options.size
            if m == 0:
                return None
            return int(options[_randbelow(self._tchain_grb, m)])
        held = self.held
        pend = self.pend
        maxp = self._max_pending
        horizon = self.round_index - self._patience
        poldest = self.poldest
        options_l = [p for p, t in zip(vids, vslots)
                     if not (held[t] >> piece) & 1
                     and len(pend[t]) < maxp and poldest[t] > horizon
                     and p != uploader_id]
        m = len(options_l)
        if m == 0:
            return None
        return options_l[_randbelow(self._tchain_grb, m)]

    def tchain_fulfill(self, u: int, piece: int) -> bool:
        """Reciprocate for one pending piece (runner.tchain_fulfill)."""
        entry = self.pend[u].get(piece)
        if entry is None:
            return False
        budget = self.budgets[u]
        if not budget.can_send():
            return False
        uploader_id, designated, _created = entry
        us = self.members.get(uploader_id)
        if us is None:
            # Key holder left: the encrypted data is worthless.
            self._drop_pending(u, piece)
            return False

        # (1) Direct reciprocity.
        if (self.cnt[us] < self.n_pieces
                and self.usable[u] & ~self.held[us]):
            if self._plain_send(u, uploader_id):
                self._unlock(u, piece)
                return True
            if not budget.can_send():
                return False

        # (2) Forward the received piece (indirect reciprocity).
        forward_id = self._forward_target(u, uploader_id, designated, piece)
        if forward_id is not None:
            self._deliver_encrypted(u, self.members[forward_id], piece,
                                    from_seeder=False)
            self._unlock(u, piece)
            return True

        # (3) Generalised indirect reciprocity: any other piece,
        # still encrypted, to any needy non-uploader neighbor.
        if self.cnt[u] > 0:
            candidates = [pid for pid in self._needy_list(u)
                          if pid != uploader_id]
            _shuffle(candidates, self._tchain_grb)
            for pid in candidates:
                if self.tchain_seed(u, pid):
                    self._unlock(u, piece)
                    return True
        return False

    # ------------------------------------------------------------------
    # Round phases (mirror Simulation._on_round)
    # ------------------------------------------------------------------
    def _on_arrival(self, index: int) -> None:
        self._add_member(self._n_seeders + index)
        self._arrived += 1

    def _on_round(self) -> None:
        self.round_index += 1
        active = list(self.active)
        _shuffle(active, self._order_rng.getrandbits)
        members = self.members
        budgets = self.budgets
        kern = self.kern
        srng = self.srng
        for pid in active:
            s = members.get(pid)
            if s is None:
                continue  # departed earlier this round (unreachable here)
            budgets[s].new_round()
            kern[s](self, s, srng[s])
            self._turn = None
        if self._track_rcv:
            self._roll_receipts()
        self._process_departures()
        self._process_churn()
        self._process_whitewashing()
        if self.round_index % self.sample_interval == 0:
            self._sample()
        if self._all_done() or self.round_index >= self.max_rounds:
            self._finished = True

    def _roll_receipts(self) -> None:
        """Mirror of ``peer.end_round()`` over every active peer."""
        dirty = self._rcv_dirty
        for s in self._rcv_last_nonempty - dirty:
            self.last_rcv[s] = {}
        for s in dirty:
            self.last_rcv[s] = self.this_rcv[s]
            self.this_rcv[s] = {}
        self._rcv_last_nonempty = dirty
        self._rcv_dirty = set()

    def _drop_orphaned(self, departed_id: int) -> None:
        """Keys held by a departed uploader are lost: drop those pieces."""
        if self._pend_nonempty == 0:
            return
        for pid, s in list(self.members.items()):
            pd = self.pend[s]
            if not pd:
                continue
            orphaned = [piece for piece, e in pd.items()
                        if e[0] == departed_id]
            for piece in orphaned:
                self._drop_pending(s, piece)
            if orphaned:
                self.collector.record_orphaned_obligations(len(orphaned))

    def _process_departures(self) -> None:
        linger = self.config.seed_linger_rate
        for pid in list(self.members):
            s = self.members[pid]
            if self.seeder[s] or self.cnt[s] < self.n_pieces:
                continue
            if self.comp[s] is None:
                self.comp[s] = self.now
                self.ncomp += 1
                self._mark_done(s)
            if linger is not None and self._linger_rng.random() >= linger:
                continue  # stays one more round as a lingering seed
            self.departed_f[s] = True
            self._remove_member(pid)
            self._drop_orphaned(pid)

    def _process_churn(self) -> None:
        rate = self.config.abort_rate
        if rate <= 0.0:
            return
        for pid in list(self.members):
            s = self.members[pid]
            if self.seeder[s] or self.cnt[s] == self.n_pieces:
                continue
            if self._churn_rng.random() < rate:
                self.departed_f[s] = True
                self._mark_done(s)
                self._remove_member(pid)
                self._drop_orphaned(pid)

    def _process_whitewashing(self) -> None:
        interval = self.attack.whitewash_interval
        if interval is None:
            return
        reset_any = False
        r = self.round_index
        for pid in list(self.members):
            s = self.members[pid]
            if self.free[s] and self.wwint[s] and r % self.wwint[s] == 0:
                self._reset_identity(s)
                reset_any = True
        if reset_any:
            self._sync_coalition()

    def _all_done(self) -> bool:
        return self._arrived >= self.config.n_users and self.unfinished == 0

    def _flush_counters(self) -> None:
        if self._c_tot or self._c_fr:
            self.collector.add_transfer_counts(self._c_tot, self._c_peer,
                                               self._c_fr)
            self._c_tot = self._c_peer = self._c_fr = 0

    def _sample(self) -> None:
        self._flush_counters()
        ud_ratios: List[float] = []
        du_ratios: List[float] = []
        count = 0
        members = self.members
        for pid in self.active:
            s = members[pid]
            if self.seeder[s]:
                continue
            count += 1
            if self.free[s]:
                continue
            down = self.down[s]
            upl = self.up[s]
            if down > 0:
                ud_ratios.append(upl / down)
            if upl > 0:
                du_ratios.append(down / upl)
        fairness_ud = (sum(ud_ratios) / len(ud_ratios)
                       if ud_ratios else None)
        fairness_du = (sum(du_ratios) / len(du_ratios)
                       if du_ratios else None)
        self.collector.sample(
            time=self.now,
            active_peers=count,
            arrived=self._arrived,
            population=self.config.n_users,
            bootstrapped=self.nboot,
            completed=self.ncomp,
            fairness_ud=fairness_ud,
            fairness_du=fairness_du,
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _summaries(self) -> List[PeerSummary]:
        return [PeerSummary(
            peer_id=self.ids[s],
            lineage_id=self.lineage[s],
            capacity=self.caps[s],
            is_freerider=self.free[s],
            arrival_time=self.arrival[s],
            bootstrap_time=self.boot[s],
            completion_time=self.comp[s],
            uploaded=self.up[s],
            downloaded=self.down[s],
        ) for s in range(self._n_seeders, self.n_slots)]

    def run(self):
        """Execute the run to completion; returns a SimulationResult."""
        from repro.sim.runner import SimulationResult

        arrivals = self._arrivals
        n_arrivals = len(arrivals)
        i = 0
        while not self._finished:
            t = float(self.round_index + 1)
            while i < n_arrivals and arrivals[i] <= t:
                self._on_arrival(i)
                i += 1
            self.now = t
            self._on_round()
        self._flush_counters()
        raw = sum(self.raw[s] for s in range(self._n_seeders, self.n_slots))
        metrics = self.collector.finalize(self._summaries(),
                                          self.round_index, raw)
        return SimulationResult(config=self.config, metrics=metrics)
