"""Deterministic named random streams for the simulator.

Every stochastic subsystem (arrivals, piece selection, each strategy,
each attack) draws from its own named stream derived from the root
seed. This keeps runs reproducible and — crucially for experiments —
keeps one subsystem's draw count from perturbing another's sequence
when configurations change.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Sequence, TypeVar

from repro.errors import ConfigurationError

__all__ = ["RandomStreams", "weighted_choice"]

T = TypeVar("T")


class RandomStreams:
    """A family of independent :class:`random.Random` streams.

    Each stream is seeded from ``sha256(root_seed || name)``, so the
    mapping from name to sequence is stable across runs and across
    Python versions.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise ConfigurationError("seed must be an integer")
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self._seed}:{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per peer."""
        digest = hashlib.sha256(f"{self._seed}:spawn:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """Pick one item with probability proportional to its weight.

    Unlike :func:`random.choices` this validates the weights and
    raises :class:`ConfigurationError` on an all-zero or negative
    weight vector instead of failing obscurely.
    """
    if len(items) != len(weights):
        raise ConfigurationError("items and weights must have equal length")
    if not items:
        raise ConfigurationError("cannot choose from an empty sequence")
    total = 0.0
    for w in weights:
        if w < 0:
            raise ConfigurationError("weights must be non-negative")
        total += w
    if total <= 0.0:
        raise ConfigurationError("at least one weight must be positive")
    pick = rng.random() * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if pick < acc:
            return item
    # Float rounding can push ``pick`` to (or past) the accumulated
    # total — e.g. subnormal weights — so the scan may fall through.
    # The fallback must still honour the contract: never return a
    # zero-weight item.
    for item, w in zip(reversed(items), reversed(weights)):
        if w > 0:
            return item
    return items[-1]
