"""Swarm structure: membership, neighbor views, reputations, identities.

The swarm owns everything peers share: the active-membership registry,
per-piece availability, the bounded random neighbor views through which
altruistic/optimistic uploads are routed, the global reputation board
(the "everyone knows everyone's uploads" assumption of Section V-A),
and identity management — which is what whitewashing attacks abuse.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, List, Set

from repro.errors import SimulationError
from repro.sim.peer import Peer
from repro.sim.pieces import AvailabilityMap

__all__ = ["ReputationBoard", "Swarm"]


class ReputationBoard:
    """Global reputation scores: total pieces (claimed) uploaded.

    The paper's simulation assumes perfect global knowledge: "all users
    know the amount of data that each user uploads to all other users;
    users' reputations are proportional to this amount of data". The
    board accepts *reports*, which is exactly the surface the false-
    praise collusion attack exploits — fake reports are
    indistinguishable from real ones.
    """

    def __init__(self) -> None:
        self._scores: Dict[int, float] = defaultdict(float)
        self.fake_reported = 0.0

    def report(self, uploader_id: int, amount: float = 1.0,
               genuine: bool = True) -> None:
        """Credit ``uploader_id`` with ``amount`` uploaded pieces."""
        if amount < 0:
            raise SimulationError("reputation reports must be non-negative")
        self._scores[uploader_id] += amount
        if not genuine:
            self.fake_reported += amount

    def score(self, peer_id: int) -> float:
        return self._scores.get(peer_id, 0.0)

    def forget(self, peer_id: int) -> None:
        """Drop a retired identity's score (whitewashing resets to zero)."""
        self._scores.pop(peer_id, None)


class Swarm:
    """Membership, views, availability, and identity registry."""

    def __init__(self, n_pieces: int, neighbor_count: int,
                 rng: random.Random) -> None:
        self.n_pieces = n_pieces
        self.neighbor_count = neighbor_count
        self._rng = rng
        #: Optional precomputed adjacency (structured topologies).
        #: Ids absent from the map fall back to random sampling —
        #: notably fresh identities created by whitewashing.
        self._static_views: Dict[int, Set[int]] = {}
        self.peers: Dict[int, Peer] = {}
        self.departed: Dict[int, Peer] = {}
        self.availability = AvailabilityMap(n_pieces)
        self.reputation = ReputationBoard()
        self._views: Dict[int, Set[int]] = defaultdict(set)
        self._next_id = 0
        self.seeder_ids: Set[int] = set()

    # ------------------------------------------------------------------
    # Identity allocation
    # ------------------------------------------------------------------
    def allocate_id(self) -> int:
        pid = self._next_id
        self._next_id += 1
        return pid

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_peer(self, peer: Peer) -> None:
        """Register an arriving peer and wire up its neighbor view."""
        if peer.peer_id in self.peers:
            raise SimulationError(f"duplicate peer id {peer.peer_id}")
        self.peers[peer.peer_id] = peer
        if peer.is_seeder:
            self.seeder_ids.add(peer.peer_id)
        self.availability.add_peer(peer.pieces)
        self._build_view(peer)

    def set_static_views(self, views: Dict[int, Set[int]]) -> None:
        """Install a precomputed adjacency (ring/small-world topologies)."""
        self._static_views = dict(views)

    def _build_view(self, peer: Peer) -> None:
        others = [pid for pid in self.peers if pid != peer.peer_id]
        if peer.large_view:
            chosen = others
        elif peer.peer_id in self._static_views:
            wanted = self._static_views[peer.peer_id]
            chosen = [pid for pid in others if pid in wanted]
        else:
            k = min(self.neighbor_count, len(others))
            chosen = self._rng.sample(others, k) if k else []
        for pid in chosen:
            self._connect(peer.peer_id, pid)
        # Existing large-view attackers connect to every newcomer too.
        for pid, other in self.peers.items():
            if other.large_view and pid != peer.peer_id:
                self._connect(peer.peer_id, pid)

    def _connect(self, a: int, b: int) -> None:
        self._views[a].add(b)
        self._views[b].add(a)

    def remove_peer(self, peer_id: int) -> Peer:
        """Deregister a departing (or whitewashing) peer."""
        peer = self.peers.pop(peer_id, None)
        if peer is None:
            raise SimulationError(f"unknown peer id {peer_id}")
        self.availability.remove_peer(peer.pieces)
        for neighbor in self._views.pop(peer_id, set()):
            self._views[neighbor].discard(peer_id)
        self.seeder_ids.discard(peer_id)
        self.departed[peer_id] = peer
        return peer

    def neighbors(self, peer_id: int) -> List[int]:
        """Active neighbor ids of ``peer_id`` (sorted for determinism)."""
        return sorted(pid for pid in self._views.get(peer_id, ())
                      if pid in self.peers)

    def peer(self, peer_id: int) -> Peer:
        try:
            return self.peers[peer_id]
        except KeyError:
            raise SimulationError(f"unknown or departed peer {peer_id}") from None

    @property
    def active_ids(self) -> List[int]:
        return sorted(self.peers)

    def active_non_seeders(self) -> List[Peer]:
        return [p for pid, p in sorted(self.peers.items()) if not p.is_seeder]

    # ------------------------------------------------------------------
    # Whitewashing support
    # ------------------------------------------------------------------
    def reset_identity(self, peer: Peer) -> int:
        """Give ``peer`` a fresh identity (the whitewashing attack).

        The peer keeps its pieces and its own ledgers, but every other
        peer's ledgers now refer to a dead id: deficits, tit-for-tat
        history, and reputation all restart from zero. Returns the new
        peer id.
        """
        old_id = peer.peer_id
        if old_id not in self.peers:
            raise SimulationError(f"peer {old_id} is not active")
        # Detach the old identity (keep availability: same pieces return
        # immediately under the new id).
        del self.peers[old_id]
        for neighbor in self._views.pop(old_id, set()):
            self._views[neighbor].discard(old_id)
        self.reputation.forget(old_id)

        new_id = self.allocate_id()
        peer.peer_id = new_id
        self.peers[new_id] = peer
        self._build_view(peer)
        return new_id

    # ------------------------------------------------------------------
    # Queries used by strategies
    # ------------------------------------------------------------------
    def needy_neighbors(self, uploader: Peer,
                        require_providable: bool = True) -> List[int]:
        """Active neighbors that still need data.

        With ``require_providable`` (default) only neighbors lacking at
        least one of the uploader's *usable* pieces are returned —
        the feasibility question of Section IV-A2.
        """
        result: List[int] = []
        for pid in self.neighbors(uploader.peer_id):
            target = self.peers[pid]
            if target.is_seeder or target.complete:
                continue
            if require_providable:
                if target.needs_any_from(uploader):
                    result.append(pid)
            else:
                result.append(pid)
        return result

    def piece_candidates(self, uploader: Peer, target: Peer) -> List[int]:
        """Usable pieces of ``uploader`` that ``target`` needs."""
        return sorted(target.needed_pieces_from(uploader))
