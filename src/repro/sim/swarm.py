"""Swarm structure: membership, neighbor views, reputations, identities.

The swarm owns everything peers share: the active-membership registry,
per-piece availability, the bounded random neighbor views through which
altruistic/optimistic uploads are routed, the global reputation board
(the "everyone knows everyone's uploads" assumption of Section V-A),
and identity management — which is what whitewashing attacks abuse.

Hot-path caching
----------------
The round loop asks the same questions thousands of times per round:
"who are my active neighbors, sorted", "which of them still need data
I can provide", "who is active right now". All three used to re-sort
or re-filter from scratch on every call. They are now maintained
incrementally:

* neighbor views keep a sorted active-id list per peer, updated by
  bisection on connect/disconnect/membership change;
* the sorted active-id list and the sorted non-seeder list are kept
  alongside the registry;
* needy-neighbor queries are memoised per uploader. Because a peer's
  held-or-pending set only ever *grows* during normal transfers, a
  piece (or pending-piece) gain can only remove the gaining peer from
  other uploaders' needy lists and only grow the gainer's own list —
  so :meth:`on_piece_gained` / :meth:`on_pending_added` repair the
  cached lists in place instead of discarding them. The rare shrink
  paths (pending drops, membership or view changes) clear the whole
  cache via :meth:`note_state_changed` or the membership methods.

All cached views return exactly what the eager recomputation returned
(sorted ascending), so a fixed seed reproduces the same run — the
seed-pinned equivalence tests in ``tests/integration`` hold the code
to that.
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from collections import defaultdict
from typing import Dict, List, Optional, Set

from repro.errors import SimulationError
from repro.sim.peer import Peer
from repro.sim.pieces import AvailabilityMap

__all__ = ["ReputationBoard", "Swarm"]


class ReputationBoard:
    """Global reputation scores: total pieces (claimed) uploaded.

    The paper's simulation assumes perfect global knowledge: "all users
    know the amount of data that each user uploads to all other users;
    users' reputations are proportional to this amount of data". The
    board accepts *reports*, which is exactly the surface the false-
    praise collusion attack exploits — fake reports are
    indistinguishable from real ones.
    """

    def __init__(self) -> None:
        self._scores: Dict[int, float] = defaultdict(float)
        self.fake_reported = 0.0

    def report(self, uploader_id: int, amount: float = 1.0,
               genuine: bool = True) -> None:
        """Credit ``uploader_id`` with ``amount`` uploaded pieces."""
        if amount < 0:
            raise SimulationError("reputation reports must be non-negative")
        self._scores[uploader_id] += amount
        if not genuine:
            self.fake_reported += amount

    def score(self, peer_id: int) -> float:
        return self._scores.get(peer_id, 0.0)

    def forget(self, peer_id: int) -> None:
        """Drop a retired identity's score (whitewashing resets to zero)."""
        self._scores.pop(peer_id, None)

    def snapshot(self) -> Dict[int, float]:
        """A plain copy of all scores (guards / forensics bundles).

        A ``dict()`` copy, not the defaultdict itself: readers probing
        arbitrary ids must not grow the board as a side effect.
        """
        return dict(self._scores)


class Swarm:
    """Membership, views, availability, and identity registry."""

    def __init__(self, n_pieces: int, neighbor_count: int,
                 rng: random.Random) -> None:
        self.n_pieces = n_pieces
        #: All-ones piece mask: a peer whose usable mask equals this is
        #: done (seeders included — they are constructed full), which
        #: is the single-compare form of ``is_seeder or complete``.
        self._full_mask = (1 << n_pieces) - 1
        self.neighbor_count = neighbor_count
        self._rng = rng
        #: Optional precomputed adjacency (structured topologies).
        #: Ids absent from the map fall back to random sampling —
        #: notably fresh identities created by whitewashing.
        self._static_views: Dict[int, Set[int]] = {}
        self.peers: Dict[int, Peer] = {}
        self.departed: Dict[int, Peer] = {}
        self.availability = AvailabilityMap(n_pieces)
        self.reputation = ReputationBoard()
        self._views: Dict[int, Set[int]] = defaultdict(set)
        #: Sorted mirror of each view (active ids only), maintained by
        #: bisection so ``neighbors()`` never re-sorts.
        self._sorted_views: Dict[int, List[int]] = defaultdict(list)
        #: Sorted active peer ids, maintained by bisection.
        self._active_sorted: List[int] = []
        #: Lazily rebuilt sorted list of active non-seeder peers.
        self._non_seeders: Optional[List[Peer]] = None
        #: Swarm-wide state version: bumped on any piece gain, pending
        #: change, or membership change (observability / tests).
        self._state_version = 0
        #: uploader id -> sorted needy neighbor ids (providable only).
        #: Maintained incrementally; see the module docstring.
        self._needy_cache: Dict[int, List[int]] = {}
        self._next_id = 0
        self.seeder_ids: Set[int] = set()

    # ------------------------------------------------------------------
    # Identity allocation
    # ------------------------------------------------------------------
    def allocate_id(self) -> int:
        pid = self._next_id
        self._next_id += 1
        return pid

    # ------------------------------------------------------------------
    # Cache invalidation
    # ------------------------------------------------------------------
    @property
    def state_version(self) -> int:
        """Monotonic counter of needy-relevant state changes."""
        return self._state_version

    def note_state_changed(self) -> None:
        """Invalidate every needy-neighbor cache (conservative path).

        Required after any mutation that can *shrink* a peer's
        held-or-pending set — dropping a pending piece re-opens needs,
        which may have to re-enter needy lists the incremental repair
        cannot grow. Monotone gains should use :meth:`on_piece_gained`
        or :meth:`on_pending_added` instead.
        """
        self._state_version += 1
        self._needy_cache.clear()

    def on_piece_gained(self, gainer: Peer, piece: int) -> None:
        """Register one new usable replica held by ``gainer``.

        Repairs the needy caches precisely: the gainer may now provide
        more, so its own uploader entry is discarded; and the gainer
        needs strictly less, so it is retested against (and possibly
        removed from) each neighbor's cached list — a gain can never
        *add* a peer to someone else's needy list.
        """
        self.availability.add_piece(piece)
        self._state_version += 1
        self._needy_cache.pop(gainer.peer_id, None)
        self._retest_needy_target(gainer)

    def on_pending_added(self, gainer: Peer) -> None:
        """An encrypted piece became pending at ``gainer``.

        Pending pieces are not sharable, so the gainer's own uploader
        entry stays valid; only its neediness toward neighbors shrinks.
        """
        self._state_version += 1
        self._retest_needy_target(gainer)

    def _retest_needy_target(self, target: Peer) -> None:
        """Drop ``target`` from cached needy lists it no longer belongs to.

        Sound only after a monotone gain: the predicate "target needs
        something the uploader can provide" can only have flipped from
        True to False, so membership is rechecked and never inserted.
        """
        tid = target.peer_id
        held = target.pieces.mask | target.pending_mask
        gone = target.pieces.mask == self._full_mask
        cache_get = self._needy_cache.get
        peers = self.peers
        for uploader_id in self._views.get(tid, ()):
            cached = cache_get(uploader_id)
            if cached is None:
                continue
            index = bisect_left(cached, tid)
            if index < len(cached) and cached[index] == tid:
                if gone or not (peers[uploader_id].pieces.mask & ~held):
                    cached.pop(index)

    def _membership_changed(self) -> None:
        self._state_version += 1
        self._needy_cache.clear()
        self._non_seeders = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_peer(self, peer: Peer) -> None:
        """Register an arriving peer and wire up its neighbor view."""
        if peer.peer_id in self.peers:
            raise SimulationError(f"duplicate peer id {peer.peer_id}")
        self.peers[peer.peer_id] = peer
        insort(self._active_sorted, peer.peer_id)
        if peer.is_seeder:
            self.seeder_ids.add(peer.peer_id)
        self.availability.add_peer(peer.pieces)
        self._build_view(peer)
        self._membership_changed()

    def set_static_views(self, views: Dict[int, Set[int]]) -> None:
        """Install a precomputed adjacency (ring/small-world topologies)."""
        self._static_views = dict(views)

    def _build_view(self, peer: Peer) -> None:
        others = [pid for pid in self.peers if pid != peer.peer_id]
        if peer.large_view:
            chosen = others
        elif peer.peer_id in self._static_views:
            wanted = self._static_views[peer.peer_id]
            chosen = [pid for pid in others if pid in wanted]
        else:
            k = min(self.neighbor_count, len(others))
            chosen = self._rng.sample(others, k) if k else []
        for pid in chosen:
            self._connect(peer.peer_id, pid)
        # Existing large-view attackers connect to every newcomer too.
        for pid, other in self.peers.items():
            if other.large_view and pid != peer.peer_id:
                self._connect(peer.peer_id, pid)

    def _connect(self, a: int, b: int) -> None:
        if b not in self._views[a]:
            self._views[a].add(b)
            insort(self._sorted_views[a], b)
        if a not in self._views[b]:
            self._views[b].add(a)
            insort(self._sorted_views[b], a)

    def _disconnect_all(self, peer_id: int) -> None:
        """Drop ``peer_id`` from every neighbor's view and its own."""
        for neighbor in self._views.pop(peer_id, set()):
            self._views[neighbor].discard(peer_id)
            ordered = self._sorted_views[neighbor]
            index = bisect_left(ordered, peer_id)
            if index < len(ordered) and ordered[index] == peer_id:
                ordered.pop(index)
        self._sorted_views.pop(peer_id, None)

    def remove_peer(self, peer_id: int) -> Peer:
        """Deregister a departing (or whitewashing) peer."""
        peer = self.peers.pop(peer_id, None)
        if peer is None:
            raise SimulationError(f"unknown peer id {peer_id}")
        self._active_sorted.pop(bisect_left(self._active_sorted, peer_id))
        self.availability.remove_peer(peer.pieces)
        self._disconnect_all(peer_id)
        self.seeder_ids.discard(peer_id)
        self.departed[peer_id] = peer
        self._membership_changed()
        return peer

    def neighbors(self, peer_id: int) -> List[int]:
        """Active neighbor ids of ``peer_id`` (sorted for determinism)."""
        return list(self._sorted_views.get(peer_id, ()))

    def peer(self, peer_id: int) -> Peer:
        try:
            return self.peers[peer_id]
        except KeyError:
            raise SimulationError(f"unknown or departed peer {peer_id}") from None

    @property
    def active_ids(self) -> List[int]:
        return list(self._active_sorted)

    def active_non_seeders(self) -> List[Peer]:
        if self._non_seeders is None:
            self._non_seeders = [self.peers[pid] for pid in self._active_sorted
                                 if not self.peers[pid].is_seeder]
        return self._non_seeders

    # ------------------------------------------------------------------
    # Whitewashing support
    # ------------------------------------------------------------------
    def reset_identity(self, peer: Peer) -> int:
        """Give ``peer`` a fresh identity (the whitewashing attack).

        The peer keeps its pieces and its own ledgers, but every other
        peer's ledgers now refer to a dead id: deficits, tit-for-tat
        history, and reputation all restart from zero. Returns the new
        peer id.
        """
        old_id = peer.peer_id
        if old_id not in self.peers:
            raise SimulationError(f"peer {old_id} is not active")
        # Detach the old identity (keep availability: same pieces return
        # immediately under the new id).
        del self.peers[old_id]
        self._active_sorted.pop(bisect_left(self._active_sorted, old_id))
        self._disconnect_all(old_id)
        self.reputation.forget(old_id)

        new_id = self.allocate_id()
        peer.peer_id = new_id
        self.peers[new_id] = peer
        insort(self._active_sorted, new_id)
        self._build_view(peer)
        self._membership_changed()
        return new_id

    # ------------------------------------------------------------------
    # Queries used by strategies
    # ------------------------------------------------------------------
    def needy_neighbors(self, uploader: Peer,
                        require_providable: bool = True) -> List[int]:
        """Active neighbors that still need data.

        With ``require_providable`` (default) only neighbors lacking at
        least one of the uploader's *usable* pieces are returned —
        the feasibility question of Section IV-A2. That variant is
        memoised per uploader and repaired incrementally on piece
        gains; callers receive a fresh copy each time.
        """
        if require_providable:
            cached = self._needy_cache.get(uploader.peer_id)
            if cached is not None:
                return list(cached)
        result: List[int] = []
        peers = self.peers
        uploader_mask = uploader.pieces.mask
        full = self._full_mask
        for pid in self._sorted_views.get(uploader.peer_id, ()):
            target = peers[pid]
            target_mask = target.pieces.mask
            if target_mask == full:  # complete (seeders are always full)
                continue
            if require_providable:
                if uploader_mask & ~(target_mask | target.pending_mask):
                    result.append(pid)
            else:
                result.append(pid)
        if require_providable:
            self._needy_cache[uploader.peer_id] = result
        return list(result)

    def piece_candidates(self, uploader: Peer, target: Peer) -> List[int]:
        """Usable pieces of ``uploader`` that ``target`` needs."""
        return sorted(target.needed_pieces_from(uploader))

    # ------------------------------------------------------------------
    # Read-only observability views
    # ------------------------------------------------------------------
    def availability_counts(self) -> List[int]:
        """Replica count of every piece among active peers.

        A plain snapshot of the rarest-first availability map, indexed
        by piece id — the input to the availability-entropy gauge of
        :mod:`repro.obs` and to the full-mode recount guard. Strictly
        read-only.
        """
        count = self.availability.count
        return [count(piece) for piece in range(self.n_pieces)]
