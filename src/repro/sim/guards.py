"""Runtime invariant guards, progress watchdog, and crash forensics.

A silent conservation bug — pieces minted from nowhere, ledgers that
stop summing to zero, a reputation score drifting to NaN — surfaces
today only as a wrong Figure 4-6 number. This module watches a
*running* :class:`repro.sim.runner.Simulation` for exactly that class
of corruption, in the spirit of the accounting audits argued for by
Nielson et al. (arXiv:1108.2716) and Nasrulin et al. (arXiv:2308.07148):

* an :class:`InvariantViolation` registry of read-only checks — piece
  conservation, pairwise-ledger balance, reputation bounds, engine
  clock monotonicity, T-Chain obligation consistency, and NaN/negative
  guards on the metric accumulators;
* a progress watchdog that detects livelocked swarms (no piece
  completed across ``watchdog_window`` rounds while downloaders
  remain) and either raises :class:`repro.errors.SimulationStalled`
  or gracefully finalizes the run with metrics flagged ``degraded``;
* a crash-bundle writer (:mod:`repro.guards.bundle`) invoked on any
  violation, stall, or unhandled runner exception, so failures come
  with self-contained forensics instead of a stack trace alone.

Guards are **observation-only**: they consume no randomness and
mutate nothing the simulation reads, so a run with guards enabled is
byte-identical (same metrics digest) to the same seed with guards off.
The seed-pinned equivalence tests hold the code to that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import (ConfigurationError, InvariantViolationError,
                          SimulationStalled)
from repro.obs.tracer import EventTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runner import Simulation

__all__ = ["GuardConfig", "InvariantViolation", "GuardRuntime",
           "GUARD_CATALOGUE"]

#: code -> (tier, one-line description). ``cheap`` checks are O(1) per
#: round (heavier ones amortised over ``check_interval``); ``full``
#: checks run every round and add the expensive recomputations.
GUARD_CATALOGUE: Dict[str, Tuple[str, str]] = {
    "clock-monotonic": (
        "cheap", "the engine clock never moves backwards or goes non-finite"),
    "metrics-sanity": (
        "cheap", "metric accumulators are non-negative, finite, and "
                 "monotone non-decreasing"),
    "piece-conservation": (
        "cheap", "every usable piece a non-seeder holds traces to a "
                 "completed transfer (len(pieces) == total_downloaded; "
                 "global sends == global receipts, Eq. 1)"),
    "ledger-balance": (
        "cheap", "pairwise upload/receipt ledgers sum to zero across the "
                 "swarm (FairTorrent deficits are a zero-sum game)"),
    "reputation-bounds": (
        "cheap", "reputation scores are finite, non-negative, and their "
                 "sum never exceeds genuine peer uploads plus fake reports"),
    "tchain-consistency": (
        "cheap", "pending masks/maps/oldest-round caches agree and never "
                 "overlap the usable piece set"),
    "availability-consistency": (
        "full", "the rarest-first availability counts equal a fresh "
                "recount over active peers' piece sets"),
    "transfer-consistency": (
        "full", "an uploader only sends pieces it actually holds "
                "(usable, or pending for T-Chain forwards)"),
}

#: Stall/violation/exception bundles smaller than this ring are
#: cheap enough to keep always; see ``GuardConfig.recent_transfers``.
_DEFAULT_RING = 64


@dataclass(frozen=True)
class GuardConfig:
    """Tunables of the invariant-guard subsystem (``off`` by default).

    Attributes
    ----------
    mode:
        ``"off"`` — no guards at all (the paper's bare simulator);
        ``"cheap"`` — O(1) checks and the watchdog every round, swarm
        scans every ``check_interval`` rounds (<5% wall-time budget);
        ``"full"`` — every check every round, plus per-transfer
        on-event checks and the availability recount.
    check_interval:
        Rounds between swarm-wide scans in ``cheap`` mode.
    watchdog_window:
        Rounds without a single completed (usable) piece gain — while
        incomplete compliant downloaders remain — before the run is
        declared stalled. Arrivals also count as progress so a slow
        Poisson trickle is not misread as a livelock.
    watchdog_action:
        ``"degrade"`` finalizes the run early with partial metrics
        flagged ``degraded=True`` (sweeps get a diagnosable result);
        ``"raise"`` raises :class:`repro.errors.SimulationStalled`.
    bundle_dir:
        Directory for crash-forensics bundles (created on demand).
        ``None`` uses ``crash-bundles`` under the working directory.
    recent_transfers:
        Size of the rolling transfer log embedded in bundles.
    """

    mode: str = "off"
    check_interval: int = 50
    watchdog_window: int = 60
    watchdog_action: str = "degrade"
    bundle_dir: Optional[str] = None
    recent_transfers: int = _DEFAULT_RING

    def __post_init__(self) -> None:
        if self.mode not in ("off", "cheap", "full"):
            raise ConfigurationError(
                f"guards.mode must be 'off', 'cheap', or 'full', "
                f"got {self.mode!r}")
        if self.check_interval < 1:
            raise ConfigurationError("guards.check_interval must be >= 1")
        if self.watchdog_window < 1:
            raise ConfigurationError(
                f"guards.watchdog_window must be >= 1 rounds, got "
                f"{self.watchdog_window} (a window of zero or less would "
                "flag every run as stalled)")
        if self.watchdog_action not in ("degrade", "raise"):
            raise ConfigurationError(
                "guards.watchdog_action must be 'degrade' or 'raise'")
        if self.recent_transfers < 0:
            raise ConfigurationError("guards.recent_transfers must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def with_mode(self, mode: str) -> "GuardConfig":
        return replace(self, mode=mode)


@dataclass(frozen=True)
class InvariantViolation:
    """One failed invariant check, with enough evidence to debug it.

    ``code`` is a stable identifier from :data:`GUARD_CATALOGUE`;
    ``peers`` the peer ids implicated (empty for global checks);
    ``evidence`` the observed-vs-expected values the check compared.
    """

    code: str
    message: str
    time: float
    round_index: int
    peers: Tuple[int, ...] = ()
    evidence: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "time": self.time,
            "round_index": self.round_index,
            "peers": list(self.peers),
            "evidence": dict(self.evidence),
        }


def _finite(value: Optional[float]) -> bool:
    return value is None or (isinstance(value, (int, float))
                             and math.isfinite(value))


class GuardRuntime:
    """Per-run guard state: scheduled checks, watchdog, bundle hooks.

    One instance is owned by a :class:`~repro.sim.runner.Simulation`
    whose config enables guards. Every method is read-only with
    respect to simulation state and consumes no randomness — the
    determinism contract depends on it.
    """

    def __init__(self, config: GuardConfig) -> None:
        self.config = config
        self._full = config.mode == "full"
        #: Round index of the last observed progress (usable piece
        #: gain or arrival); the watchdog measures silence from here.
        self._progress_round = 0
        self._prev_now = 0.0
        #: Previous values of the monotone metric accumulators.
        self._prev_counters: Tuple[int, int, int] = (0, 0, 0)
        #: Rolling transfer log for forensics bundles: a private
        #: :class:`repro.obs.tracer.EventTracer` ring (transfer
        #: category only, unsampled) instead of a bespoke deque — one
        #: ring-buffer implementation serves both guards and obs.
        self._transfer_ring = EventTracer(
            capacity=config.recent_transfers or 1,
            categories=("transfer",))
        #: Degrade-mode stall outcome, stamped onto metrics at the end.
        self._stall_info: Optional[Dict[str, Any]] = None
        self._bundle_path: Optional[str] = None

    # ------------------------------------------------------------------
    # Hooks called by the runner
    # ------------------------------------------------------------------
    def note_progress(self, round_index: int) -> None:
        """A usable piece landed (or a peer arrived): reset the watchdog."""
        self._progress_round = round_index

    @property
    def recent_transfers(self) -> List[Dict[str, Any]]:
        """The rolling transfer log as bundle-ready dicts, oldest first."""
        out: List[Dict[str, Any]] = []
        for event in self._transfer_ring.events():
            record: Dict[str, Any] = {"time": event.time,
                                      "round": event.round_index}
            record.update(event.fields)
            out.append(record)
        return out

    def note_transfer(self, sim: "Simulation", uploader, target, piece: int,
                      kind: str, usable: bool, lost: bool) -> None:
        """Record a transfer in the forensics ring; verify it in full mode."""
        self._transfer_ring.offer(
            sim.engine.now, sim.round_index, "transfer",
            "lost" if lost else kind, {
                "uploader": uploader.peer_id,
                "target": target.peer_id,
                "piece": piece,
                "kind": kind,
                "usable": usable,
                "lost": lost,
            })
        if not self._full:
            return
        # The uploader must hold what it sends: usable pieces for plain
        # and seed transfers, held-or-pending for T-Chain forwards (a
        # forward re-ships a still-encrypted piece).
        held = uploader.pieces.mask
        if kind == "forward":
            held |= uploader.pending_mask
        if not held >> piece & 1:
            self._fail(sim, [InvariantViolation(
                code="transfer-consistency",
                message=(f"peer {uploader.peer_id} sent piece {piece} "
                         f"({kind}) it does not hold"),
                time=sim.engine.now, round_index=sim.round_index,
                peers=(uploader.peer_id, target.peer_id),
                evidence={"piece": piece, "kind": kind,
                          "holds_usable": bool(uploader.pieces.mask
                                               >> piece & 1),
                          "holds_pending": bool(uploader.pending_mask
                                                >> piece & 1)})])

    def after_round(self, sim: "Simulation") -> None:
        """End-of-round sweep: run scheduled checks, then the watchdog."""
        violations: List[InvariantViolation] = []
        violations += self._check_clock(sim)
        violations += self._check_metrics(sim)
        if self._full or sim.round_index % self.config.check_interval == 0:
            violations += self._check_conservation(sim)
            violations += self._check_ledgers(sim)
            violations += self._check_reputation(sim)
            violations += self._check_tchain(sim)
        if self._full:
            violations += self._check_availability(sim)
        if violations:
            self._fail(sim, violations)
        if not sim._finished:
            self._watchdog(sim)

    def on_unhandled_exception(self, sim: "Simulation",
                               exc: BaseException) -> Optional[str]:
        """Dump an ``exception`` bundle for a crash the runner didn't
        anticipate; returns the bundle path (None if writing failed)."""
        try:
            path = self._write_bundle(sim, "exception", error=exc)
        except Exception:  # forensics must never mask the real failure
            return None
        self._bundle_path = path
        return path

    def stamp_metrics(self, metrics) -> None:
        """Transfer degrade-mode outcome onto the finished metrics.

        ``degraded``/``stall``/``bundle_path`` live outside the digest
        fields on purpose: they describe *how the run ended*, not the
        measured physics, and stamping them keeps seed-pinned digests
        byte-identical.
        """
        if self._stall_info is not None:
            metrics.degraded = True
            metrics.stall = dict(self._stall_info)
            metrics.bundle_path = self._bundle_path

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def _watchdog(self, sim: "Simulation") -> None:
        window = self.config.watchdog_window
        silent = sim.round_index - self._progress_round
        if silent < window:
            return
        downloaders = [p.peer_id for p in sim.swarm.peers.values()
                       if not p.is_seeder and not p.is_freerider
                       and not p.complete]
        if not downloaders:
            # Nobody compliant is waiting for data (e.g. only
            # free-riders remain): silence is not a stall.
            self._progress_round = sim.round_index
            return
        stall = {
            "round_index": sim.round_index,
            "time": sim.engine.now,
            "last_progress_round": self._progress_round,
            "window": window,
            "downloaders": downloaders[:32],
            "n_downloaders": len(downloaders),
        }
        try:
            path = self._write_bundle(sim, "stall", stall=stall)
        except Exception:
            path = None
        message = (f"no piece completed for {silent} rounds (window "
                   f"{window}) while {len(downloaders)} downloaders remain")
        if self.config.watchdog_action == "raise":
            raise SimulationStalled(message, stall=stall, bundle_path=path)
        # Graceful degrade: end the run now with partial metrics.
        self._stall_info = stall
        self._bundle_path = path
        sim.finalize_degraded()

    # ------------------------------------------------------------------
    # Checks (all read-only)
    # ------------------------------------------------------------------
    def _check_clock(self, sim: "Simulation") -> List[InvariantViolation]:
        now = sim.engine.now
        out: List[InvariantViolation] = []
        if not math.isfinite(now) or now < self._prev_now:
            out.append(InvariantViolation(
                code="clock-monotonic",
                message=f"engine clock moved from {self._prev_now} to {now}",
                time=now, round_index=sim.round_index,
                evidence={"previous": self._prev_now, "now": now}))
        else:
            self._prev_now = now
        return out

    def _check_metrics(self, sim: "Simulation") -> List[InvariantViolation]:
        collector = sim.collector
        counters = (collector.total_uploaded_so_far,
                    collector.peer_uploaded_so_far,
                    collector.freerider_received_so_far)
        out: List[InvariantViolation] = []
        names = ("total_uploaded", "peer_uploaded", "freerider_received")
        for name, prev, cur in zip(names, self._prev_counters, counters):
            if cur < 0 or cur < prev:
                out.append(InvariantViolation(
                    code="metrics-sanity",
                    message=(f"metric accumulator {name} went from {prev} "
                             f"to {cur}"),
                    time=sim.engine.now, round_index=sim.round_index,
                    evidence={"counter": name, "previous": prev,
                              "current": cur}))
        if not out:
            self._prev_counters = counters
        samples = collector.metrics.samples
        if samples:
            last = samples[-1]
            for name in ("fairness_ud", "fairness_du"):
                if not _finite(getattr(last, name)):
                    out.append(InvariantViolation(
                        code="metrics-sanity",
                        message=f"sample field {name} is non-finite",
                        time=sim.engine.now, round_index=sim.round_index,
                        evidence={"field": name,
                                  "value": repr(getattr(last, name))}))
        fault_fields = vars(collector.faults)
        for name, value in fault_fields.items():
            if value < 0:
                out.append(InvariantViolation(
                    code="metrics-sanity",
                    message=f"fault counter {name} is negative ({value})",
                    time=sim.engine.now, round_index=sim.round_index,
                    evidence={"counter": name, "value": value}))
        return out

    def _check_conservation(self, sim: "Simulation",
                            ) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        for peer in sim._all_peers:
            if len(peer.pieces) != peer.total_downloaded:
                out.append(InvariantViolation(
                    code="piece-conservation",
                    message=(f"peer {peer.peer_id} holds {len(peer.pieces)} "
                             f"usable pieces but downloaded "
                             f"{peer.total_downloaded}"),
                    time=sim.engine.now, round_index=sim.round_index,
                    peers=(peer.peer_id,),
                    evidence={"pieces_held": len(peer.pieces),
                              "total_downloaded": peer.total_downloaded}))
        sent = sim.total_uploaded()
        received = sim.total_received_raw()
        if sent != received:
            out.append(InvariantViolation(
                code="piece-conservation",
                message=(f"Eq. 1 broken: {sent} pieces sent vs {received} "
                         "received"),
                time=sim.engine.now, round_index=sim.round_index,
                evidence={"total_uploaded": sent,
                          "total_received_raw": received}))
        return out

    def _check_ledgers(self, sim: "Simulation") -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        uploaded = 0
        received = 0
        # Every peer that ever existed, departed and seeders included:
        # pairwise symmetry breaks under whitewashing (partners' ledgers
        # keep dead ids), but the *global* sums must still balance.
        for peer in sim._all_peers + sim._seeders:
            peer_uploaded = sum(peer.uploaded_to.values())
            uploaded += peer_uploaded
            received += sum(peer.received_from.values())
            if peer_uploaded != peer.total_uploaded:
                out.append(InvariantViolation(
                    code="ledger-balance",
                    message=(f"peer {peer.peer_id} pairwise uploads sum to "
                             f"{peer_uploaded} but total_uploaded is "
                             f"{peer.total_uploaded}"),
                    time=sim.engine.now, round_index=sim.round_index,
                    peers=(peer.peer_id,),
                    evidence={"ledger_sum": peer_uploaded,
                              "total_uploaded": peer.total_uploaded}))
        if uploaded != received:
            out.append(InvariantViolation(
                code="ledger-balance",
                message=(f"swarm-wide ledgers do not balance: "
                         f"{uploaded} uploaded vs {received} received"),
                time=sim.engine.now, round_index=sim.round_index,
                evidence={"uploaded_sum": uploaded,
                          "received_sum": received}))
        return out

    def _check_reputation(self, sim: "Simulation",
                          ) -> List[InvariantViolation]:
        board = sim.swarm.reputation
        scores = board.snapshot()
        out: List[InvariantViolation] = []
        total = 0.0
        for peer_id, score in scores.items():
            if not math.isfinite(score) or score < 0:
                out.append(InvariantViolation(
                    code="reputation-bounds",
                    message=(f"reputation score of peer {peer_id} is "
                             f"{score!r}"),
                    time=sim.engine.now, round_index=sim.round_index,
                    peers=(peer_id,),
                    evidence={"score": repr(score)}))
                continue
            total += score
        # Every genuine report corresponds to one non-seeder upload;
        # whitewashing only *forgets* scores and delayed reports only
        # defer them, so the board can never exceed this ceiling.
        ceiling = (sim.collector.peer_uploaded_so_far
                   + board.fake_reported + 1e-9)
        if not out and total > ceiling:
            out.append(InvariantViolation(
                code="reputation-bounds",
                message=(f"reputation scores sum to {total}, exceeding "
                         f"genuine uploads + fake reports ({ceiling})"),
                time=sim.engine.now, round_index=sim.round_index,
                evidence={"score_sum": total,
                          "peer_uploaded": sim.collector.peer_uploaded_so_far,
                          "fake_reported": board.fake_reported}))
        return out

    def _check_tchain(self, sim: "Simulation") -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        for peer in sim.swarm.peers.values():
            mask = 0
            oldest = None
            for piece_id, entry in peer.pending.items():
                mask |= 1 << piece_id
                created = entry.obligation.created_round
                if oldest is None or created < oldest:
                    oldest = created
            if mask != peer.pending_mask or oldest != peer.oldest_pending_round:
                out.append(InvariantViolation(
                    code="tchain-consistency",
                    message=(f"peer {peer.peer_id} pending caches are "
                             "inconsistent with its pending map"),
                    time=sim.engine.now, round_index=sim.round_index,
                    peers=(peer.peer_id,),
                    evidence={"pending_mask": peer.pending_mask,
                              "recomputed_mask": mask,
                              "oldest_pending_round":
                                  peer.oldest_pending_round,
                              "recomputed_oldest": oldest}))
            overlap = peer.pieces.mask & peer.pending_mask
            if overlap:
                out.append(InvariantViolation(
                    code="tchain-consistency",
                    message=(f"peer {peer.peer_id} holds pieces that are "
                             "simultaneously usable and pending"),
                    time=sim.engine.now, round_index=sim.round_index,
                    peers=(peer.peer_id,),
                    evidence={"overlap_mask": overlap}))
        return out

    def _check_availability(self, sim: "Simulation",
                            ) -> List[InvariantViolation]:
        swarm = sim.swarm
        n = swarm.n_pieces
        expected = [0] * n
        for peer in swarm.peers.values():
            mask = peer.pieces.mask
            while mask:
                low = mask & -mask
                expected[low.bit_length() - 1] += 1
                mask ^= low
        mismatches = [piece for piece in range(n)
                      if swarm.availability.count(piece) != expected[piece]]
        if not mismatches:
            return []
        return [InvariantViolation(
            code="availability-consistency",
            message=(f"availability counts diverge from peer piece sets "
                     f"for pieces {mismatches[:8]}"),
            time=sim.engine.now, round_index=sim.round_index,
            evidence={"pieces": mismatches[:32],
                      "observed": [swarm.availability.count(p)
                                   for p in mismatches[:32]],
                      "expected": [expected[p] for p in mismatches[:32]]})]

    # ------------------------------------------------------------------
    # Failure path
    # ------------------------------------------------------------------
    def _fail(self, sim: "Simulation",
              violations: List[InvariantViolation]) -> None:
        try:
            path = self._write_bundle(sim, "violation", violations=violations)
        except Exception:
            path = None
        first = violations[0]
        summary = first.message
        if len(violations) > 1:
            summary += f" (+{len(violations) - 1} more violations)"
        raise InvariantViolationError(
            f"[{first.code}] {summary}", violations=tuple(violations),
            bundle_path=path)

    def _write_bundle(self, sim: "Simulation", kind: str,
                      violations: Optional[List[InvariantViolation]] = None,
                      stall: Optional[Dict[str, Any]] = None,
                      error: Optional[BaseException] = None) -> str:
        from repro.guards.bundle import write_bundle
        return write_bundle(sim, kind, guards=self, violations=violations,
                            stall=stall, error=error)
