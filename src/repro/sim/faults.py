"""Fault injection: unreliable transfers, crashes, outages, delays.

The paper's simulator (Section V) assumes a perfectly reliable
network: every scheduled piece transfer arrives, the seeder never
fails, and T-Chain obligations never dangle. Real cooperative systems
are not so kind, and incentive-mechanism rankings can shift once
transfers fail and peers crash mid-exchange (Nielson et al., Nasrulin
et al.). This module adds a controlled unreliability layer:

* **Transfer loss** — a scheduled piece transfer consumes the
  uploader's budget but delivers nothing (the bytes went into the
  void). The receiver's strategy naturally retries in later rounds;
  retried-and-recovered deliveries are counted separately.
* **Peer crashes** — each round an incomplete user fails permanently
  with a configurable hazard, taking its pieces (and any T-Chain keys
  it holds) with it.
* **Seeder outages** — transient: a seeder goes dark for a fixed
  number of rounds, then returns with its piece set intact.
* **Delayed reputation reports** — upload reports reach the global
  board only after a configurable number of rounds, so reputation
  decisions run on stale information.
* **Obligation expiry** — pending encrypted pieces whose key never
  arrives are dropped after a timeout instead of leaking forever.

All randomness comes from a dedicated ``RandomStreams`` substream, so
enabling a fault never perturbs arrival times, piece selection, or
strategy decisions of the fault-free portion of a run — and with every
probability at zero the model draws nothing at all, keeping metrics
byte-identical to a faultless simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["FaultConfig", "FaultModel"]


@dataclass(frozen=True)
class FaultConfig:
    """Tunable failure processes injected into one simulation run.

    Attributes
    ----------
    transfer_loss_rate:
        Probability that any single piece transfer (plain, encrypted
        seed, or T-Chain forward) is lost in flight. The uploader's
        budget is consumed; nothing is delivered.
    crash_hazard:
        Per-round probability that each active, incomplete user
        crashes permanently (distinct from the voluntary ``abort_rate``
        churn: crashes are counted as faults and interact with attack
        coalitions).
    seeder_outage_rate:
        Per-round probability that each online seeder suffers a
        transient outage.
    seeder_outage_duration:
        Rounds a failed seeder stays offline before recovering.
    report_delay_rounds:
        Rounds by which genuine reputation reports are delayed before
        reaching the global board (0 = immediate, the paper's model).
    obligation_expiry_rounds:
        Drop a pending (encrypted) T-Chain piece this many rounds
        after receipt if its key never arrived, so lost keys cannot
        leak pending state forever. ``None`` (default) never expires —
        the paper's reliable-network behaviour.
    """

    transfer_loss_rate: float = 0.0
    crash_hazard: float = 0.0
    seeder_outage_rate: float = 0.0
    seeder_outage_duration: int = 5
    report_delay_rounds: int = 0
    obligation_expiry_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        # Loss and outage rates are legitimate at exactly 1.0 (stress
        # runs: every transfer lost, a seeder that fails every round);
        # a crash hazard of 1.0 would wipe every downloader on round
        # one, which can only be a configuration mistake.
        for name in ("transfer_loss_rate", "seeder_outage_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        if not 0.0 <= self.crash_hazard < 1.0:
            raise ConfigurationError("crash_hazard must lie in [0, 1)")
        if self.seeder_outage_duration < 1:
            raise ConfigurationError("seeder_outage_duration must be >= 1")
        if self.report_delay_rounds < 0:
            raise ConfigurationError("report_delay_rounds must be >= 0")
        if (self.obligation_expiry_rounds is not None
                and self.obligation_expiry_rounds < 1):
            raise ConfigurationError(
                "obligation_expiry_rounds must be >= 1 or None")

    @property
    def enabled(self) -> bool:
        """True if any failure process is active."""
        return (self.transfer_loss_rate > 0.0
                or self.crash_hazard > 0.0
                or self.seeder_outage_rate > 0.0
                or self.report_delay_rounds > 0
                or self.obligation_expiry_rounds is not None)

    def with_loss_rate(self, rate: float) -> "FaultConfig":
        """Variant with a different transfer-loss probability."""
        return replace(self, transfer_loss_rate=rate)


class FaultModel:
    """Draws fault events from a dedicated random substream.

    Every ``*_lost``/``*_crashes``/``*_fails`` query short-circuits to
    ``False`` without consuming randomness when the corresponding rate
    is zero: a zero-fault model is a strict no-op and a run configured
    with it is bit-for-bit identical to one with no fault model at all.
    """

    def __init__(self, config: FaultConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng

    def transfer_lost(self) -> bool:
        """Is this piece transfer lost in flight?"""
        rate = self.config.transfer_loss_rate
        return rate > 0.0 and self._rng.random() < rate

    def peer_crashes(self) -> bool:
        """Does this peer crash this round?"""
        rate = self.config.crash_hazard
        return rate > 0.0 and self._rng.random() < rate

    def seeder_fails(self) -> bool:
        """Does this online seeder go dark this round?"""
        rate = self.config.seeder_outage_rate
        return rate > 0.0 and self._rng.random() < rate
