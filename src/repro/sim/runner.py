"""The simulation runner: wires engine, swarm, strategies and metrics.

One :class:`Simulation` reproduces the experimental setup of
Section V-A: a single seeder, a flash crowd of users arriving within
the first ``flash_crowd_duration`` seconds, heterogeneous upload
capacities, immediate departure on completion, and (optionally) a
free-riding population running the targeted attacks of Section V-B2.

Time advances in one-second rounds scheduled on the discrete-event
engine (arrivals and the round tick are events). Within a round every
active peer's strategy spends its upload budget through guarded
transfer primitives defined here, which keep ledgers, piece
availability, reputation reports, metrics, and T-Chain key state
consistent.
"""

from __future__ import annotations

import random
import warnings
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import (BackendFallbackError, InvariantViolationError,
                          SimulationStalled)
from repro.names import Algorithm
from repro.obs.runtime import ObsRuntime
from repro.sim.arrivals import flash_crowd_arrivals, poisson_arrivals
from repro.sim.config import SimulationConfig
from repro.sim.guards import GuardRuntime
from repro.sim.context import StrategyContext
from repro.sim.engine import EventEngine
from repro.sim.faults import FaultModel
from repro.sim.metrics import (MetricsCollector, PeerSummary,
                               SimulationMetrics, TransferRecord)
from repro.sim.peer import Obligation, Peer, PendingPiece
from repro.sim.pieces import bits_to_list, rarest_first
from repro.sim.rng import RandomStreams
from repro.sim.swarm import Swarm

__all__ = ["Simulation", "SimulationResult", "run_simulation"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one run: the config that produced it plus metrics."""

    config: SimulationConfig
    metrics: SimulationMetrics

    @property
    def algorithm(self) -> Algorithm:
        return self.config.algorithm

    def conservation_holds(self) -> bool:
        """Eq. 1 as a ledger identity: every sent piece was received."""
        return self.metrics.total_uploaded == self.metrics.total_received_raw


class Simulation:
    """One configured run of the cooperative-computing simulator."""

    def __init__(self, config: SimulationConfig) -> None:
        # Imported here, not at module scope: the strategy package
        # depends on repro.sim.config, so a module-level import would
        # be circular through the repro.sim package init.
        from repro.algorithms import SeederStrategy, create_strategy
        from repro.attacks import FreeRiderStrategy
        self._seeder_strategy_cls = SeederStrategy
        self._freerider_strategy_cls = FreeRiderStrategy
        self._create_strategy = create_strategy
        self.config = config
        self.streams = RandomStreams(config.seed)
        self.engine = EventEngine()
        self.swarm = Swarm(config.n_pieces, config.neighbor_count,
                           self.streams.stream("views"))
        self.collector = MetricsCollector()
        self.round_index = 0
        self._piece_rng = self.streams.stream("pieces")
        self._order_rng = self.streams.stream("order")
        self._tchain_rng = self.streams.stream("tchain")
        self._strategies: Dict[int, object] = {}  # keyed by lineage id
        self._all_peers: List[Peer] = []  # non-seeder peers, creation order
        self._coalition: List[Peer] = []
        self._arrived = 0
        self._seeder: Optional[Peer] = None
        self._churn_rng = self.streams.stream("churn")
        self._linger_rng = self.streams.stream("linger")
        self._finished = False
        #: Fault injection: draws from its own substream, so enabling
        #: faults never perturbs any other stochastic subsystem.
        self.faults = FaultModel(config.faults, self.streams.stream("faults"))
        #: Reputation reports in flight: (due_round, lineage_id, amount).
        #: Queued by *lineage*, not peer id: a whitewashing uploader
        #: changes peer ids while the report is in flight, and the
        #: credit must land on whoever that lineage is *now* — or be
        #: dropped if it departed (see :meth:`_flush_due_reports`).
        self._delayed_reports: Deque[Tuple[int, int, float]] = deque()
        #: Lineage id -> the (single, possibly re-identified) peer.
        self._peers_by_lineage: Dict[int, Peer] = {}
        #: (receiver lineage, piece) pairs whose delivery was lost —
        #: cleared (and counted as a retry) when a later send lands.
        self._lost_deliveries: Set[Tuple[int, int]] = set()
        #: Invariant guards / watchdog / forensics. Observation-only:
        #: consumes no randomness and mutates nothing the simulation
        #: reads, so guarded runs are digest-identical to unguarded.
        self._guards: Optional[GuardRuntime] = (
            GuardRuntime(config.guards) if config.guards.enabled else None)
        #: Streaming observability (:mod:`repro.obs`): tracer, samplers
        #: and profiler. Observation-only, exactly like the guards.
        self._obs: Optional[ObsRuntime] = (
            ObsRuntime(config.obs) if config.obs.enabled else None)
        if self._obs is not None and self._obs.profiler is not None:
            self.engine.profiler = self._obs.profiler
        self._install_topology()
        self._build_population()

    @property
    def obs(self) -> Optional[ObsRuntime]:
        """The run's observability runtime (None when disabled)."""
        return self._obs

    # ------------------------------------------------------------------
    # Population construction
    # ------------------------------------------------------------------
    def _install_topology(self) -> None:
        """Precompute structured neighbor views (ring / small world).

        User ids are allocated deterministically after the seeders, so
        the adjacency can be built before any arrival. The seeders keep
        their tracker-maintained global view; whitewashed identities
        (ids outside the map) fall back to random sampling.
        """
        topology = self.config.view_topology
        if topology == "random":
            return
        import networkx as nx

        n = self.config.n_users
        k = max(2, min(self.config.neighbor_count, n - 1))
        if k % 2:
            k -= 1  # watts_strogatz needs an even degree
        rewire = 0.0 if topology == "ring" else 0.1
        graph = nx.watts_strogatz_graph(
            n, k, rewire, seed=self.streams.stream("topology").randint(
                0, 2**31 - 1))
        first_user_id = self.config.n_seeders
        views = {
            first_user_id + node: {first_user_id + other
                                   for other in graph.neighbors(node)}
            for node in graph.nodes
        }
        self.swarm.set_static_views(views)

    def _capacity_assignments(self) -> List[float]:
        """Per-user capacities honouring the class fractions exactly."""
        cfg = self.config
        counts = [int(cls.fraction * cfg.n_users) for cls in cfg.capacity_classes]
        # Distribute rounding remainder to the largest classes first.
        shortfall = cfg.n_users - sum(counts)
        order = sorted(range(len(counts)),
                       key=lambda i: -cfg.capacity_classes[i].fraction)
        for i in range(shortfall):
            counts[order[i % len(order)]] += 1
        capacities: List[float] = []
        for cls, count in zip(cfg.capacity_classes, counts):
            capacities.extend([cls.capacity] * count)
        self.streams.stream("capacity").shuffle(capacities)
        return capacities

    def _build_population(self) -> None:
        cfg = self.config
        # Seeders first: present from time zero. The tracker keeps
        # every user connected to the seeders, so no user can be
        # starved by a view full of departed peers.
        self._seeders: List[Peer] = []
        for index in range(cfg.n_seeders):
            seeder_id = self.swarm.allocate_id()
            seeder = Peer(seeder_id, cfg.seeder_capacity, cfg.n_pieces,
                          arrival_time=0.0, is_seeder=True)
            seeder.large_view = True
            self.swarm.add_peer(seeder)
            self._strategies[seeder.lineage_id] = self._seeder_strategy_cls(
                cfg.strategy_params, self.streams.stream(f"seeder:{index}"))
            self._seeders.append(seeder)
        self._seeder = self._seeders[0]

        capacities = self._capacity_assignments()
        if cfg.arrival_process == "poisson":
            arrivals = poisson_arrivals(cfg.n_users, cfg.arrival_rate,
                                        self.streams.stream("arrivals"))
        else:
            arrivals = flash_crowd_arrivals(cfg.n_users,
                                            cfg.flash_crowd_duration,
                                            self.streams.stream("arrivals"))
        role_rng = self.streams.stream("roles")
        freerider_indices = set(
            role_rng.sample(range(cfg.n_users), cfg.n_freeriders))

        for index in range(cfg.n_users):
            peer_id = self.swarm.allocate_id()
            peer = Peer(peer_id, capacities[index], cfg.n_pieces,
                        arrival_time=arrivals[index],
                        is_freerider=index in freerider_indices)
            if peer.is_freerider:
                peer.large_view = cfg.attack.large_view
                peer.whitewash_interval = cfg.attack.whitewash_interval
                self._coalition.append(peer)
            self._all_peers.append(peer)
            self._peers_by_lineage[peer.lineage_id] = peer
            strategy = self._make_strategy(peer)
            self._strategies[peer.lineage_id] = strategy
            self.engine.schedule_at(
                arrivals[index],
                lambda _e, p=peer: self._on_arrival(p),
                name=f"arrival:{peer_id}")

        self._sync_coalition()
        self._round_handle = self.engine.schedule_every(
            1.0, lambda _e: self._on_round(), name="round")

    def _make_strategy(self, peer: Peer):
        rng = self.streams.stream(f"strategy:{peer.lineage_id}")
        if peer.is_freerider:
            return self._freerider_strategy_cls(
                self.config.strategy_params, rng, attack=self.config.attack)
        return self._create_strategy(self.config.algorithm,
                                     self.config.strategy_params, rng)

    def _sync_coalition(self) -> None:
        """Refresh colluder id sets (ids change under whitewashing).

        Departed or crashed colluders are dropped: a coalition member
        that failed mid-attack can no longer issue false confirmations,
        and keeping its dead id in the sets would only mask that.
        """
        if not (self.config.attack.collusion or self.config.attack.false_praise):
            return
        ids = {p.peer_id for p in self._coalition if not p.departed}
        for peer in self._coalition:
            peer.colluders = ids - {peer.peer_id}

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, peer: Peer) -> None:
        self.swarm.add_peer(peer)
        self._arrived += 1
        if self._guards is not None:
            # Arrivals count as progress: a slow Poisson trickle must
            # not be misread as a livelock by the watchdog.
            self._guards.note_progress(self.round_index)

    def _on_round(self) -> None:
        if self._finished:
            return
        self.round_index += 1
        self._flush_due_reports()
        self._process_seeder_outages()
        profiler = self._obs.profiler if self._obs is not None else None
        active = [self.swarm.peers[pid] for pid in self.swarm.active_ids]
        self._order_rng.shuffle(active)
        for peer in active:
            if peer.peer_id not in self.swarm.peers:
                continue  # departed earlier this round
            if peer.offline_until > self.round_index:
                continue  # transient outage: no credit, no sends
            peer.budget.new_round()
            strategy = self._strategies[peer.lineage_id]
            ctx = StrategyContext(self, peer, strategy.rng)
            if profiler is None:
                strategy.on_round(ctx)
            else:
                start = perf_counter()
                strategy.on_round(ctx)
                profiler.add("algorithm.on_round", perf_counter() - start)
        for peer in list(self.swarm.peers.values()):
            peer.end_round()
        self._process_departures()
        self._process_churn()
        self._process_crashes()
        self._expire_obligations()
        self._process_whitewashing()
        if self.round_index % self.config.sample_interval == 0:
            self._sample()
        if self._all_departed() or self.round_index >= self.config.max_rounds:
            self._finished = True
            self._round_handle.cancel()
            self.engine.stop()
        if self._guards is not None:
            if profiler is None:
                self._guards.after_round(self)
            else:
                start = perf_counter()
                self._guards.after_round(self)
                profiler.add("guards.after_round", perf_counter() - start)
        if self._obs is not None:
            self._obs.after_round(self)

    def _all_departed(self) -> bool:
        """All compliant users arrived and finished (or churned out).

        Free-riders are excluded: the swarm's useful lifetime ends when
        the content has reached every legitimate user, and metrics —
        notably susceptibility — are measured over that window.
        Lingering seeds do not extend the run.
        """
        if self._arrived < self.config.n_users:
            return False
        return all(p.completion_time is not None or p.departed
                   for p in self._all_peers if not p.is_freerider)

    def _process_departures(self) -> None:
        """Completed users exit — immediately (Section V-A), or after
        a geometric lingering period when ``seed_linger_rate`` is set
        (the fluid model's seed departure rate gamma)."""
        linger = self.config.seed_linger_rate
        for peer in list(self.swarm.peers.values()):
            if peer.is_seeder or not peer.complete:
                continue
            if peer.completion_time is None:
                peer.completion_time = self.engine.now
            if linger is not None and self._linger_rng.random() >= linger:
                continue  # stays one more round as a lingering seed
            peer.departed = True
            self.swarm.remove_peer(peer.peer_id)
            self._drop_orphaned_obligations(peer.peer_id)

    def _process_churn(self) -> None:
        """Early departures: incomplete users abort with ``abort_rate``.

        The fluid model's theta, realised per round. Aborting users
        leave without a completion time; their pieces leave with them
        and any keys they held are lost.
        """
        rate = self.config.abort_rate
        if rate <= 0.0:
            return
        for peer in list(self.swarm.peers.values()):
            if peer.is_seeder or peer.complete:
                continue
            if self._churn_rng.random() < rate:
                peer.departed = True
                self.swarm.remove_peer(peer.peer_id)
                self._drop_orphaned_obligations(peer.peer_id)

    def _drop_orphaned_obligations(self, departed_id: int) -> None:
        """Keys held by a departed uploader are lost: drop those pieces.

        The encrypted data is useless without the key, and the pending
        entry would otherwise block re-downloading the piece from
        someone else.
        """
        for peer in self.swarm.peers.values():
            orphaned = [piece_id for piece_id, entry in peer.pending.items()
                        if entry.obligation.uploader_id == departed_id]
            for piece_id in orphaned:
                peer.drop_pending_piece(piece_id)
            if orphaned:
                self.swarm.note_state_changed()
                self.collector.record_orphaned_obligations(len(orphaned))
                if self._obs is not None:
                    self._obs.note_fault(self, "obligations_orphaned",
                                         peer=peer.peer_id,
                                         uploader=departed_id,
                                         count=len(orphaned))

    # ------------------------------------------------------------------
    # Fault processing (all no-ops under the default zero-fault config)
    # ------------------------------------------------------------------
    def _process_crashes(self) -> None:
        """Permanent mid-download failures at the configured hazard.

        Unlike ``abort_rate`` churn (a modelling knob of the fluid
        analysis) crashes are injected faults: counted in the fault
        tallies, and — because a crashed colluder can no longer confirm
        anything — they shrink any active attack coalition.
        """
        if self.config.faults.crash_hazard <= 0.0:
            return
        coalition_hit = False
        for peer in list(self.swarm.peers.values()):
            if peer.is_seeder or peer.complete:
                continue
            if self.faults.peer_crashes():
                peer.departed = True
                self.swarm.remove_peer(peer.peer_id)
                self._drop_orphaned_obligations(peer.peer_id)
                self.collector.record_crash()
                if self._obs is not None:
                    self._obs.note_fault(self, "crash", peer=peer.peer_id,
                                         freerider=peer.is_freerider)
                coalition_hit = coalition_hit or peer.is_freerider
        if coalition_hit:
            self._sync_coalition()

    def _process_seeder_outages(self) -> None:
        """Transient seeder failures: offline for a fixed spell.

        An offline seeder keeps its pieces and its swarm registration
        (views are untouched) but earns no budget and sends nothing
        until it recovers.
        """
        if self.config.faults.seeder_outage_rate <= 0.0:
            return
        duration = self.config.faults.seeder_outage_duration
        for seeder in self._seeders:
            if seeder.offline_until > self.round_index:
                self.collector.record_seeder_downtime()
                continue
            if self.faults.seeder_fails():
                seeder.offline_until = self.round_index + duration
                self.collector.record_seeder_outage()
                self.collector.record_seeder_downtime()
                if self._obs is not None:
                    self._obs.note_fault(self, "seeder_outage",
                                         seeder=seeder.peer_id,
                                         until=seeder.offline_until)

    def _expire_obligations(self) -> None:
        """Key timeout: drop pending pieces whose key never arrived.

        Under transfer loss or crashes a reciprocation (or its
        confirmation) can vanish in flight, leaving the encrypted piece
        pending forever — blocking a re-download and leaking state.
        Entries older than ``obligation_expiry_rounds`` are discarded;
        the receiver may then fetch the piece again from anyone.
        """
        expiry = self.config.faults.obligation_expiry_rounds
        if expiry is None:
            return
        horizon = self.round_index - expiry
        for peer in self.swarm.peers.values():
            stale = [piece_id for piece_id, entry in peer.pending.items()
                     if entry.obligation.created_round <= horizon]
            for piece_id in stale:
                peer.drop_pending_piece(piece_id)
            if stale:
                self.swarm.note_state_changed()
                self.collector.record_expired_obligations(len(stale))
                if self._obs is not None:
                    self._obs.note_fault(self, "obligations_expired",
                                         peer=peer.peer_id,
                                         count=len(stale))

    def _flush_due_reports(self) -> None:
        """Deliver delayed reputation reports that have come due.

        Reports are queued by lineage and resolved to the lineage's
        *current* peer id here: crediting the id captured at send time
        would resurrect a whitewashed identity's score (which
        ``Swarm.reset_identity`` just forgot) while the live identity
        silently lost the credit it earned. Reports whose lineage has
        departed (or crashed) are discarded and counted as a fault —
        there is no live identity left to credit.
        """
        reports = self._delayed_reports
        while reports and reports[0][0] <= self.round_index:
            _due, lineage_id, amount = reports.popleft()
            uploader = self._peers_by_lineage.get(lineage_id)
            if uploader is None or uploader.departed:
                self.collector.record_dropped_report()
                if self._obs is not None:
                    self._obs.note_fault(self, "report_dropped",
                                         lineage=lineage_id, amount=amount)
                continue
            self.swarm.reputation.report(uploader.peer_id, amount)
            if self._obs is not None:
                self._obs.note_reputation(self, "delivered",
                                          uploader.peer_id, amount)

    def _report_upload(self, uploader: Peer) -> None:
        """Report a genuine upload, immediately or after the fault delay."""
        if uploader.is_seeder:
            return
        delay = self.config.faults.report_delay_rounds
        if delay <= 0:
            self.swarm.reputation.report(uploader.peer_id, 1.0)
            if self._obs is not None:
                self._obs.note_reputation(self, "report", uploader.peer_id,
                                          1.0)
        else:
            self._delayed_reports.append(
                (self.round_index + delay, uploader.lineage_id, 1.0))
            self.collector.record_delayed_report()
            if self._obs is not None:
                self._obs.note_reputation(self, "queued", uploader.peer_id,
                                          1.0, due=self.round_index + delay)

    def _process_whitewashing(self) -> None:
        interval = self.config.attack.whitewash_interval
        if interval is None:
            return
        reset_any = False
        for peer in list(self.swarm.peers.values()):
            if (peer.is_freerider and peer.whitewash_interval
                    and self.round_index % peer.whitewash_interval == 0):
                self.swarm.reset_identity(peer)
                reset_any = True
        if reset_any:
            self._sync_coalition()

    # ------------------------------------------------------------------
    # Transfer primitives (called through StrategyContext)
    # ------------------------------------------------------------------
    def _valid_target(self, uploader: Peer, target_id: int) -> Optional[Peer]:
        if not uploader.budget.can_send():
            return None
        target = self.swarm.peers.get(target_id)
        if target is None or target.is_seeder or target.complete:
            return None
        if target.peer_id == uploader.peer_id:
            return None
        return target

    def _record_trace(self, uploader: Peer, target: Peer, piece: int,
                      kind: str, usable: bool, lost: bool = False) -> None:
        if self._guards is not None:
            self._guards.note_transfer(self, uploader, target, piece, kind,
                                       usable, lost)
        if self._obs is not None:
            self._obs.note_transfer(self, uploader, target, piece, kind,
                                    usable, lost)
        if self.config.record_transfers:
            self.collector.metrics.transfers.append(TransferRecord(
                time=self.engine.now, uploader_id=uploader.peer_id,
                target_id=target.peer_id, piece_id=piece, kind=kind,
                usable=usable, lost=lost))

    def _transfer_lost(self, uploader: Peer, target: Peer, piece: int,
                       kind: str) -> bool:
        """Fault hook: was this send dropped in flight?

        A lost transfer has already consumed the uploader's budget (the
        bandwidth was spent); nothing is delivered, no ledgers move,
        and no reputation is earned. The (receiver, piece) pair is
        remembered so a later successful delivery counts as a retry.
        """
        if not self.faults.transfer_lost():
            return False
        self.collector.record_lost_transfer()
        self._lost_deliveries.add((target.lineage_id, piece))
        if self._obs is not None:
            self._obs.note_fault(self, "transfer_lost",
                                 uploader=uploader.peer_id,
                                 target=target.peer_id, piece=piece,
                                 kind=kind)
        self._record_trace(uploader, target, piece, kind, usable=False,
                          lost=True)
        return True

    def _note_delivery(self, target: Peer, piece: int) -> None:
        """Count a delivery that recovers a previously lost send."""
        key = (target.lineage_id, piece)
        if key in self._lost_deliveries:
            self._lost_deliveries.discard(key)
            self.collector.record_retried_transfer()

    def _choose_piece(self, uploader: Peer, target: Peer) -> Optional[int]:
        """Pick which needed piece to send, per the configured policy.

        Candidates are handled as a bitmask end to end; both policies
        enumerate them in ascending piece order, so piece selection is
        reproducible across Python versions for a fixed seed.
        """
        candidate_mask = target.needed_mask_from(uploader)
        if not candidate_mask:
            return None
        if self.config.piece_selection == "random":
            return self._piece_rng.choice(bits_to_list(candidate_mask))
        return rarest_first(candidate_mask, self.swarm.availability,
                            self._piece_rng)

    def transfer_plain(self, uploader: Peer, target_id: int,
                       piece_id: Optional[int] = None) -> bool:
        """Send one immediately usable piece; True on success."""
        target = self._valid_target(uploader, target_id)
        if target is None:
            return False
        if piece_id is None:
            piece = self._choose_piece(uploader, target)
        else:
            piece = piece_id if (piece_id in uploader.pieces
                                 and target.needs_piece(piece_id)) else None
        if piece is None:
            return False
        uploader.budget.consume()
        if self._transfer_lost(uploader, target, piece, "plain"):
            return False
        uploader.record_upload(target.peer_id)
        self._report_upload(uploader)
        target.record_receipt(uploader.peer_id, usable=True)
        target.add_usable_piece(piece)
        self.swarm.on_piece_gained(target, piece)
        self._note_delivery(target, piece)
        self.collector.record_transfer(target.is_freerider, usable=True,
                                       from_seeder=uploader.is_seeder)
        self._record_trace(uploader, target, piece, "plain", usable=True)
        self._on_piece_gained(target)
        return True

    def _on_piece_gained(self, peer: Peer) -> None:
        if peer.bootstrap_time is None and len(peer.pieces) >= 1:
            peer.bootstrap_time = self.engine.now
            if self._obs is not None:
                self._obs.note_bootstrap(self, peer, encrypted=False)
        if peer.complete and peer.completion_time is None:
            peer.completion_time = self.engine.now
            if self._obs is not None:
                self._obs.note_completion(self, peer)
        if self._guards is not None:
            self._guards.note_progress(self.round_index)

    # ------------------------------------------------------------------
    # T-Chain mechanics
    # ------------------------------------------------------------------
    def tchain_blacklisted(self, target: Peer) -> bool:
        """Refuse service to peers sitting on unmet obligations.

        A peer is blacklisted while it has an obligation older than
        the configured patience, or already holds the maximum number
        of outstanding encrypted pieces.
        """
        params = self.config.strategy_params
        if len(target.pending) >= params.tchain_max_pending:
            return True
        oldest = target.oldest_pending_round
        return (oldest is not None
                and oldest <= self.round_index - params.tchain_obligation_patience)

    def tchain_seed(self, uploader: Peer, target_id: int) -> bool:
        """Opportunistically seed one encrypted piece to ``target_id``.

        Returns False if no eligible piece was sent *or* the send was
        lost in flight (fault injection) — budget is consumed either
        way in the latter case.
        """
        target = self._valid_target(uploader, target_id)
        if target is None or self.tchain_blacklisted(target):
            return False
        piece = self._choose_piece(uploader, target)
        if piece is None:
            return False
        return self._tchain_deliver(uploader, target, piece)

    def tchain_seed_random(self, uploader: Peer, rng: random.Random) -> bool:
        """Seed a random eligible needy neighbor; try until one works."""
        # Inlined blacklist check: this scans every needy neighbor, so
        # the per-candidate call overhead dominates at swarm scale.
        params = self.config.strategy_params
        max_pending = params.tchain_max_pending
        horizon = self.round_index - params.tchain_obligation_patience
        peers = self.swarm.peers
        candidates = []
        for pid in self.swarm.needy_neighbors(uploader):
            target = peers[pid]
            if len(target.pending) >= max_pending:
                continue
            oldest = target.oldest_pending_round
            if oldest is not None and oldest <= horizon:
                continue
            candidates.append(pid)
        rng.shuffle(candidates)
        for target_id in candidates:
            if self.tchain_seed(uploader, target_id):
                return True
        return False

    def _choose_designated(self, uploader: Peer, target: Peer,
                           piece: int) -> Optional[int]:
        """Pick a third user who needs ``piece`` for indirect reciprocity."""
        # Seeders hold every piece, so the needs check (inlined: this
        # scans the whole neighbor view) excludes them on its own.
        peers = self.swarm.peers
        target_id = target.peer_id
        options = [pid for pid in self.swarm.neighbors(uploader.peer_id)
                   if pid != target_id
                   and (other := peers.get(pid)) is not None
                   and not (other.pieces.mask | other.pending_mask)
                   >> piece & 1]
        if not options:
            return None
        return self._tchain_rng.choice(options)

    def _tchain_deliver(self, uploader: Peer, target: Peer,
                        piece: int) -> bool:
        """Deliver an encrypted piece and attach its obligation.

        If direct repayment is currently possible (the uploader needs
        one of the target's usable pieces) the obligation is direct;
        otherwise a designated third user is chosen for indirect
        reciprocity. The collusion attack strikes exactly here: a
        free-riding receiver whose designated third party is a fellow
        colluder gets the key released on a false confirmation.
        Returns False (budget spent, no obligation created) when fault
        injection drops the send.
        """
        uploader.budget.consume()
        if self._transfer_lost(uploader, target, piece, "seed"):
            return False
        uploader.record_upload(target.peer_id)
        self._report_upload(uploader)
        target.record_receipt(uploader.peer_id, usable=False)
        self._note_delivery(target, piece)
        designated: Optional[int] = None
        if not uploader.needed_pieces_from(target):
            designated = self._choose_designated(uploader, target, piece)
        self.collector.record_transfer(target.is_freerider, usable=False,
                                       from_seeder=uploader.is_seeder)
        self._record_trace(uploader, target, piece, "seed", usable=False)
        colluding = (self.config.attack.collusion
                     and target.is_freerider
                     and designated is not None
                     and designated in target.colluders)
        if colluding:
            # The designated colluder falsely reports receipt; the
            # uploader releases the key without any reciprocation.
            target.add_usable_piece(piece)
            self.swarm.on_piece_gained(target, piece)
            target.mark_usable()
            self.collector.record_unlock(for_freerider=True)
            self._on_piece_gained(target)
        else:
            target.add_pending_piece(
                piece, Obligation(uploader.peer_id, piece, designated,
                                  self.round_index))
            self.swarm.on_pending_added(target)
            if target.bootstrap_time is None:
                # Receiving the (encrypted) piece bootstraps the
                # newcomer: it can immediately participate by
                # forwarding it (indirect reciprocity).
                target.bootstrap_time = self.engine.now
                if self._obs is not None:
                    self._obs.note_bootstrap(self, target, encrypted=True)
        return True

    def tchain_fulfill(self, receiver: Peer, pending: PendingPiece) -> bool:
        """Reciprocate for one pending piece, unlocking it on success.

        Order of attempts: (1) direct repayment to the uploader,
        (2) forward the encrypted piece to the designated third user
        (or any needy user if the designation went stale),
        (3) contribute any other usable piece to any needy neighbor.
        """
        if pending.piece_id not in receiver.pending:
            return False
        if not receiver.budget.can_send():
            return False
        obligation = pending.obligation
        uploader = self.swarm.peers.get(obligation.uploader_id)
        if uploader is None:
            # Key holder left: the encrypted data is worthless.
            receiver.drop_pending_piece(pending.piece_id)
            self.swarm.note_state_changed()
            return False

        # (1) Direct reciprocity.
        if not uploader.complete and uploader.needed_pieces_from(receiver):
            if self.transfer_plain(receiver, uploader.peer_id):
                self._unlock(receiver, pending)
                return True
            if not receiver.budget.can_send():
                # The repayment was attempted but lost in flight and
                # spent the last of this round's budget: try again
                # next round rather than over-spending.
                return False

        # (2) Forward the received piece (indirect reciprocity).
        forward_target = self._forward_target(receiver, obligation,
                                              pending.piece_id)
        if forward_target is not None:
            target = self.swarm.peers[forward_target]
            # Temporarily release the pending entry so the forward does
            # not collide with the receiver's own bookkeeping.
            return self._forward_encrypted(receiver, target, pending)

        # (3) Generalised indirect reciprocity: contribute any other
        # piece — still *encrypted*, so the new receiver incurs its own
        # obligation and free-riders gain nothing usable from it.
        if len(receiver.pieces) > 0:
            candidates = [pid for pid in self.swarm.needy_neighbors(receiver)
                          if pid != obligation.uploader_id]
            self._tchain_rng.shuffle(candidates)
            for pid in candidates:
                if self.tchain_seed(receiver, pid):
                    self._unlock(receiver, pending)
                    return True
        return False

    def _forward_target(self, receiver: Peer, obligation: Obligation,
                        piece: int) -> Optional[int]:
        designated = obligation.designated_target
        if (designated is not None and designated in self.swarm.peers
                and self.swarm.peers[designated].needs_piece(piece)
                and not self.tchain_blacklisted(self.swarm.peers[designated])):
            return designated
        # Inlined needs + blacklist checks (full neighbor-view scan);
        # seeders need nothing, so the needs check excludes them.
        params = self.config.strategy_params
        max_pending = params.tchain_max_pending
        horizon = self.round_index - params.tchain_obligation_patience
        peers = self.swarm.peers
        options = []
        for pid in self.swarm.neighbors(receiver.peer_id):
            if pid == obligation.uploader_id:
                continue
            other = peers[pid]
            if (other.pieces.mask | other.pending_mask) >> piece & 1:
                continue
            if len(other.pending) >= max_pending:
                continue
            oldest = other.oldest_pending_round
            if oldest is not None and oldest <= horizon:
                continue
            options.append(pid)
        if not options:
            return None
        return self._tchain_rng.choice(options)

    def _forward_encrypted(self, receiver: Peer, target: Peer,
                           pending: PendingPiece) -> bool:
        """Forward a still-encrypted piece to fulfil an obligation.

        Returns False when the forward is lost in flight: the budget is
        spent but the obligation stays unmet and the key stays locked.
        """
        piece = pending.piece_id
        receiver.budget.consume()
        if self._transfer_lost(receiver, target, piece, "forward"):
            return False
        receiver.record_upload(target.peer_id)
        self._report_upload(receiver)
        target.record_receipt(receiver.peer_id, usable=False)
        self._note_delivery(target, piece)
        designated: Optional[int] = None
        if not receiver.needed_pieces_from(target):
            designated = self._choose_designated(receiver, target, piece)
        self.collector.record_transfer(target.is_freerider, usable=False,
                                       from_seeder=False)
        self._record_trace(receiver, target, piece, "forward", usable=False)
        colluding = (self.config.attack.collusion
                     and target.is_freerider
                     and designated is not None
                     and designated in target.colluders)
        if colluding:
            target.add_usable_piece(piece)
            self.swarm.on_piece_gained(target, piece)
            target.mark_usable()
            self.collector.record_unlock(for_freerider=True)
            self._on_piece_gained(target)
        else:
            target.add_pending_piece(
                piece, Obligation(receiver.peer_id, piece, designated,
                                  self.round_index))
            self.swarm.on_pending_added(target)
            if target.bootstrap_time is None:
                target.bootstrap_time = self.engine.now
                if self._obs is not None:
                    self._obs.note_bootstrap(self, target, encrypted=True)
        # The forward is the reciprocation: unlock the receiver's copy.
        self._unlock(receiver, pending)
        return True

    def _unlock(self, receiver: Peer, pending: PendingPiece) -> None:
        """Release the key: the pending piece becomes usable."""
        receiver.unlock_piece(pending.piece_id)
        self.swarm.on_piece_gained(receiver, pending.piece_id)
        receiver.mark_usable()
        self.collector.record_unlock(for_freerider=receiver.is_freerider)
        self._on_piece_gained(receiver)

    # ------------------------------------------------------------------
    # Sampling and results
    # ------------------------------------------------------------------
    def _sample(self) -> None:
        ud_ratios: List[float] = []
        du_ratios: List[float] = []
        for peer in self.swarm.active_non_seeders():
            if peer.is_freerider:
                continue
            if peer.total_downloaded > 0:
                ud_ratios.append(peer.total_uploaded / peer.total_downloaded)
            if peer.total_uploaded > 0:
                du_ratios.append(peer.total_downloaded / peer.total_uploaded)
        fairness_ud = sum(ud_ratios) / len(ud_ratios) if ud_ratios else None
        fairness_du = sum(du_ratios) / len(du_ratios) if du_ratios else None
        bootstrapped = sum(1 for p in self._all_peers
                           if p.bootstrap_time is not None)
        completed = sum(1 for p in self._all_peers
                        if p.completion_time is not None)
        self.collector.sample(
            time=self.engine.now,
            active_peers=len(self.swarm.active_non_seeders()),
            arrived=self._arrived,
            population=self.config.n_users,
            bootstrapped=bootstrapped,
            completed=completed,
            fairness_ud=fairness_ud,
            fairness_du=fairness_du,
        )

    def _summaries(self) -> List[PeerSummary]:
        return [PeerSummary(
            peer_id=p.peer_id,
            lineage_id=p.lineage_id,
            capacity=p.capacity,
            is_freerider=p.is_freerider,
            arrival_time=p.arrival_time,
            bootstrap_time=p.bootstrap_time,
            completion_time=p.completion_time,
            uploaded=p.total_uploaded,
            downloaded=p.total_downloaded,
        ) for p in self._all_peers]

    def total_received_raw(self) -> int:
        """Pieces received across all peers (for Eq. 1 conservation)."""
        return sum(p.total_received_raw for p in self._all_peers)

    def total_uploaded(self) -> int:
        uploads = sum(p.total_uploaded for p in self._all_peers)
        return uploads + sum(s.total_uploaded for s in self._seeders)

    def finalize_degraded(self) -> None:
        """Watchdog degrade path: end the run now with partial metrics.

        Called by :class:`~repro.sim.guards.GuardRuntime` when the
        progress watchdog trips under ``watchdog_action="degrade"``.
        The run terminates exactly as a natural finish would; the
        guards stamp ``degraded=True`` onto the metrics afterwards.
        """
        self._finished = True
        self._round_handle.cancel()
        self.engine.stop()

    def run(self) -> SimulationResult:
        """Execute the run to completion and return its results."""
        # +2 rounds of slack so the final sample lands before the cap.
        try:
            self.engine.run_until(self.config.max_rounds + 2,
                                  max_events=50_000_000)
        except (InvariantViolationError, SimulationStalled):
            raise  # guards already wrote their bundle
        except Exception as exc:
            if self._guards is not None:
                path = self._guards.on_unhandled_exception(self, exc)
                if path is not None:
                    # Embed the bundle path in the message (args, not
                    # add_note: py3.10) so it survives the str()
                    # serialisation sweep workers apply to errors.
                    exc.bundle_path = path
                    if exc.args and isinstance(exc.args[0], str):
                        exc.args = (f"{exc.args[0]} [bundle: {path}]",
                                    *exc.args[1:])
                    else:
                        exc.args = (*exc.args, f"[bundle: {path}]")
            raise
        metrics = self.collector.finalize(self._summaries(), self.round_index,
                                          self.total_received_raw())
        if self._guards is not None:
            self._guards.stamp_metrics(metrics)
        if self._obs is not None:
            metrics.obs = self._obs.finalize()
        return SimulationResult(config=self.config, metrics=metrics)


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Build and run one simulation on the configured backend.

    ``config.backend == "vector"`` selects the struct-of-arrays round
    loop (:class:`repro.sim.vector.VectorSimulation`), which produces
    byte-identical metrics digests to this object engine;
    ``"vector-fast"`` selects its batched-sampling subclass
    (:class:`repro.sim.vector.VectorFastSimulation`), which is only
    *distributionally* equivalent and stamps
    ``metrics.digest_lineage = "fast-v1"``. Configs neither vector
    engine supports (guards, the obs runtime, per-transfer recording)
    are handled per ``config.backend_fallback``: ``"warn"`` (default)
    falls back to the object engine with a :class:`RuntimeWarning`
    naming the unsupported feature, ``"silent"`` falls back without
    the warning, and ``"error"`` raises
    :class:`repro.errors.BackendFallbackError` instead of running.
    Either fallback records the reason on
    ``metrics.backend_downgraded`` so sweeps can surface downgrades
    that happen inside worker processes.

    Configs with ``population`` set dispatch to the fluid/event-driven
    hybrid engine (:func:`repro.sim.hybrid.run_hybrid_simulation`,
    docs/SCALING.md): subswarms run sequentially in-process here —
    pass ``jobs`` to that function directly (or use the CLI's
    ``--jobs``) for executor fan-out.
    """
    if config.population is not None:
        from repro.sim.hybrid import run_hybrid_simulation

        return run_hybrid_simulation(config)
    if config.backend in ("vector", "vector-fast"):
        from repro.sim.vector import (VectorFastSimulation, VectorSimulation,
                                      vector_unsupported_reason)

        reason = vector_unsupported_reason(config)
        if reason is None:
            engine = (VectorFastSimulation if config.backend == "vector-fast"
                      else VectorSimulation)
            return engine(config).run()
        if config.backend_fallback == "error":
            raise BackendFallbackError(
                f"the '{config.backend}' backend does not support {reason} "
                "and backend_fallback='error' forbids the object-engine "
                "fallback; use backend='object' or relax the policy")
        if config.backend_fallback == "warn":
            warnings.warn(
                f"vector backend does not support {reason}; "
                "falling back to the object engine",
                RuntimeWarning, stacklevel=2)
        result = Simulation(config).run()
        result.metrics.backend_downgraded = reason
        return result
    return Simulation(config).run()
