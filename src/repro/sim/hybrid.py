"""Fluid/event-driven hybrid engine for population-scale flash crowds.

Every existing backend instantiates one peer (object or array slot)
per user, which caps a single box at ~10k peers. This module reaches
the paper's "millions of users" regime by *sampling*: a population of
``P`` users is represented by ``K`` independent event-driven subswarms
of ``m = config.n_users`` peers each — every shard a completely normal
:class:`~repro.sim.config.SimulationConfig` run on any backend — and
the unsampled remainder lives in the Qiu-Srikant fluid aggregate
(:mod:`repro.core.fluid`). Shard results are scaled back up by the
shard weight ``w = P / (K * m)`` into population-level metrics.

Coupling happens at round boundaries every ``config.coupling_interval``
rounds. In the event -> fluid direction each boundary folds measured
subswarm aggregates into the fluid integration: swarm effectiveness
(the fraction of arrived users holding at least one piece, a direct
proxy for the probability that a random encounter can transfer a
usable piece), the lingering-seeder share, and the credit/fairness
distribution. In the fluid -> event direction the coupling is the
shared boundary conditions fixed up front: the non-stationary
flash-crowd arrival rate ``lambda(t)`` and the per-capita
infrastructure seed bandwidth, identical for the fluid reservoir and
every shard. A conservation ledger (one :class:`CouplingRow` per
boundary) accounts for the entire population at every coupling round
— unarrived + present + departed must equal ``P`` exactly — and the
soft residual against the independently integrated fluid trajectory
is reported in :attr:`HybridMetrics.fluid_residual`.

Scaling contract (docs/SCALING.md has the full derivation): the
template config describes one shard *verbatim* — shards differ only
in their derived RNG seed — and the population-scale system is
defined as the one whose per-capita infrastructure seed bandwidth
matches the template's (``n_seeders * seeder_capacity / n_users``).
Validating a hybrid against a full event-driven run of ``P`` users
therefore requires scaling the reference's ``seeder_capacity`` by
``P / m`` (see :func:`reference_config`).

Determinism: shard seeds are derived by hashing ``(config.seed,
shard_index)``, shards are aggregated in index order, and
:func:`run_tasks` returns results in submission order — so the
``hybrid-v1`` digest is identical for any ``jobs`` count, any start
method, and the inline sequential path used inside daemonic sweep
workers (which cannot fork children of their own).
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import fluid as fluid_model
from repro.errors import ConfigurationError, SimulationError
from repro.sim.config import SimulationConfig
from repro.sim.metrics import (FaultCounters, PeerSummary, RoundSample,
                               SimulationMetrics, metrics_digest)

__all__ = [
    "CouplingRow",
    "HybridMetrics",
    "HybridShardError",
    "ShardPlan",
    "SHARD_ID_STRIDE",
    "hybrid_digest",
    "reference_config",
    "run_hybrid_simulation",
    "shard_config",
    "shard_plan",
    "shard_seed",
]

#: Peer/lineage ids of shard ``i`` are offset by ``i * SHARD_ID_STRIDE``
#: when pooled into :attr:`HybridMetrics.peers`, keeping identities
#: disjoint across subswarms. Bounds the per-shard id space (peers plus
#: whitewashed lineages) — far above any event-driven shard size.
SHARD_ID_STRIDE = 10_000_000


class HybridShardError(SimulationError):
    """A subswarm failed inside a pooled hybrid run.

    Raised when the executor reports a shard task that died (crash,
    timeout, or an exception the worker serialized to a string). The
    message names the shard index and carries the worker-side error.
    """


@dataclass(frozen=True)
class ShardPlan:
    """How a hybrid run decomposes its population.

    ``weight`` is the number of population users each sampled peer
    stands for; the config layer guarantees ``weight >= 1``. When
    ``K * m == population`` (``weight == 1``) the hybrid degenerates
    to *full sampling*: every user is simulated and the fluid layer is
    pure cross-check — the mode the validation suite runs in.
    """

    population: int
    n_subswarms: int
    subswarm_size: int
    weight: float
    coupling_interval: int
    shard_seeds: Tuple[int, ...]

    @property
    def sampled_users(self) -> int:
        return self.n_subswarms * self.subswarm_size


@dataclass(frozen=True)
class CouplingRow:
    """The conservation ledger at one coupling boundary.

    All masses are in population users (shard sums scaled by the shard
    weight). The hard identity ``unarrived + active + departed ==
    population`` holds exactly (see
    :meth:`HybridMetrics.conservation_errors`); ``residual`` is the
    *soft* deviation of the event-driven present mass from the
    independently integrated fluid trajectory, normalised by the
    population.
    """

    time: float
    #: Cumulative scaled arrivals across subswarms.
    arrived: float
    #: Scaled peers currently present (downloaders + lingering seeds).
    active: float
    #: Scaled lingering-seed share of ``active`` (completed users that
    #: have not departed yet; 0 under the paper's depart-on-completion).
    seeds: float
    #: Scaled peers that left (completed-and-departed plus churned).
    departed: float
    #: Cumulative scaled completions.
    completed: float
    #: Cumulative scaled users holding >= 1 piece.
    bootstrapped: float
    #: Population mass still in the fluid arrival reservoir.
    unarrived: float
    #: Measured swarm effectiveness fed back into the fluid layer
    #: (eta-hat: bootstrapped / arrived, the exchange-probability proxy).
    effectiveness: float
    #: Weighted mean ``u/d`` fairness across subswarms (None before any
    #: compliant user is active).
    fairness_ud: Optional[float]
    #: Fluid trajectory at this boundary, for the residual cross-check.
    fluid_downloaders: float
    fluid_seeds: float
    #: ``|active - (fluid_downloaders + fluid_seeds)| / population``.
    residual: float


@dataclass
class HybridMetrics(SimulationMetrics):
    """Population-level metrics assembled from scaled subswarm runs.

    The base-class surface keeps its meaning with one deliberate split
    in scale: *per-peer* data (``peers``) and the scalar totals are
    the raw pooled sample — every ratio statistic computed from them
    (completion fraction, fairness, susceptibility, mean times) is
    scale-invariant, so the sample estimates the population directly —
    while the *time series* (``samples``) and the coupling ledger are
    scaled up by the shard weight to population level, which is what
    population-scale plots and the conservation identity need.
    """

    population: int = 0
    n_subswarms: int = 0
    subswarm_size: int = 0
    shard_weight: float = 1.0
    coupling_interval: int = 0
    #: One row per coupling boundary — the fluid<->event ledger.
    coupling: List[CouplingRow] = field(default_factory=list)
    #: ``metrics_digest`` of each subswarm, in shard order.
    shard_digests: List[str] = field(default_factory=list)
    #: Deciles (p10..p90) of per-peer credit (pieces uploaded) across
    #: the pooled sample — the credit-distribution side of the
    #: coupling exchange, reported at end of run.
    credit_deciles: List[float] = field(default_factory=list)
    #: Max over boundaries of the fluid cross-check residual.
    fluid_residual: float = 0.0
    digest_lineage: str = "hybrid-v1"

    def population_completed(self) -> float:
        """Estimated number of population users that finished."""
        return self.completion_fraction(include_freeriders=True) * self.population

    def conservation_errors(self, tolerance: float = 1e-6) -> List[str]:
        """Violations of the hard population-conservation identity.

        At every coupling boundary each of the ``population`` users
        must be in exactly one of: unarrived (fluid reservoir),
        present in a subswarm (downloader or lingering seed), or
        departed. Returns human-readable descriptions of any boundary
        where the scaled masses do not add back up to the population
        (empty list = ledger balances).
        """
        errors: List[str] = []
        for row in self.coupling:
            total = row.unarrived + row.active + row.departed
            if abs(total - self.population) > tolerance * max(self.population, 1):
                errors.append(
                    f"t={row.time}: unarrived({row.unarrived:.3f}) + "
                    f"active({row.active:.3f}) + departed({row.departed:.3f})"
                    f" = {total:.3f} != population({self.population})")
            if not row.arrived - 1e-9 <= self.population + 1e-9:
                errors.append(f"t={row.time}: arrived exceeds population")
        return errors


def shard_seed(base_seed: int, index: int) -> int:
    """Deterministic RNG seed for shard ``index`` of a hybrid run.

    Hash-derived (not ``base_seed + index``) so neighbouring hybrid
    base seeds can never alias each other's shard streams — the same
    trick :mod:`repro.experiments.replicates` uses for retry seeds.
    """
    digest = hashlib.sha256(
        f"hybrid-v1|{base_seed}|shard={index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def shard_plan(config: SimulationConfig) -> ShardPlan:
    """The shard decomposition a hybrid run of ``config`` will use."""
    if config.population is None:
        raise ConfigurationError(
            "shard_plan needs a hybrid config (population set); use "
            "SimulationConfig.with_population")
    k = config.n_subswarms
    m = config.n_users
    return ShardPlan(
        population=config.population,
        n_subswarms=k,
        subswarm_size=m,
        weight=config.population / (k * m),
        coupling_interval=config.coupling_interval,
        shard_seeds=tuple(shard_seed(config.seed, i) for i in range(k)),
    )


def shard_config(config: SimulationConfig, index: int) -> SimulationConfig:
    """The plain (non-hybrid) config subswarm ``index`` runs.

    Exactly the template with ``population`` cleared and the derived
    shard seed — a shard is a *normal* run on whatever backend the
    template names. Nothing else is rescaled: the template already
    describes one shard, and the population system is defined as its
    per-capita scale-up (module docstring, docs/SCALING.md).
    """
    if config.population is None:
        raise ConfigurationError("shard_config needs a hybrid config")
    if not 0 <= index < config.n_subswarms:
        raise ConfigurationError(
            f"shard index {index} out of range [0, {config.n_subswarms})")
    return replace(config, population=None,
                   seed=shard_seed(config.seed, index))


def reference_config(config: SimulationConfig) -> SimulationConfig:
    """The full event-driven run a hybrid of ``config`` approximates.

    All ``population`` users in one swarm, with the *seeder count*
    scaled by ``population / n_users`` so both per-capita seed
    bandwidth and the seeding topology match the shards' (a single
    seeder with K-fold capacity is not equivalent: its bounded
    neighbor view would bottleneck piece injection). When the scale is
    not an integer the rounded count keeps exact total bandwidth via a
    capacity adjustment. Used by the validation suite and the CI
    hybrid smoke.
    """
    if config.population is None:
        raise ConfigurationError("reference_config needs a hybrid config")
    scale = config.population / config.n_users
    total_bw = config.n_seeders * config.seeder_capacity * scale
    n_seeders = max(1, round(config.n_seeders * scale))
    return replace(
        config, population=None, n_users=config.population,
        n_seeders=n_seeders, seeder_capacity=total_bw / n_seeders,
    )


def _shard_task(config: SimulationConfig, index: int) -> SimulationMetrics:
    """Executor task: run one subswarm and return its metrics.

    Module-level so it pickles into spawn-started pool workers.
    """
    from repro.sim.runner import run_simulation

    return run_simulation(shard_config(config, index)).metrics


def _run_shards(config: SimulationConfig, plan: ShardPlan, *,
                jobs: Optional[int], timeout: Optional[float],
                start_method: str) -> List[SimulationMetrics]:
    """Run all subswarms, inline or on the sweep executor pool.

    ``jobs=None`` or ``1`` runs shards sequentially in-process — the
    cheap default for library callers and the *only* legal path inside
    a daemonic worker (sweep workers cannot have children), which is
    detected and forced. Results are always in shard-index order, so
    both paths aggregate identically.
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    daemonic = multiprocessing.current_process().daemon
    if daemonic or jobs is None or jobs == 1:
        return [_shard_task(config, i) for i in range(plan.n_subswarms)]

    from repro.experiments.executor import TaskSpec, run_tasks

    specs = [TaskSpec(key=f"shard-{i}", fn=_shard_task, args=(config, i))
             for i in range(plan.n_subswarms)]
    report = run_tasks(specs, jobs=min(jobs, plan.n_subswarms),
                       timeout=timeout, start_method=start_method)
    metrics: List[SimulationMetrics] = []
    for index, result in enumerate(report.results):
        if not result.ok:
            raise HybridShardError(
                f"subswarm {index} failed after {result.attempts} "
                f"attempt(s): {result.error}")
        metrics.append(result.value)
    return metrics


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

def _sample_at(samples: Sequence[RoundSample], time: float,
               ) -> Optional[RoundSample]:
    """Latest sample with ``sample.time <= time`` (None before the
    first). Shards that finished early keep contributing their final
    state — a drained swarm stays drained."""
    chosen = None
    for sample in samples:
        if sample.time > time:
            break
        chosen = sample
    return chosen


def _mean_capacity(config: SimulationConfig) -> float:
    return sum(c.fraction * c.capacity for c in config.capacity_classes)


def _fluid_parameters(config: SimulationConfig, plan: ShardPlan,
                      ) -> Tuple[fluid_model.FluidParameters, float]:
    """Map the event-driven config onto fluid coefficients.

    Returns ``(params, seed_floor)``. Rates are files/round: a peer of
    mean compliant capacity uploads ``mean_cap / n_pieces`` files per
    round. Free-riders contribute demand but no supply, so the
    per-peer upload rate is discounted by the compliant fraction. The
    download cap is left unbounded — event-driven peers are
    receiver-unconstrained; the binding constraints (seeder bandwidth,
    piece availability) enter through ``seed_floor`` and the measured
    effectiveness feedback.
    """
    mu = (_mean_capacity(config) * (1.0 - config.freerider_fraction)
          / config.n_pieces)
    if mu <= 0:  # all-zero capacities: fluid layer has nothing to say
        mu = 1e-9
    gamma = (float("inf") if config.seed_linger_rate is None
             else config.seed_linger_rate)
    params = fluid_model.FluidParameters(
        arrival_rate=0.0,
        upload_rate=mu,
        effectiveness=1.0,
        seed_departure_rate=gamma,
        abort_rate=config.abort_rate,
    )
    # Infrastructure seeders in peer-equivalents: total population-scale
    # seed bandwidth (per-capita template bandwidth times P) over the
    # mean peer's bandwidth.
    per_capita_seed_bw = (config.n_seeders * config.seeder_capacity
                          / config.n_users)
    mean_cap = _mean_capacity(config)
    seed_floor = (per_capita_seed_bw * plan.population / mean_cap
                  if mean_cap > 0 else 0.0)
    return params, seed_floor


def _fluid_trajectory(config: SimulationConfig, plan: ShardPlan,
                      boundaries: Sequence[float],
                      effectiveness: Sequence[float],
                      horizon: int) -> Dict[float, Tuple[float, float]]:
    """Integrate the fluid aggregate over the run with coupling feedback.

    The arrival schedule is the population flash crowd; the
    effectiveness schedule is the piecewise-constant eta-hat measured
    from the subswarms at each boundary (the event -> fluid coupling).
    Returns ``{boundary_time: (downloaders, seeds)}``.
    """
    params, seed_floor = _fluid_parameters(config, plan)
    duration = config.flash_crowd_duration
    if duration > 0:
        arrival = fluid_model.flash_crowd_rate(plan.population, duration)
        x0 = 0.0
    else:
        arrival = 0.0
        x0 = float(plan.population)
    eta = fluid_model.stepwise(list(boundaries), list(effectiveness))
    dt = 0.05
    states = fluid_model.simulate_fluid_schedule(
        params, t_end=float(max(horizon, 1)), dt=dt, x0=x0, y0=0.0,
        arrival_rate=arrival, effectiveness=eta, seed_floor=seed_floor)
    out: Dict[float, Tuple[float, float]] = {}
    for t in boundaries:
        index = min(len(states) - 1, int(round(t / dt)))
        state = states[index]
        out[t] = (state.downloaders, state.seeds)
    return out


def _weighted_mean(values: Sequence[Optional[float]]) -> Optional[float]:
    present = [v for v in values if v is not None]
    if not present:
        return None
    return sum(present) / len(present)


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def _pool_peers(shards: Sequence[SimulationMetrics]) -> List[PeerSummary]:
    pooled: List[PeerSummary] = []
    for index, shard in enumerate(shards):
        offset = index * SHARD_ID_STRIDE
        for peer in shard.peers:
            if peer.peer_id >= SHARD_ID_STRIDE or peer.lineage_id >= SHARD_ID_STRIDE:
                raise SimulationError(
                    "shard peer id exceeds SHARD_ID_STRIDE; raise the "
                    "stride before pooling")
            pooled.append(replace(peer, peer_id=peer.peer_id + offset,
                                  lineage_id=peer.lineage_id + offset))
    return pooled


def _build_ledger(plan: ShardPlan, shards: Sequence[SimulationMetrics],
                  config: SimulationConfig,
                  ) -> Tuple[List[CouplingRow], List[RoundSample], int]:
    """The coupling pass: boundaries, scaled masses, fluid residual.

    Returns ``(rows, population_samples, horizon)``.
    """
    w = plan.weight
    horizon = max(shard.rounds_run for shard in shards)
    ci = plan.coupling_interval
    boundaries: List[float] = [float(t) for t in range(0, horizon + 1, ci)]
    if boundaries[-1] != float(horizon):
        boundaries.append(float(horizon))

    per_boundary: List[Dict[str, object]] = []
    for t in boundaries:
        arrived = active = completed = boot = 0.0
        uploaded = peer_up = fr_recv = 0.0
        fairness_ud: List[Optional[float]] = []
        fairness_du: List[Optional[float]] = []
        for shard in shards:
            sample = _sample_at(shard.samples, t)
            if sample is None:
                fairness_ud.append(None)
                fairness_du.append(None)
                continue
            arrived += sample.arrived
            active += sample.active_peers
            completed += sample.completed
            boot += sample.bootstrapped
            uploaded += sample.total_uploaded
            peer_up += sample.peer_uploaded
            fr_recv += sample.freerider_received
            fairness_ud.append(sample.fairness_ud)
            fairness_du.append(sample.fairness_du)
        eta_hat = min(1.0, boot / arrived) if arrived > 0 else 0.0
        per_boundary.append({
            "t": t, "arrived": arrived, "active": active,
            "completed": completed, "boot": boot, "uploaded": uploaded,
            "peer_up": peer_up, "fr_recv": fr_recv, "eta": eta_hat,
            "f_ud": _weighted_mean(fairness_ud),
            "f_du": _weighted_mean(fairness_du),
        })

    # Effectiveness feedback: the value integrated over [t_j, t_{j+1})
    # is the measurement taken at the interval's *end* — a zero-lag
    # retrospective fit. Feeding the start-of-interval value instead
    # would hold the fluid at eta ~ 0 for the whole first interval
    # (nobody has bootstrapped at t=0) and inflate the residual with
    # pure phase lag rather than genuine model disagreement.
    etas = [row["eta"] for row in per_boundary]
    fluid_at = _fluid_trajectory(
        config, plan, boundaries, etas[1:] + etas[-1:], horizon)

    rows: List[CouplingRow] = []
    pop_samples: List[RoundSample] = []
    for row in per_boundary:
        t = row["t"]
        arrived_s = w * row["arrived"]
        active_s = w * row["active"]
        completed_s = w * row["completed"]
        boot_s = w * row["boot"]
        departed_s = arrived_s - active_s
        # Lingering seeds: present peers beyond the still-downloading
        # mass. Exact with faultless physics; a lower bound once
        # crashes also remove downloaders.
        seeds_s = max(0.0, active_s - max(0.0, arrived_s - completed_s))
        unarrived = plan.population - arrived_s
        fx, fy = fluid_at[t]
        residual = abs(active_s - (fx + fy)) / plan.population
        rows.append(CouplingRow(
            time=t, arrived=arrived_s, active=active_s, seeds=seeds_s,
            departed=departed_s, completed=completed_s,
            bootstrapped=boot_s, unarrived=unarrived,
            effectiveness=row["eta"], fairness_ud=row["f_ud"],
            fluid_downloaders=fx, fluid_seeds=fy, residual=residual))
        pop_samples.append(RoundSample(
            time=t,
            active_peers=int(round(active_s)),
            arrived=int(round(arrived_s)),
            population=plan.population,
            bootstrapped=int(round(boot_s)),
            completed=int(round(completed_s)),
            fairness_ud=row["f_ud"],
            fairness_du=row["f_du"],
            total_uploaded=int(round(w * row["uploaded"])),
            peer_uploaded=int(round(w * row["peer_up"])),
            freerider_received=int(round(w * row["fr_recv"])),
        ))
    return rows, pop_samples, horizon


def _sum_faults(shards: Sequence[SimulationMetrics]) -> FaultCounters:
    totals = FaultCounters()
    for shard in shards:
        for f in fields(FaultCounters):
            setattr(totals, f.name,
                    getattr(totals, f.name) + getattr(shard.faults, f.name))
    return totals


def hybrid_digest(metrics: HybridMetrics) -> str:
    """Canonical digest of a hybrid run — the ``hybrid-v1`` identity.

    Covers the shard plan, every subswarm's own ``metrics_digest``,
    and the full coupling ledger; like :func:`metrics_digest` it
    excludes provenance (obs payloads, downgrade notices). Identical
    across ``--jobs`` counts by construction.
    """
    h = hashlib.sha256()
    h.update(f"hybrid-v1|P={metrics.population}|K={metrics.n_subswarms}"
             f"|m={metrics.subswarm_size}|w={metrics.shard_weight!r}"
             f"|ci={metrics.coupling_interval}".encode())
    for digest in metrics.shard_digests:
        h.update(digest.encode())
    for row in metrics.coupling:
        h.update(repr((row.time, row.arrived, row.active, row.seeds,
                       row.departed, row.completed, row.bootstrapped,
                       row.unarrived, row.effectiveness, row.fairness_ud,
                       row.residual)).encode())
    h.update(repr(tuple(metrics.credit_deciles)).encode())
    return h.hexdigest()


def _aggregate(config: SimulationConfig, plan: ShardPlan,
               shards: Sequence[SimulationMetrics]) -> HybridMetrics:
    rows, pop_samples, horizon = _build_ledger(plan, shards, config)
    peers = _pool_peers(shards)
    credits = sorted(float(p.uploaded) for p in peers)
    deciles = [_quantile(credits, q / 10.0) for q in range(1, 10)]

    metrics = HybridMetrics(
        samples=pop_samples,
        peers=peers,
        total_uploaded=sum(s.total_uploaded for s in shards),
        peer_uploaded=sum(s.peer_uploaded for s in shards),
        total_received_raw=sum(s.total_received_raw for s in shards),
        freerider_received=sum(s.freerider_received for s in shards),
        rounds_run=horizon,
        faults=_sum_faults(shards),
        degraded=any(s.degraded for s in shards),
        population=plan.population,
        n_subswarms=plan.n_subswarms,
        subswarm_size=plan.subswarm_size,
        shard_weight=plan.weight,
        coupling_interval=plan.coupling_interval,
        coupling=rows,
        shard_digests=[metrics_digest(s) for s in shards],
        credit_deciles=deciles,
        fluid_residual=max((r.residual for r in rows), default=0.0),
    )
    for shard in shards:
        if shard.backend_downgraded and metrics.backend_downgraded is None:
            metrics.backend_downgraded = shard.backend_downgraded
    from repro.obs.samplers import hybrid_coupling_store

    metrics.obs = {"series": hybrid_coupling_store(rows).to_compact()}
    errors = metrics.conservation_errors()
    if errors:
        raise SimulationError(
            "hybrid conservation ledger does not balance: "
            + "; ".join(errors[:3]))
    return metrics


def run_hybrid_simulation(config: SimulationConfig, *,
                          jobs: Optional[int] = None,
                          timeout: Optional[float] = None,
                          start_method: str = "spawn"):
    """Run ``config`` as a population-scale fluid/event-driven hybrid.

    Requires ``config.population``; :func:`repro.sim.runner.
    run_simulation` dispatches here automatically for such configs.
    ``jobs`` > 1 fans subswarms out on the sweep executor
    (:func:`repro.experiments.executor.run_tasks`); the default runs
    them inline, which is what nested contexts (sweep workers are
    daemonic) require and what small validation runs want anyway.
    Returns a :class:`repro.sim.runner.SimulationResult` whose
    ``metrics`` is a :class:`HybridMetrics`.
    """
    if config.population is None:
        raise ConfigurationError(
            "run_hybrid_simulation needs config.population; use "
            "SimulationConfig.with_population or plain run_simulation")
    plan = shard_plan(config)
    shards = _run_shards(config, plan, jobs=jobs, timeout=timeout,
                         start_method=start_method)
    metrics = _aggregate(config, plan, shards)

    from repro.sim.runner import SimulationResult

    return SimulationResult(config=config, metrics=metrics)
