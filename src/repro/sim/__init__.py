"""Event-driven P2P swarm simulator (Section V's experimental substrate).

This subpackage replaces the paper's closed-source TBeT-derived
simulator with an equivalent one: a discrete-event engine drives
one-second transfer rounds over a swarm of peers with heterogeneous
upload capacities; per-peer strategies (the six incentive mechanisms)
decide where each piece goes; metrics collectors sample exactly the
quantities plotted in Figures 4-6.

Quick start::

    from repro.names import Algorithm
    from repro.sim import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig(Algorithm.TCHAIN, seed=1))
    print(result.metrics.mean_completion_time())
"""

from repro.sim.arrivals import flash_crowd_arrivals, poisson_arrivals  # noqa: F401
from repro.sim.config import (  # noqa: F401
    AttackConfig,
    CapacityClass,
    ObsConfig,
    SimulationConfig,
    StrategyParameters,
    targeted_attack_for,
)
from repro.sim.engine import EventEngine  # noqa: F401
from repro.sim.faults import FaultConfig, FaultModel  # noqa: F401
from repro.sim.guards import GuardConfig, InvariantViolation  # noqa: F401
from repro.sim.hybrid import (  # noqa: F401
    CouplingRow,
    HybridMetrics,
    ShardPlan,
    hybrid_digest,
    reference_config,
    run_hybrid_simulation,
    shard_plan,
)
from repro.sim.metrics import SimulationMetrics, degradation_rows  # noqa: F401
from repro.sim.runner import Simulation, SimulationResult, run_simulation  # noqa: F401
from repro.sim.vector import (  # noqa: F401
    VectorFastSimulation,
    VectorSimulation,
    vector_unsupported_reason,
)

__all__ = [
    "AttackConfig",
    "CapacityClass",
    "CouplingRow",
    "EventEngine",
    "FaultConfig",
    "FaultModel",
    "GuardConfig",
    "HybridMetrics",
    "InvariantViolation",
    "ObsConfig",
    "ShardPlan",
    "Simulation",
    "SimulationConfig",
    "SimulationMetrics",
    "SimulationResult",
    "StrategyParameters",
    "VectorFastSimulation",
    "VectorSimulation",
    "degradation_rows",
    "flash_crowd_arrivals",
    "hybrid_digest",
    "poisson_arrivals",
    "reference_config",
    "run_hybrid_simulation",
    "run_simulation",
    "shard_plan",
    "targeted_attack_for",
    "vector_unsupported_reason",
]
