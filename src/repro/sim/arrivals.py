"""Arrival processes for swarm populations.

The paper's experiments use a *flash crowd*: one thousand users arrive
within the first 10 seconds (Section V-A). A Poisson process is also
provided for robustness experiments beyond the paper.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import ConfigurationError

__all__ = ["flash_crowd_arrivals", "poisson_arrivals"]


def flash_crowd_arrivals(n_users: int, duration: float,
                         rng: random.Random) -> List[float]:
    """Arrival times uniform over ``[0, duration)``, sorted ascending.

    With ``duration == 0`` every user arrives at time 0 (the extreme
    flash crowd assumed by Section IV-B's analysis).
    """
    if n_users < 0:
        raise ConfigurationError("n_users must be non-negative")
    if duration < 0:
        raise ConfigurationError("duration must be non-negative")
    if duration == 0:
        return [0.0] * n_users
    return sorted(rng.uniform(0.0, duration) for _ in range(n_users))


def poisson_arrivals(n_users: int, rate: float,
                     rng: random.Random) -> List[float]:
    """Poisson-process arrival times with the given rate (users/sec)."""
    if n_users < 0:
        raise ConfigurationError("n_users must be non-negative")
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    times: List[float] = []
    t = 0.0
    for _ in range(n_users):
        t += rng.expovariate(rate)
        times.append(t)
    return times
