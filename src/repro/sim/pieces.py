"""Piece bookkeeping: bitfields, availability, rarest-first selection.

The file being distributed is divided into ``M`` discrete pieces
(Section III). Each peer tracks the set of pieces it holds; the swarm
tracks per-piece availability so uploaders can pick the locally rarest
piece a receiver still needs — the selection policy the paper assumes
("users are equally likely to have a given piece, e.g., as achieved in
local-rarest-first piece selection").

Hot-path representation
-----------------------
A :class:`PieceSet` is an integer bitmask (bit ``i`` set = piece ``i``
held), so the swarm-wide queries — "which of your pieces do I need",
"do I need anything from you", "which pieces can I provide you" —
collapse to two or three machine-word operations on ``M``-bit ints
instead of per-call Python set algebra. Bit iteration is always in
ascending piece order, which doubles as the determinism guarantee the
equivalence tests rely on: unlike ``set`` iteration order, it is
identical on every Python version.

:class:`AvailabilityMap` keeps, besides the per-piece replica counts,
a *count-bucketed* index: one bitmask per distinct replica count. The
rarest needed piece is then found by intersecting the candidate mask
with the ascending count buckets until one hits, rather than scoring
every candidate piece individually.
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from typing import Dict, Iterable, Iterator, List, Optional, Set, Union

from repro.errors import ConfigurationError, SimulationError

__all__ = ["PieceSet", "AvailabilityMap", "rarest_first",
           "iter_bits", "bits_to_list"]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit indices of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_to_list(mask: int) -> List[int]:
    """The set-bit indices of ``mask`` as an ascending list.

    ``list(iter_bits(...))`` on purpose: the C-level list construction
    from the generator measures faster than both an inline bit-walk
    and a byte-table walk for the sparse masks the simulator sees.
    """
    return list(iter_bits(mask))


class PieceSet:
    """The set of pieces a peer holds, out of ``M`` total.

    Backed by a single integer bitmask with bounds checking and the
    handful of swarm-specific queries (missing pieces, providable
    pieces for a partner, completion). Iteration yields piece ids in
    ascending order.
    """

    __slots__ = ("_m", "mask", "_count")

    def __init__(self, n_pieces: int, have: Optional[Iterable[int]] = None) -> None:
        if n_pieces < 1:
            raise ConfigurationError("n_pieces must be positive")
        self._m = n_pieces
        #: The raw bitmask (bit ``i`` set = piece ``i`` held). A plain
        #: attribute, not a property: hot paths read it millions of
        #: times per run. Treat as read-only; mutate via :meth:`add`.
        self.mask = 0
        self._count = 0
        if have is not None:
            for piece in have:
                self.add(piece)

    @classmethod
    def full(cls, n_pieces: int) -> "PieceSet":
        """A complete piece set (e.g. the seeder's)."""
        ps = cls(n_pieces)
        ps.mask = (1 << n_pieces) - 1
        ps._count = n_pieces
        return ps

    @property
    def n_pieces(self) -> int:
        return self._m

    def __len__(self) -> int:
        return self._count

    def __contains__(self, piece: int) -> bool:
        return 0 <= piece < self._m and (self.mask >> piece) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self.mask)

    def _check(self, piece: int) -> None:
        if not 0 <= piece < self._m:
            raise SimulationError(
                f"piece index {piece} outside [0, {self._m})")

    def add(self, piece: int) -> bool:
        """Add a piece; returns True if it was new."""
        self._check(piece)
        bit = 1 << piece
        if self.mask & bit:
            return False
        self.mask |= bit
        self._count += 1
        return True

    def has(self, piece: int) -> bool:
        self._check(piece)
        return (self.mask >> piece) & 1 == 1

    @property
    def complete(self) -> bool:
        return self._count == self._m

    def missing_mask(self) -> int:
        """Bitmask of pieces this peer still needs."""
        return ~self.mask & ((1 << self._m) - 1)

    def missing(self) -> Set[int]:
        """Pieces this peer still needs."""
        return set(iter_bits(self.missing_mask()))

    def providable_mask(self, other: "PieceSet") -> int:
        """Bitmask of pieces we hold that ``other`` lacks."""
        if other._m != self._m:
            raise SimulationError("piece sets belong to different files")
        return self.mask & ~other.mask

    def providable_to(self, other: "PieceSet") -> Set[int]:
        """Pieces we hold that ``other`` lacks."""
        return set(iter_bits(self.providable_mask(other)))

    def needs_from(self, other: "PieceSet") -> bool:
        """True if ``other`` holds at least one piece we lack."""
        return other.providable_mask(self) != 0

    def copy(self) -> "PieceSet":
        ps = PieceSet(self._m)
        ps.mask = self.mask
        ps._count = self._count
        return ps

    @property
    def raw(self) -> Set[int]:
        """The held piece ids as a plain set.

        Retained for API compatibility with the pre-bitmask
        representation; now a fresh copy, so mutating it never
        corrupts the peer. Hot paths should use :attr:`mask`.
        """
        return set(iter_bits(self.mask))


class AvailabilityMap:
    """Per-piece replica counts across the swarm, bucketed by count.

    Maintained incrementally by the swarm as pieces propagate and
    peers come and go; consulted by :func:`rarest_first`. Alongside
    the flat per-piece counts it maintains ``_buckets``: for each
    distinct replica count, the bitmask of pieces currently at that
    count, plus a sorted list of the non-empty counts. Rarest-first
    then probes buckets in ascending count order instead of scanning
    every candidate.
    """

    __slots__ = ("_counts", "_buckets", "_levels")

    def __init__(self, n_pieces: int) -> None:
        if n_pieces < 1:
            raise ConfigurationError("n_pieces must be positive")
        self._counts = [0] * n_pieces
        #: replica count -> bitmask of pieces with exactly that count.
        self._buckets: Dict[int, int] = {0: (1 << n_pieces) - 1}
        #: Sorted non-empty bucket counts (ascending).
        self._levels: List[int] = [0]

    @property
    def n_pieces(self) -> int:
        return len(self._counts)

    def count(self, piece: int) -> int:
        return self._counts[piece]

    def _move(self, piece: int, old: int, new: int) -> None:
        """Move ``piece``'s bit from bucket ``old`` to bucket ``new``."""
        bit = 1 << piece
        remaining = self._buckets[old] & ~bit
        if remaining:
            self._buckets[old] = remaining
        else:
            del self._buckets[old]
            self._levels.pop(bisect_left(self._levels, old))
        if new in self._buckets:
            self._buckets[new] |= bit
        else:
            self._buckets[new] = bit
            insort(self._levels, new)

    def add_piece(self, piece: int) -> None:
        old = self._counts[piece]
        self._counts[piece] = old + 1
        self._move(piece, old, old + 1)

    def remove_piece(self, piece: int) -> None:
        old = self._counts[piece]
        if old <= 0:
            raise SimulationError("availability went negative")
        self._counts[piece] = old - 1
        self._move(piece, old, old - 1)

    def add_peer(self, pieces: PieceSet) -> None:
        """Register every piece of an arriving peer."""
        for piece in pieces:
            self.add_piece(piece)

    def remove_peer(self, pieces: PieceSet) -> None:
        """Unregister a departing peer's pieces."""
        for piece in pieces:
            self.remove_piece(piece)

    def rarity_key(self, piece: int) -> int:
        return self._counts[piece]

    def rarest_subset(self, candidate_mask: int) -> int:
        """Bitmask of the minimum-count pieces within ``candidate_mask``.

        Probes the count buckets in ascending order and returns the
        first non-empty intersection — the full rarest tie set — or 0
        when ``candidate_mask`` is empty.
        """
        if not candidate_mask:
            return 0
        for level in self._levels:
            hit = self._buckets[level] & candidate_mask
            if hit:
                return hit
        return 0


def rarest_first(candidates: Union[int, Iterable[int]],
                 availability: AvailabilityMap,
                 rng: random.Random) -> Optional[int]:
    """Pick the rarest piece among ``candidates``; random tie-break.

    ``candidates`` is either a bitmask (the hot-path form) or any
    iterable of piece ids. Ties are enumerated in ascending piece
    order before drawing, so a fixed seed reproduces the same pick on
    every Python version (``set`` iteration order, which the previous
    implementation inherited, is not portable). Returns ``None`` when
    there are no candidates; consumes exactly one draw when there is a
    tie and none otherwise, mirroring the original implementation.
    """
    if isinstance(candidates, int):
        mask = candidates
    else:
        mask = 0
        for piece in candidates:
            mask |= 1 << piece
    tie = availability.rarest_subset(mask)
    if not tie:
        return None
    if tie & (tie - 1) == 0:  # single bit: unique rarest piece
        return tie.bit_length() - 1
    return rng.choice(bits_to_list(tie))
