"""Piece bookkeeping: bitfields, availability, rarest-first selection.

The file being distributed is divided into ``M`` discrete pieces
(Section III). Each peer tracks the set of pieces it holds; the swarm
tracks per-piece availability so uploaders can pick the locally rarest
piece a receiver still needs — the selection policy the paper assumes
("users are equally likely to have a given piece, e.g., as achieved in
local-rarest-first piece selection").
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Set

from repro.errors import ConfigurationError, SimulationError

__all__ = ["PieceSet", "AvailabilityMap", "rarest_first"]


class PieceSet:
    """The set of pieces a peer holds, out of ``M`` total.

    A thin wrapper over a Python set with bounds checking and the
    handful of swarm-specific queries (missing pieces, providable
    pieces for a partner, completion).
    """

    __slots__ = ("_m", "_have")

    def __init__(self, n_pieces: int, have: Optional[Iterable[int]] = None) -> None:
        if n_pieces < 1:
            raise ConfigurationError("n_pieces must be positive")
        self._m = n_pieces
        self._have: Set[int] = set()
        if have is not None:
            for piece in have:
                self.add(piece)

    @classmethod
    def full(cls, n_pieces: int) -> "PieceSet":
        """A complete piece set (e.g. the seeder's)."""
        ps = cls(n_pieces)
        ps._have = set(range(n_pieces))
        return ps

    @property
    def n_pieces(self) -> int:
        return self._m

    def __len__(self) -> int:
        return len(self._have)

    def __contains__(self, piece: int) -> bool:
        return piece in self._have

    def __iter__(self) -> Iterator[int]:
        return iter(self._have)

    def _check(self, piece: int) -> None:
        if not 0 <= piece < self._m:
            raise SimulationError(
                f"piece index {piece} outside [0, {self._m})")

    def add(self, piece: int) -> bool:
        """Add a piece; returns True if it was new."""
        self._check(piece)
        if piece in self._have:
            return False
        self._have.add(piece)
        return True

    def has(self, piece: int) -> bool:
        self._check(piece)
        return piece in self._have

    @property
    def complete(self) -> bool:
        return len(self._have) == self._m

    def missing(self) -> Set[int]:
        """Pieces this peer still needs."""
        return set(range(self._m)) - self._have

    def providable_to(self, other: "PieceSet") -> Set[int]:
        """Pieces we hold that ``other`` lacks."""
        if other.n_pieces != self._m:
            raise SimulationError("piece sets belong to different files")
        return self._have - other._have

    def needs_from(self, other: "PieceSet") -> bool:
        """True if ``other`` holds at least one piece we lack."""
        return bool(other.providable_to(self))

    def copy(self) -> "PieceSet":
        ps = PieceSet(self._m)
        ps._have = set(self._have)
        return ps

    @property
    def raw(self) -> Set[int]:
        """The internal piece-id set (read-only by convention).

        Exposed for hot-path set algebra in the swarm; callers must
        not mutate it.
        """
        return self._have


class AvailabilityMap:
    """Per-piece replica counts across the swarm.

    Maintained incrementally by the swarm as pieces propagate and
    peers come and go; consulted by :func:`rarest_first`.
    """

    __slots__ = ("_counts",)

    def __init__(self, n_pieces: int) -> None:
        if n_pieces < 1:
            raise ConfigurationError("n_pieces must be positive")
        self._counts = [0] * n_pieces

    @property
    def n_pieces(self) -> int:
        return len(self._counts)

    def count(self, piece: int) -> int:
        return self._counts[piece]

    def add_piece(self, piece: int) -> None:
        self._counts[piece] += 1

    def add_peer(self, pieces: PieceSet) -> None:
        """Register every piece of an arriving peer."""
        for piece in pieces:
            self._counts[piece] += 1

    def remove_peer(self, pieces: PieceSet) -> None:
        """Unregister a departing peer's pieces."""
        for piece in pieces:
            self._counts[piece] -= 1
            if self._counts[piece] < 0:
                raise SimulationError("availability went negative")

    def rarity_key(self, piece: int) -> int:
        return self._counts[piece]


def rarest_first(candidates: Iterable[int], availability: AvailabilityMap,
                 rng: random.Random) -> Optional[int]:
    """Pick the rarest piece among ``candidates``; random tie-break.

    Returns ``None`` when there are no candidates.
    """
    best: List[int] = []
    best_count: Optional[int] = None
    for piece in candidates:
        count = availability.count(piece)
        if best_count is None or count < best_count:
            best = [piece]
            best_count = count
        elif count == best_count:
            best.append(piece)
    if not best:
        return None
    return best[0] if len(best) == 1 else rng.choice(best)
