"""Discrete-event simulation engine.

A minimal but complete event engine in the style used by network
simulators: a priority queue of timestamped events, a monotonically
advancing clock, and support for one-shot and periodic events. The
swarm simulator schedules peer arrivals, departures, identity resets,
and the per-round transfer tick as events on this engine.

Events with equal timestamps fire in scheduling order (FIFO), which
keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional

from repro.errors import SimulationError

__all__ = ["Event", "EventEngine", "PeriodicHandle"]

EventCallback = Callable[["EventEngine"], None]


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, sequence number)."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Engine hook: called exactly once when a still-queued event is
    #: cancelled, so the engine's live-event counter stays O(1).
    _on_cancel: Optional[Callable[[], None]] = field(
        compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
            self._on_cancel = None


class PeriodicHandle:
    """Cancellation handle for a :meth:`EventEngine.schedule_every` chain.

    Unlike cancelling a single :class:`Event` (which would only skip
    one firing while the chain reschedules itself), ``cancel()`` here
    stops the whole periodic chain: the pending occurrence is removed
    from the queue and no further ones are scheduled.
    """

    __slots__ = ("name", "_current", "_cancelled")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._current: Optional[Event] = None
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop the periodic chain permanently (idempotent)."""
        self._cancelled = True
        if self._current is not None:
            self._current.cancel()
            self._current = None


class EventEngine:
    """Heap-based discrete event loop.

    Typical use::

        engine = EventEngine()
        engine.schedule_at(0.0, lambda e: ..., name="arrival")
        engine.schedule_every(1.0, tick, name="round")
        engine.run_until(600.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self._running = False
        self._live = 0  # queued, non-cancelled events (kept O(1))
        self.events_fired = 0
        #: Optional dispatch profiler (duck-typed: anything with an
        #: ``add(name, elapsed)`` method, in practice
        #: :class:`repro.obs.profiler.SpanProfiler`). When set, every
        #: fired event is timed under ``engine.<kind>``, where the kind
        #: is the event name up to the first ``:`` (so ``arrival:17``
        #: and ``arrival:23`` aggregate into one span).
        self.profiler = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events — O(1).

        Maintained as a live counter (incremented on schedule,
        decremented on fire or cancel) rather than a heap scan: this is
        called from hot invariant checks.
        """
        return self._live

    def _release(self) -> None:
        self._live -= 1

    def schedule_at(self, time: float, callback: EventCallback,
                    name: str = "") -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now ({self._now})")
        event = Event(time=float(time), sequence=next(self._counter),
                      callback=callback, name=name, _on_cancel=self._release)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def schedule_in(self, delay: float, callback: EventCallback,
                    name: str = "") -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, name=name)

    def schedule_every(self, interval: float, callback: EventCallback,
                       name: str = "", start_delay: Optional[float] = None,
                       ) -> PeriodicHandle:
        """Schedule a periodic event.

        ``callback`` fires every ``interval`` starting after
        ``start_delay`` (default: one interval from now). The returned
        :class:`PeriodicHandle`'s ``cancel()`` stops the *whole* chain —
        the queued occurrence is dropped and nothing is rescheduled.
        (:meth:`stop`, or raising from the callback, still halts the
        run as before.)
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        first = interval if start_delay is None else start_delay
        handle = PeriodicHandle(name=name)

        def fire(engine: "EventEngine") -> None:
            if handle.cancelled:
                return
            callback(engine)
            if not handle.cancelled:
                handle._current = engine.schedule_in(interval, fire, name=name)

        handle._current = self.schedule_in(first, fire, name=name)
        return handle

    def step(self) -> bool:
        """Fire the next event; return False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue  # _live already decremented at cancel time
            if event.time < self._now:
                raise SimulationError("event queue corrupted: time went backwards")
            self._live -= 1
            event._on_cancel = None  # fired: a late cancel is a no-op
            self._now = event.time
            self.events_fired += 1
            if self.profiler is None:
                event.callback(self)
            else:
                start = perf_counter()
                event.callback(self)
                kind = event.name.partition(":")[0] or "anonymous"
                self.profiler.add(f"engine.{kind}", perf_counter() - start)
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Run events with ``time <= end_time``.

        When the loop exhausts the queue (or the horizon) the clock is
        fast-forwarded to ``end_time`` — simulated time passed with
        nothing scheduled in it. When the run is halted early via
        :meth:`stop`, the clock stays at the last fired event: the
        simulation *ended* there, and advancing past it would let an
        early-terminating run report a finish time it never reached.

        ``max_events`` guards against runaway periodic chains.
        """
        self._running = True
        fired = 0
        stopped = True
        try:
            while self._running and self._queue:
                nxt = self._peek()
                if nxt is None or nxt.time > end_time:
                    break
                self.step()
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before {end_time}")
            stopped = not self._running
        finally:
            self._running = False
        if not stopped and self._now < end_time:
            self._now = float(end_time)

    def run(self, max_events: int = 1_000_000) -> None:
        """Run until the queue drains (bounded by ``max_events``)."""
        self._running = True
        fired = 0
        try:
            while self._running and self.step():
                fired += 1
                if fired >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run`/:meth:`run_until` after this event."""
        self._running = False

    def upcoming(self, limit: int = 16) -> List[tuple]:
        """The next ``limit`` queued events as ``(time, name)`` pairs.

        Read-only forensics view (crash bundles embed it); cancelled
        events are skipped and the heap is left untouched.
        """
        live = [e for e in self._queue if not e.cancelled]
        return [(e.time, e.name)
                for e in heapq.nsmallest(limit, live)]

    def _peek(self) -> Optional[Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
