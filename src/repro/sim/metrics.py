"""Measurement: per-round samples and end-of-run summaries.

The collector samples, once per round, exactly the quantities plotted
in the paper's Figures 4-6:

* **efficiency** — download completion times (Figs. 4a/5b/6b);
* **fairness** — the experimental statistic ``mean(u_i / d_i)`` over
  compliant users that downloaded something (Figs. 4b/5c/6c);
* **bootstrapping** — fraction of arrived users holding at least one
  usable piece (Fig. 4c);
* **susceptibility** — fraction of all uploaded bandwidth received
  (usably) by free-riders (Figs. 5a/6a).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

__all__ = ["RoundSample", "PeerSummary", "TransferRecord", "FaultCounters",
           "MetricsCollector", "SimulationMetrics", "degradation_rows",
           "metrics_digest"]


@dataclass(frozen=True)
class TransferRecord:
    """One piece transfer (recorded when ``record_transfers`` is on).

    ``kind`` is one of ``"plain"`` (immediately usable piece),
    ``"seed"`` (T-Chain encrypted opportunistic upload), or
    ``"forward"`` (T-Chain indirect-reciprocity forward of a still
    encrypted piece).
    """

    time: float
    uploader_id: int
    target_id: int
    piece_id: int
    kind: str
    usable: bool
    #: True when fault injection dropped the transfer in flight (the
    #: uploader's budget was consumed but nothing was delivered).
    lost: bool = False


@dataclass
class FaultCounters:
    """Per-run tallies of injected faults and their fallout.

    ``transfers_lost`` counts sends dropped in flight (budget consumed,
    nothing delivered); ``transfers_retried`` counts later successful
    deliveries of a (receiver, piece) pair that had previously been
    lost — the recovery side of the loss process. ``obligations_expired``
    are pending T-Chain pieces dropped by the key timeout;
    ``obligations_orphaned`` are pending pieces dropped because the
    key-holding uploader departed or crashed. ``reports_dropped``
    counts delayed reputation reports discarded at flush time because
    the uploading lineage had departed (or crashed) before the report
    came due — there was no live identity left to credit. All stay
    zero in a fault-free run except ``obligations_orphaned``, which
    churn (``abort_rate``) can also produce.
    """

    transfers_lost: int = 0
    transfers_retried: int = 0
    obligations_expired: int = 0
    obligations_orphaned: int = 0
    peer_crashes: int = 0
    seeder_outages: int = 0
    seeder_downtime_rounds: int = 0
    delayed_reports: int = 0
    reports_dropped: int = 0


@dataclass(frozen=True)
class RoundSample:
    """One row of the per-round time series.

    Two fairness readings are taken over active compliant users:
    ``fairness_ud`` is the mean of ``u_i / d_i`` (the statistic named
    in Section V) and ``fairness_du`` the mean of ``d_i / u_i``
    (matching the per-user definition ``f_i = d_i / u_i`` of Eq. 3;
    this is the direction that exposes altruism's and reputation's
    unfairness, since equalised download rates make the ``u/d`` mean
    sit near 1 by construction).
    """

    time: float
    active_peers: int
    arrived: int
    population: int
    bootstrapped: int
    completed: int
    fairness_ud: Optional[float]
    fairness_du: Optional[float]
    total_uploaded: int
    peer_uploaded: int
    freerider_received: int

    @property
    def fairness(self) -> Optional[float]:
        """Headline fairness: the paper's ``mean(u_i / d_i)``."""
        return self.fairness_ud

    @property
    def bootstrapped_fraction(self) -> float:
        """Fraction of the *whole population* holding >= 1 piece."""
        return self.bootstrapped / self.population if self.population else 0.0

    @property
    def completed_fraction(self) -> float:
        return self.completed / self.population if self.population else 0.0

    @property
    def susceptibility(self) -> float:
        """Share of *user* upload bandwidth received by free-riders.

        Seeder uploads are excluded on both sides: susceptibility
        measures what free-riders extract from other users' incentive
        mechanisms, and under pure reciprocity (where users upload
        nothing) it must be zero, not the seeder's random spray.
        """
        if self.peer_uploaded == 0:
            return 0.0
        return self.freerider_received / self.peer_uploaded


@dataclass(frozen=True)
class PeerSummary:
    """End-of-run record for one (possibly departed) peer."""

    peer_id: int
    lineage_id: int
    capacity: float
    is_freerider: bool
    arrival_time: float
    bootstrap_time: Optional[float]
    completion_time: Optional[float]
    uploaded: int
    downloaded: int

    @property
    def download_duration(self) -> Optional[float]:
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def fairness_ratio(self) -> Optional[float]:
        """``u_i / d_i`` — the paper's experimental per-user statistic."""
        if self.downloaded == 0:
            return None if self.uploaded else 1.0
        return self.uploaded / self.downloaded


@dataclass
class SimulationMetrics:
    """Everything measured in one run."""

    samples: List[RoundSample] = field(default_factory=list)
    peers: List[PeerSummary] = field(default_factory=list)
    transfers: List[TransferRecord] = field(default_factory=list)
    total_uploaded: int = 0
    peer_uploaded: int = 0
    total_received_raw: int = 0
    freerider_received: int = 0
    rounds_run: int = 0
    faults: FaultCounters = field(default_factory=FaultCounters)
    #: Guard-subsystem outcome (see :mod:`repro.sim.guards`). These
    #: describe *how the run ended*, not the measured physics, and are
    #: deliberately excluded from :func:`metrics_digest` so a guarded
    #: run stays byte-identical to an unguarded one. ``degraded`` means
    #: the progress watchdog finalized a livelocked swarm early;
    #: ``stall`` holds its evidence and ``bundle_path`` the forensics
    #: bundle written at that point.
    degraded: bool = False
    stall: Optional[Dict[str, object]] = None
    bundle_path: Optional[str] = None
    #: Observability payload (:meth:`repro.obs.runtime.ObsRuntime.finalize`):
    #: compacted per-round series, aggregated profile spans, and trace
    #: accounting. Telemetry about *watching* the run, not the run
    #: itself — excluded from :func:`metrics_digest` like the guard
    #: fields above, and journaled digest-free by sweeps.
    obs: Optional[Dict[str, object]] = None
    #: Which determinism contract produced these numbers. ``parity-v1``
    #: engines (object, vector) are byte-identical to each other;
    #: ``fast-v1`` (vector-fast) draws from its own PCG64 stream and is
    #: only *distributionally* equivalent. Provenance, not physics —
    #: excluded from :func:`metrics_digest` (a digest already only
    #: means anything within one lineage), but journaled and cached so
    #: fast-lineage results can never masquerade as parity results.
    digest_lineage: str = "parity-v1"
    #: Set by :func:`repro.sim.runner.run_simulation` when a vector
    #: backend request silently fell back to the object engine for an
    #: unsupported config — holds the human-readable reason. Execution
    #: provenance like ``obs``: digest-excluded, surfaced through sweep
    #: telemetry so the downgrade is visible outside worker processes.
    backend_downgraded: Optional[str] = None

    # ------------------------------------------------------------------
    # Efficiency
    # ------------------------------------------------------------------
    def completion_times(self, include_freeriders: bool = False) -> List[float]:
        """Download durations of users that finished, sorted ascending."""
        times = [p.download_duration for p in self.peers
                 if p.download_duration is not None
                 and (include_freeriders or not p.is_freerider)]
        return sorted(times)

    def mean_completion_time(self) -> float:
        """Mean compliant download time; ``inf`` if nobody finished."""
        times = self.completion_times()
        return sum(times) / len(times) if times else math.inf

    def median_completion_time(self) -> float:
        times = self.completion_times()
        if not times:
            return math.inf
        mid = len(times) // 2
        if len(times) % 2:
            return times[mid]
        return 0.5 * (times[mid - 1] + times[mid])

    def completion_fraction(self, include_freeriders: bool = False) -> float:
        pop = [p for p in self.peers
               if include_freeriders or not p.is_freerider]
        if not pop:
            return 0.0
        done = sum(1 for p in pop if p.completion_time is not None)
        return done / len(pop)

    def completion_cdf(self) -> List[Dict[str, float]]:
        """CDF points (time, fraction complete) for Figure 4a-style plots."""
        times = self.completion_times()
        pop = sum(1 for p in self.peers if not p.is_freerider)
        if not pop:
            return []
        return [{"time": t, "fraction": (i + 1) / pop}
                for i, t in enumerate(times)]

    # ------------------------------------------------------------------
    # Fairness
    # ------------------------------------------------------------------
    def final_fairness(self) -> Optional[float]:
        """Mean ``u_i / d_i`` over compliant users at end of run."""
        ratios = [p.fairness_ratio for p in self.peers
                  if not p.is_freerider and p.fairness_ratio is not None]
        return sum(ratios) / len(ratios) if ratios else None

    def final_fairness_du(self) -> Optional[float]:
        """Mean ``d_i / u_i`` over compliant uploaders at end of run."""
        ratios = [p.downloaded / p.uploaded for p in self.peers
                  if not p.is_freerider and p.uploaded > 0]
        return sum(ratios) / len(ratios) if ratios else None

    def final_fairness_F(self) -> Optional[float]:
        """Eq. 3's statistic on the run: mean ``|log(d_i/u_i)|``.

        Computed over compliant users with both totals positive —
        0 means perfectly fair, matching the analytical layer
        (:func:`repro.core.metrics.fairness`).
        """
        values = [abs(math.log(p.downloaded / p.uploaded))
                  for p in self.peers
                  if not p.is_freerider and p.uploaded > 0
                  and p.downloaded > 0]
        return sum(values) / len(values) if values else None

    def fairness_series(self, kind: str = "ud") -> List[Dict[str, float]]:
        """Per-round fairness; ``kind`` selects ``"ud"`` or ``"du"``."""
        if kind not in ("ud", "du"):
            raise ValueError("kind must be 'ud' or 'du'")
        attr = "fairness_ud" if kind == "ud" else "fairness_du"
        return [{"time": s.time, "fairness": getattr(s, attr)}
                for s in self.samples if getattr(s, attr) is not None]

    def mean_fairness_between(self, t_start: float, t_end: float,
                              kind: str = "du") -> Optional[float]:
        """Average of the fairness series over a time window."""
        values = [r["fairness"] for r in self.fairness_series(kind)
                  if t_start <= r["time"] <= t_end]
        return sum(values) / len(values) if values else None

    # ------------------------------------------------------------------
    # Bootstrapping
    # ------------------------------------------------------------------
    def bootstrap_series(self) -> List[Dict[str, float]]:
        return [{"time": s.time, "fraction": s.bootstrapped_fraction}
                for s in self.samples]

    def time_to_bootstrap_fraction(self, fraction: float) -> float:
        """First sample time when >= ``fraction`` of users had a piece."""
        for s in self.samples:
            if s.bootstrapped_fraction >= fraction:
                return s.time
        return math.inf

    def mean_bootstrap_time(self) -> float:
        """Mean time-to-first-piece over users that ever bootstrapped."""
        times = [p.bootstrap_time - p.arrival_time for p in self.peers
                 if p.bootstrap_time is not None]
        return sum(times) / len(times) if times else math.inf

    def bootstrapped_fraction_final(self) -> float:
        if not self.peers:
            return 0.0
        done = sum(1 for p in self.peers if p.bootstrap_time is not None)
        return done / len(self.peers)

    # ------------------------------------------------------------------
    # Free-riding
    # ------------------------------------------------------------------
    def susceptibility(self) -> float:
        """Fraction of user-uploaded bandwidth usably received by
        free-riders (seeder uploads excluded; see RoundSample)."""
        if self.peer_uploaded == 0:
            return 0.0
        return self.freerider_received / self.peer_uploaded

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def observed_loss_rate(self) -> float:
        """Fraction of attempted transfers that were lost in flight."""
        attempted = self.total_uploaded + self.faults.transfers_lost
        if attempted == 0:
            return 0.0
        return self.faults.transfers_lost / attempted


class MetricsCollector:
    """Accumulates transfer counts and per-round samples during a run."""

    def __init__(self) -> None:
        self.metrics = SimulationMetrics()
        self._freerider_received = 0
        self._total_uploaded = 0
        self._peer_uploaded = 0
        self.faults = FaultCounters()

    # Read-only mid-run views, used by the invariant guards (the
    # accumulators themselves stay private: only the runner writes).
    @property
    def total_uploaded_so_far(self) -> int:
        return self._total_uploaded

    @property
    def peer_uploaded_so_far(self) -> int:
        return self._peer_uploaded

    @property
    def freerider_received_so_far(self) -> int:
        return self._freerider_received

    # Called by the runner on every executed transfer.
    def record_transfer(self, to_freerider: bool, usable: bool,
                        from_seeder: bool = False) -> None:
        self._total_uploaded += 1
        if not from_seeder:
            self._peer_uploaded += 1
            if to_freerider and usable:
                self._freerider_received += 1

    def record_unlock(self, for_freerider: bool) -> None:
        """A previously encrypted piece became usable."""
        if for_freerider:
            self._freerider_received += 1

    def add_transfer_counts(self, total: int, peer: int,
                            freerider: int) -> None:
        """Fold in transfer counters accumulated outside the collector.

        The vector backend batches its per-send bookkeeping in local
        integers and flushes here before every sample and at finalize,
        which keeps the sampled counter snapshots identical to calling
        :meth:`record_transfer` / :meth:`record_unlock` per event.
        """
        self._total_uploaded += total
        self._peer_uploaded += peer
        self._freerider_received += freerider

    # ------------------------------------------------------------------
    # Fault events (called by the runner's fault-injection hooks)
    # ------------------------------------------------------------------
    def record_lost_transfer(self) -> None:
        """A send was dropped in flight; budget spent, nothing arrived."""
        self.faults.transfers_lost += 1

    def record_retried_transfer(self) -> None:
        """A previously lost (receiver, piece) delivery finally landed."""
        self.faults.transfers_retried += 1

    def record_expired_obligations(self, count: int = 1) -> None:
        self.faults.obligations_expired += count

    def record_orphaned_obligations(self, count: int = 1) -> None:
        self.faults.obligations_orphaned += count

    def record_crash(self) -> None:
        self.faults.peer_crashes += 1

    def record_seeder_outage(self) -> None:
        self.faults.seeder_outages += 1

    def record_seeder_downtime(self, rounds: int = 1) -> None:
        self.faults.seeder_downtime_rounds += rounds

    def record_delayed_report(self) -> None:
        self.faults.delayed_reports += 1

    def record_dropped_report(self) -> None:
        """A delayed report's lineage departed before it came due."""
        self.faults.reports_dropped += 1

    def sample(self, time: float, active_peers: int, arrived: int,
               population: int, bootstrapped: int, completed: int,
               fairness_ud: Optional[float],
               fairness_du: Optional[float]) -> None:
        self.metrics.samples.append(RoundSample(
            time=time,
            active_peers=active_peers,
            arrived=arrived,
            population=population,
            bootstrapped=bootstrapped,
            completed=completed,
            fairness_ud=fairness_ud,
            fairness_du=fairness_du,
            total_uploaded=self._total_uploaded,
            peer_uploaded=self._peer_uploaded,
            freerider_received=self._freerider_received,
        ))

    def finalize(self, peers: List[PeerSummary], rounds_run: int,
                 total_received_raw: int = 0) -> SimulationMetrics:
        self.metrics.peers = peers
        self.metrics.total_uploaded = self._total_uploaded
        self.metrics.peer_uploaded = self._peer_uploaded
        self.metrics.total_received_raw = total_received_raw
        self.metrics.freerider_received = self._freerider_received
        self.metrics.rounds_run = rounds_run
        self.metrics.faults = self.faults
        return self.metrics


def metrics_digest(metrics: SimulationMetrics) -> str:
    """A stable SHA-256 fingerprint of one run's complete measurements.

    Covers every per-round sample, every peer summary, the aggregate
    totals, and the fault counters — if any of them changes by one ULP
    the digest changes. Used by the seed-pinned equivalence tests to
    assert that hot-path data-structure rewrites leave simulation
    results byte-identical, and that a fixed seed reproduces the same
    run across Python versions (``repr`` of floats is exact for
    doubles, so the serialisation is portable).
    """
    h = hashlib.sha256()
    for s in metrics.samples:
        h.update(repr((s.time, s.active_peers, s.arrived, s.population,
                       s.bootstrapped, s.completed, s.fairness_ud,
                       s.fairness_du, s.total_uploaded, s.peer_uploaded,
                       s.freerider_received)).encode())
    for p in metrics.peers:
        h.update(repr((p.peer_id, p.lineage_id, p.capacity, p.is_freerider,
                       p.arrival_time, p.bootstrap_time, p.completion_time,
                       p.uploaded, p.downloaded)).encode())
    f = metrics.faults
    h.update(repr((metrics.total_uploaded, metrics.peer_uploaded,
                   metrics.total_received_raw, metrics.freerider_received,
                   metrics.rounds_run, f.transfers_lost, f.transfers_retried,
                   f.obligations_expired, f.obligations_orphaned,
                   f.peer_crashes, f.seeder_outages, f.seeder_downtime_rounds,
                   f.delayed_reports, f.reports_dropped)).encode())
    return h.hexdigest()


def degradation_rows(runs: Mapping[float, SimulationMetrics],
                     ) -> List[Dict[str, float]]:
    """Degradation-vs-loss-rate summary for one algorithm.

    ``runs`` maps a configured transfer-loss rate to the metrics of the
    run executed at that rate (the smallest rate within 1e-12 of zero,
    if present, is the baseline — sweep configs sometimes carry a tiny
    float residue instead of an exact 0.0).  Returns one row per rate,
    sorted ascending, with the headline quantities and the slowdown
    relative to the zero-loss baseline (``nan`` when no baseline or no
    completions to compare; ``inf`` when the baseline completed in zero
    time and the lossy run did not).
    """
    baseline = None
    for rate in sorted(runs):
        if abs(rate) <= 1e-12:
            baseline = runs[rate]
            break
    base_time = (baseline.mean_completion_time()
                 if baseline is not None else math.nan)
    rows: List[Dict[str, float]] = []
    for rate in sorted(runs):
        m = runs[rate]
        mean_time = m.mean_completion_time()
        if not (math.isfinite(base_time) and math.isfinite(mean_time)):
            slowdown = math.nan
        elif base_time == 0.0:
            # An all-instant baseline: identical behaviour is no
            # degradation (1.0); any nonzero completion time is an
            # unbounded slowdown rather than a division crash.
            slowdown = 1.0 if mean_time == 0.0 else math.inf
        else:
            slowdown = mean_time / base_time
        fairness = m.final_fairness()
        rows.append({
            "loss_rate": rate,
            "observed_loss_rate": m.observed_loss_rate(),
            "mean_completion_time": mean_time,
            "completion_fraction": m.completion_fraction(),
            "final_fairness": math.nan if fairness is None else fairness,
            "slowdown": slowdown,
            "transfers_lost": float(m.faults.transfers_lost),
            "transfers_retried": float(m.faults.transfers_retried),
            "obligations_expired": float(m.faults.obligations_expired),
        })
    return rows
