"""Upload-bandwidth accounting.

Capacities are expressed in *pieces per round*. Fractional capacities
are supported through a credit accumulator: each round a peer earns
``capacity`` credits and may send ``floor(credits)`` pieces, carrying
the remainder forward — so a peer with capacity 0.5 sends one piece
every other round, matching the fluid-rate analysis on average.

Credits are stored as exact integers scaled by the capacity's binary
denominator (``float.as_integer_ratio``), not as accumulated floats.
The previous float accumulator compared against ``credits + 1e-9``,
which *minted* a piece one round early for any capacity whose float
representation rounds down (e.g. ``1/3``: three rounds of accrual sum
to ``0.9999999999999999``, and the epsilon pushed that over 1). Exact
arithmetic sends exactly ``floor(k * capacity)`` pieces after ``k``
uncapped rounds of the stored capacity. Capacities with power-of-two
denominators (0.5, 1.0, 2.5, ...) are unaffected — their float accrual
was already exact — so seeded runs using the default capacity classes
reproduce byte-identically.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError, SimulationError

__all__ = ["UploadBudget"]


class UploadBudget:
    """Per-peer upload credit accumulator.

    Usage per round::

        budget.new_round()           # earn `capacity` credits
        while budget.can_send():
            ...
            budget.consume()         # one piece sent
    """

    __slots__ = ("capacity", "_num", "_den", "_cap_num", "_credits_num",
                 "total_consumed")

    def __init__(self, capacity: float) -> None:
        if capacity < 0 or not math.isfinite(capacity):
            raise ConfigurationError(
                f"capacity must be finite and non-negative, got {capacity}")
        self.capacity = float(capacity)
        #: Exact rational form of the capacity: ``_num / _den`` with a
        #: power-of-two denominator. All credit arithmetic happens on
        #: numerators over this fixed denominator, so it is exact.
        self._num, self._den = self.capacity.as_integer_ratio()
        # Cap accrual at two rounds' worth so an idle peer (nobody
        # needs its pieces) cannot bank unbounded burst capacity.
        # ``max(2.0 * capacity, 1.0)`` over the common denominator:
        # doubling a float is exact, and 1.0 == _den / _den.
        self._cap_num = max(2 * self._num, self._den) if self._num > 0 else 0
        self._credits_num = 0
        self.total_consumed = 0

    @property
    def credits(self) -> float:
        return self._credits_num / self._den

    def new_round(self) -> int:
        """Accrue one round of capacity; return whole pieces available."""
        num = self._credits_num + self._num
        self._credits_num = num if num < self._cap_num else self._cap_num
        return self._credits_num // self._den

    def available(self) -> int:
        """Whole pieces sendable right now."""
        return self._credits_num // self._den

    def can_send(self) -> bool:
        return self._credits_num >= self._den

    def consume(self, pieces: int = 1) -> None:
        """Spend credit for ``pieces`` sent this round."""
        if pieces < 1:
            raise SimulationError("must consume at least one piece")
        if self.available() < pieces:
            raise SimulationError(
                f"insufficient upload credit: have {self.credits:.3f}, "
                f"need {pieces}")
        self._credits_num -= pieces * self._den
        self.total_consumed += pieces
