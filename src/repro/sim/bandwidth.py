"""Upload-bandwidth accounting.

Capacities are expressed in *pieces per round*. Fractional capacities
are supported through a credit accumulator: each round a peer earns
``capacity`` credits and may send ``floor(credits)`` pieces, carrying
the remainder forward — so a peer with capacity 0.5 sends one piece
every other round, matching the fluid-rate analysis on average.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError, SimulationError

__all__ = ["UploadBudget"]


class UploadBudget:
    """Per-peer upload credit accumulator.

    Usage per round::

        budget.new_round()           # earn `capacity` credits
        while budget.can_send():
            ...
            budget.consume()         # one piece sent
    """

    __slots__ = ("capacity", "_credits", "total_consumed")

    def __init__(self, capacity: float) -> None:
        if capacity < 0 or not math.isfinite(capacity):
            raise ConfigurationError(
                f"capacity must be finite and non-negative, got {capacity}")
        self.capacity = float(capacity)
        self._credits = 0.0
        self.total_consumed = 0

    @property
    def credits(self) -> float:
        return self._credits

    def new_round(self) -> int:
        """Accrue one round of capacity; return whole pieces available."""
        self._credits += self.capacity
        # Cap accrual at two rounds' worth so an idle peer (nobody
        # needs its pieces) cannot bank unbounded burst capacity.
        self._credits = min(self._credits, max(2.0 * self.capacity, 1.0)
                            if self.capacity > 0 else 0.0)
        return self.available()

    def available(self) -> int:
        """Whole pieces sendable right now."""
        return int(self._credits + 1e-9)

    def can_send(self) -> bool:
        return self.available() >= 1

    def consume(self, pieces: int = 1) -> None:
        """Spend credit for ``pieces`` sent this round."""
        if pieces < 1:
            raise SimulationError("must consume at least one piece")
        if self.available() < pieces:
            raise SimulationError(
                f"insufficient upload credit: have {self._credits:.3f}, "
                f"need {pieces}")
        self._credits -= pieces
        self.total_consumed += pieces
