"""Peer state: pieces, ledgers, pending (encrypted) pieces, attack flags.

A :class:`Peer` is pure state; behaviour lives in the strategy objects
(:mod:`repro.algorithms`) and the swarm/runner. The seeder is a peer
with a full piece set that never downloads.

Pairwise ledgers record pieces uploaded to and received from every
other peer; they power BitTorrent's tit-for-tat ranking, FairTorrent's
deficit counters, and the reciprocity rule. T-Chain's encrypted
uploads are modelled as *pending pieces*: a received piece is unusable
(does not count toward completion, cannot be re-shared except to
fulfil its own obligation) until the reciprocation obligation attached
to it is fulfilled and the key released.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.errors import ConfigurationError, SimulationError
from repro.sim.bandwidth import UploadBudget
from repro.sim.pieces import PieceSet, iter_bits

__all__ = ["Obligation", "PendingPiece", "Peer"]


@dataclass
class Obligation:
    """A T-Chain reciprocation owed for one received encrypted piece.

    Attributes
    ----------
    uploader_id:
        The peer that sent the encrypted piece and holds the key.
    piece_id:
        The piece that will be unlocked when the obligation is met.
    designated_target:
        Third peer chosen by the uploader for indirect reciprocity;
        ``None`` means direct reciprocity (repay the uploader itself).
    created_round:
        Round index when the piece was received; used to expire or
        deprioritise stale obligations.
    """

    uploader_id: int
    piece_id: int
    designated_target: Optional[int]
    created_round: int


@dataclass
class PendingPiece:
    """An encrypted piece awaiting its key."""

    piece_id: int
    obligation: Obligation


class Peer:
    """Mutable state of one swarm participant."""

    def __init__(self, peer_id: int, capacity: float, n_pieces: int,
                 arrival_time: float = 0.0, is_seeder: bool = False,
                 is_freerider: bool = False) -> None:
        if peer_id < 0:
            raise ConfigurationError("peer_id must be non-negative")
        self.peer_id = peer_id
        #: Stable identity across whitewashing resets (lineage id).
        self.lineage_id = peer_id
        self.capacity = float(capacity)
        self.budget = UploadBudget(capacity)
        self.is_seeder = bool(is_seeder)
        self.is_freerider = bool(is_freerider)
        self.arrival_time = float(arrival_time)

        self.pieces = PieceSet.full(n_pieces) if is_seeder else PieceSet(n_pieces)
        #: T-Chain: encrypted pieces waiting for their key.
        self.pending: Dict[int, PendingPiece] = {}
        #: Bitmask mirror of ``pending``'s keys, kept in lockstep so
        #: the hot-path need queries are pure integer operations. All
        #: ``pending`` mutations must go through the methods below.
        self.pending_mask = 0
        #: Smallest ``created_round`` among pending obligations (None
        #: when nothing is pending) — lets the T-Chain blacklist check
        #: run in O(1) instead of scanning every obligation.
        self.oldest_pending_round: Optional[int] = None

        # Pairwise ledgers (pieces, by current peer id of the partner).
        self.uploaded_to: Dict[int, int] = defaultdict(int)
        self.received_from: Dict[int, int] = defaultdict(int)
        #: Receipts in the previous round, for tit-for-tat ranking.
        self.received_last_round: Dict[int, int] = {}
        self._received_this_round: Dict[int, int] = defaultdict(int)

        # Lifetime totals (usable pieces only).
        self.total_uploaded = 0
        self.total_downloaded = 0
        #: Raw receipts including still-encrypted T-Chain pieces.
        self.total_received_raw = 0

        self.bootstrap_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        self.departed = False
        #: Fault injection: first round index at which this peer is
        #: back online after a transient outage (0 = never failed).
        #: Offline peers keep their state but neither send nor receive.
        self.offline_until = 0

        # Attack configuration (read by attacks / swarm).
        self.colluders: Set[int] = set()
        self.large_view = False
        self.whitewash_interval: Optional[int] = None

    # ------------------------------------------------------------------
    # Ledger updates
    # ------------------------------------------------------------------
    def record_upload(self, target_id: int, pieces: int = 1) -> None:
        self.uploaded_to[target_id] += pieces
        self.total_uploaded += pieces

    def record_receipt(self, uploader_id: int, pieces: int = 1,
                       usable: bool = True) -> None:
        self.received_from[uploader_id] += pieces
        self._received_this_round[uploader_id] += pieces
        self.total_received_raw += pieces
        if usable:
            self.total_downloaded += pieces

    def mark_usable(self, pieces: int = 1) -> None:
        """Count previously encrypted pieces as usable downloads."""
        self.total_downloaded += pieces

    def end_round(self) -> None:
        """Roll per-round receipt counters (for tit-for-tat)."""
        self.received_last_round = dict(self._received_this_round)
        self._received_this_round = defaultdict(int)

    def deficit(self, other_id: int) -> int:
        """FairTorrent deficit: uploaded to minus received from ``other``.

        Negative means we owe them (they gave more than we returned),
        so smaller deficits are served first.
        """
        return self.uploaded_to.get(other_id, 0) - self.received_from.get(other_id, 0)

    # ------------------------------------------------------------------
    # Piece state
    # ------------------------------------------------------------------
    @property
    def usable_piece_count(self) -> int:
        return len(self.pieces)

    @property
    def complete(self) -> bool:
        return self.pieces.complete

    def add_usable_piece(self, piece_id: int) -> bool:
        """Add a decrypted/plain piece; returns True if new."""
        return self.pieces.add(piece_id)

    def add_pending_piece(self, piece_id: int, obligation: Obligation) -> None:
        """Store an encrypted piece awaiting reciprocation."""
        if piece_id in self.pieces:
            raise SimulationError(
                f"peer {self.peer_id} already holds piece {piece_id}")
        if piece_id in self.pending:
            raise SimulationError(
                f"peer {self.peer_id} already has piece {piece_id} pending")
        self.pending[piece_id] = PendingPiece(piece_id, obligation)
        self.pending_mask |= 1 << piece_id
        if (self.oldest_pending_round is None
                or obligation.created_round < self.oldest_pending_round):
            self.oldest_pending_round = obligation.created_round

    def unlock_piece(self, piece_id: int) -> bool:
        """Release the key for a pending piece; returns True if new."""
        entry = self.pending.pop(piece_id, None)
        if entry is None:
            raise SimulationError(
                f"peer {self.peer_id} has no pending piece {piece_id}")
        self.pending_mask &= ~(1 << piece_id)
        self._refresh_oldest_pending(entry)
        return self.pieces.add(piece_id)

    def drop_pending_piece(self, piece_id: int) -> None:
        """Discard a pending piece (expired, orphaned, or dead key)."""
        entry = self.pending.pop(piece_id, None)
        if entry is None:
            raise SimulationError(
                f"peer {self.peer_id} has no pending piece {piece_id}")
        self.pending_mask &= ~(1 << piece_id)
        self._refresh_oldest_pending(entry)

    def _refresh_oldest_pending(self, removed: PendingPiece) -> None:
        if removed.obligation.created_round == self.oldest_pending_round:
            self.oldest_pending_round = min(
                (e.obligation.created_round for e in self.pending.values()),
                default=None)

    def needs_piece(self, piece_id: int) -> bool:
        """True if the piece is neither usable nor pending."""
        return (self.pieces.mask | self.pending_mask) >> piece_id & 1 == 0

    def held_or_pending(self) -> Set[int]:
        """Piece ids this peer holds usable or has pending (encrypted)."""
        return self.pieces.raw | self.pending.keys()

    def held_or_pending_mask(self) -> int:
        """Bitmask of pieces held usable or pending (encrypted)."""
        return self.pieces.mask | self.pending_mask

    def needed_pieces_from(self, uploader: "Peer") -> Set[int]:
        """Uploader's usable pieces this peer still needs."""
        return set(iter_bits(self.needed_mask_from(uploader)))

    def needed_mask_from(self, uploader: "Peer") -> int:
        """Bitmask of the uploader's usable pieces this peer needs."""
        return uploader.pieces.mask & ~(self.pieces.mask | self.pending_mask)

    def needs_any_from(self, uploader: "Peer") -> bool:
        """True if ``uploader`` has at least one usable piece we need."""
        return (uploader.pieces.mask
                & ~(self.pieces.mask | self.pending_mask)) != 0

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "seeder" if self.is_seeder else (
            "freerider" if self.is_freerider else "peer")
        return (f"<{role} {self.peer_id}: {len(self.pieces)}/"
                f"{self.pieces.n_pieces} pieces, cap {self.capacity}>")
