"""Per-run observability state: the hooks the runner actually calls.

One :class:`ObsRuntime` is owned by a
:class:`~repro.sim.runner.Simulation` whose config enables any
observability (mirroring how :class:`~repro.sim.guards.GuardRuntime`
is owned). It bundles the three instruments —
:class:`~repro.obs.tracer.EventTracer`,
:class:`~repro.obs.samplers.SeriesStore`,
:class:`~repro.obs.profiler.SpanProfiler` — behind cheap ``note_*``
hooks, runs the per-round gauge sampling, and at the end of the run
compacts everything into a telemetry payload
(:meth:`finalize`) that the runner stamps onto
``metrics.obs`` — journaled by sweeps but excluded from metric
digests, exactly like guard degradation info.

Every method here is **observation-only**: no randomness is consumed
and nothing the simulation reads is mutated. The gauges are computed
through read-only swarm queries (notably
``needy_neighbors(..., require_providable=False)``, the un-memoised
variant, so not even an internal cache is touched).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.obs.config import ObsConfig
from repro.obs.profiler import SpanProfiler
from repro.obs.samplers import SeriesStore, entropy, percentile
from repro.obs.tracer import EventTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.peer import Peer
    from repro.sim.runner import Simulation

__all__ = ["ObsRuntime"]


class ObsRuntime:
    """Tracer + samplers + profiler for one simulation run."""

    def __init__(self, config: ObsConfig) -> None:
        self.config = config
        self.tracer: Optional[EventTracer] = (
            EventTracer(config.trace_buffer,
                        dict(config.trace_sample_rates))
            if config.trace else None)
        self.profiler: Optional[SpanProfiler] = (
            SpanProfiler() if config.profile else None)
        self.series: Optional[SeriesStore] = (
            SeriesStore() if config.sample_every > 0 else None)

    # ------------------------------------------------------------------
    # Event hooks (called from the runner's transfer/report primitives)
    # ------------------------------------------------------------------
    def note_transfer(self, sim: "Simulation", uploader: "Peer",
                      target: "Peer", piece: int, kind: str,
                      usable: bool, lost: bool) -> None:
        """One piece send: plain/seed/forward, delivered or lost."""
        if self.tracer is None:
            return
        self.tracer.offer(sim.engine.now, sim.round_index, "transfer",
                          "lost" if lost else kind, {
                              "uploader": uploader.peer_id,
                              "target": target.peer_id,
                              "piece": piece,
                              "kind": kind,
                              "usable": usable,
                          })

    def note_decision(self, sim: "Simulation", peer: "Peer", name: str,
                      target_id: Optional[int] = None,
                      **fields: object) -> None:
        """A strategy's choke/unchoke-style decision (category ``choke``)."""
        if self.tracer is None:
            return
        payload: Dict[str, object] = {"peer": peer.peer_id}
        if target_id is not None:
            payload["target"] = target_id
        payload.update(fields)
        self.tracer.offer(sim.engine.now, sim.round_index, "choke", name,
                          payload)

    def note_reputation(self, sim: "Simulation", name: str, peer_id: int,
                        amount: float, **fields: object) -> None:
        """A reputation-board movement: reported, queued, delivered, lost."""
        if self.tracer is None:
            return
        payload: Dict[str, object] = {"peer": peer_id, "amount": amount}
        payload.update(fields)
        self.tracer.offer(sim.engine.now, sim.round_index, "reputation",
                          name, payload)

    def note_bootstrap(self, sim: "Simulation", peer: "Peer",
                       encrypted: bool) -> None:
        """A peer obtained its first piece (possibly still encrypted)."""
        if self.tracer is None:
            return
        self.tracer.offer(sim.engine.now, sim.round_index, "bootstrap",
                          "encrypted" if encrypted else "usable", {
                              "peer": peer.peer_id,
                              "freerider": peer.is_freerider,
                              "wait": sim.engine.now - peer.arrival_time,
                          })

    def note_completion(self, sim: "Simulation", peer: "Peer") -> None:
        """A peer finished its download."""
        if self.tracer is None:
            return
        self.tracer.offer(sim.engine.now, sim.round_index, "completion",
                          "complete", {
                              "peer": peer.peer_id,
                              "freerider": peer.is_freerider,
                              "elapsed": sim.engine.now - peer.arrival_time,
                          })

    def note_fault(self, sim: "Simulation", name: str,
                   **fields: object) -> None:
        """An injected fault or its fallout (crash, outage, expiry...)."""
        if self.tracer is None:
            return
        self.tracer.offer(sim.engine.now, sim.round_index, "fault", name,
                          dict(fields))

    # ------------------------------------------------------------------
    # Per-round sampling
    # ------------------------------------------------------------------
    def after_round(self, sim: "Simulation") -> None:
        """Sample the gauge catalogue if this round is due."""
        if self.series is None:
            return
        every = self.config.sample_every
        if every <= 0 or sim.round_index % every != 0:
            return
        if self.profiler is not None:
            with self.profiler.span("obs.sample"):
                self._sample(sim)
        else:
            self._sample(sim)

    def _sample(self, sim: "Simulation") -> None:
        swarm = sim.swarm
        n_pieces = float(sim.config.n_pieces)
        progress = []
        needy_total = 0
        neighbor_total = 0
        freeriders = 0
        active = swarm.active_non_seeders()
        for peer in active:
            if peer.is_freerider:
                freeriders += 1
            else:
                progress.append(len(peer.pieces) / n_pieces)
            # The un-memoised variant: read-only by construction.
            needy_total += len(
                swarm.needy_neighbors(peer, require_providable=False))
            neighbor_total += len(swarm.neighbors(peer.peer_id))
        n_active = len(active)
        counts = swarm.availability_counts()
        collector = sim.collector
        row: Dict[str, float] = {
            "progress_p25": percentile(progress, 25),
            "progress_p50": percentile(progress, 50),
            "progress_p90": percentile(progress, 90),
            "active_peers": float(n_active),
            "active_freeriders": float(freeriders),
            "needy_neighbors_mean": (needy_total / n_active
                                     if n_active else 0.0),
            "neighbors_mean": (neighbor_total / n_active
                               if n_active else 0.0),
            "availability_entropy": entropy(counts),
            "freerider_intake": float(collector.freerider_received_so_far),
            "engine_queue_depth": float(sim.engine.pending),
        }
        if self.tracer is not None:
            row["trace_retained"] = float(len(self.tracer))
            row["trace_evicted"] = float(self.tracer.dropped)
        if self.profiler is not None:
            spans = self.profiler.spans()
            guard = spans.get("guards.after_round")
            if guard is not None:
                row["guard_round_ms_mean"] = guard["mean"] * 1e3
        self.series.append(sim.round_index, row)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def finalize(self) -> Dict[str, object]:
        """Compact telemetry payload for ``metrics.obs``.

        Deliberately excludes the raw trace events: only counts travel
        across sweep worker pipes. Exporting events is an in-process
        affair (``python -m repro trace``, ``run --trace-out``).
        """
        payload: Dict[str, object] = {}
        if self.series is not None:
            payload["series"] = self.series.to_compact()
        if self.profiler is not None:
            payload["profile"] = self.profiler.as_dict()
        if self.tracer is not None:
            payload["trace"] = self.tracer.summary()
        return payload
