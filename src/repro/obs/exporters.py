"""Trace and series exporters: Chrome ``trace_event`` JSON and JSONL.

Two output formats, both dependency-free:

* :func:`to_chrome_trace` renders traced events and sampled series in
  the Chrome ``trace_event`` JSON-array format, loadable directly in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``. Traced
  moments become instant events (phase ``"i"``), sampled series become
  counter tracks (phase ``"C"``), and sim-time seconds map to
  microseconds — one simulated second renders as 1 s on the timeline.
* :func:`to_jsonl` renders traced events as one JSON object per line,
  the right input for ad-hoc ``jq``/pandas analysis.

Both are pure functions of their inputs: same trace in, byte-identical
text out (dict keys sorted), which is what the exporter golden tests
pin.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs.samplers import SeriesStore
    from repro.obs.tracer import TraceEvent

__all__ = ["to_chrome_trace", "to_jsonl", "sweep_series_to_chrome_trace"]

#: Synthetic pid for all simulator tracks; Perfetto groups tracks by it.
_PID = 1

#: Per-category tid so each event category renders as its own track.
_CATEGORY_TIDS = {
    "transfer": 1,
    "choke": 2,
    "reputation": 3,
    "bootstrap": 4,
    "completion": 5,
    "fault": 6,
}


def _microseconds(sim_time: float) -> int:
    return int(round(sim_time * 1e6))


def to_chrome_trace(events: Iterable["TraceEvent"],
                    series: Optional["SeriesStore"] = None,
                    label: str = "repro") -> str:
    """Serialise a trace (and optional series) as Chrome trace JSON."""
    records: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": label},
    }]
    seen_tids = set()
    for event in events:
        tid = _CATEGORY_TIDS.get(event.category, 0)
        if tid not in seen_tids:
            seen_tids.add(tid)
            records.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
                "args": {"name": event.category},
            })
        records.append({
            "name": event.name,
            "cat": event.category,
            "ph": "i",
            "s": "t",
            "ts": _microseconds(event.time),
            "pid": _PID,
            "tid": tid,
            "args": dict(sorted(event.fields.items())),
        })
    if series is not None:
        for round_index, row in series.rows():
            ts = _microseconds(round_index)
            for name, value in sorted(row.items()):
                if value != value:  # NaN: series absent this round
                    continue
                records.append({
                    "name": name,
                    "ph": "C",
                    "ts": ts,
                    "pid": _PID,
                    "tid": 0,
                    "args": {"value": value},
                })
    return json.dumps(records, sort_keys=True, separators=(",", ":")) + "\n"


def sweep_series_to_chrome_trace(series_by_seed, label: str = "repro sweep",
                                 ) -> str:
    """Serialise per-replicate sampled series as one Chrome trace.

    ``series_by_seed`` maps seed -> :class:`SeriesStore` (the per-worker
    payloads a resilient sweep ships home through the telemetry
    channel). Each replicate becomes its own Perfetto process so its
    counter tracks group together; seeds are emitted in sorted order so
    the output is a pure function of the input.
    """
    records: List[dict] = []
    for pid, seed in enumerate(sorted(series_by_seed), start=1):
        records.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"{label} seed {seed}"},
        })
        for round_index, row in series_by_seed[seed].rows():
            ts = _microseconds(round_index)
            for name, value in sorted(row.items()):
                if value != value:  # NaN: series absent this round
                    continue
                records.append({
                    "name": name,
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": value},
                })
    return json.dumps(records, sort_keys=True, separators=(",", ":")) + "\n"


def to_jsonl(events: Iterable["TraceEvent"]) -> str:
    """Serialise traced events as JSONL, one object per line."""
    lines = []
    for event in events:
        lines.append(json.dumps({
            "time": event.time,
            "round": event.round_index,
            "category": event.category,
            "name": event.name,
            "fields": dict(sorted(event.fields.items())),
        }, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")
