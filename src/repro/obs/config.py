"""Configuration of the streaming observability layer.

:class:`ObsConfig` is carried inside
:class:`~repro.sim.config.SimulationConfig` (field ``obs``) and fully
describes what a run records about itself: whether the bounded
event tracer is on (and how it samples each category), how often the
per-round time-series samplers fire, and whether the wall-clock span
profiler is active. Everything defaults to *off* — the paper's bare
simulator records nothing about itself and pays nothing.

Like :class:`~repro.sim.guards.GuardConfig`, the whole subsystem is
**observation-only**: enabling any of it consumes no randomness and
mutates nothing the simulation reads, so a traced run is byte-identical
(same metrics digest) to the same seed untraced. Event sampling is
*counter-based* (keep one event in every N per category), never
random, precisely so that contract can hold.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Tuple, Union

from repro.errors import ConfigurationError

__all__ = ["ObsConfig", "TRACE_CATEGORIES"]

#: Event categories the tracer understands, with what each records.
#: ``transfer`` — every piece send (plain/seed/forward, incl. lost);
#: ``choke`` — per-round unchoke/optimistic-unchoke decisions;
#: ``reputation`` — reputation-board credits (immediate and delayed);
#: ``bootstrap`` — a peer obtaining its first (possibly encrypted) piece;
#: ``completion`` — a peer finishing its download;
#: ``fault`` — injected faults and their fallout (losses, crashes,
#: outages, expiries, dropped reports).
TRACE_CATEGORIES: Tuple[str, ...] = (
    "transfer", "choke", "reputation", "bootstrap", "completion", "fault")

#: Default ring capacity: ~64k events is a few MB and covers the full
#: event stream of a smoke-scale run, or the tail of a paper-scale one.
DEFAULT_TRACE_BUFFER = 65536


@dataclass(frozen=True)
class ObsConfig:
    """Tunables of the observability subsystem (all off by default).

    Attributes
    ----------
    trace:
        Enable the bounded ring-buffer event tracer
        (:class:`~repro.obs.tracer.EventTracer`).
    trace_buffer:
        Ring capacity in events; the oldest events are evicted once
        the buffer is full (the eviction count is reported, never
        silent).
    trace_sample_rates:
        Per-category deterministic sampling as ``((category, N), ...)``
        pairs: keep one event in every ``N`` offered for that category
        (``N = 1``, the default for unlisted categories, keeps all).
        Counter-based, so a fixed seed traces the same events on every
        run at every buffer size.
    sample_every:
        Rounds between time-series sampler rows
        (:mod:`repro.obs.samplers`); ``0`` disables the samplers.
    profile:
        Enable the wall-clock span profiler
        (:class:`~repro.obs.profiler.SpanProfiler`) around engine
        dispatch, algorithm decisions, and guard passes.
    """

    trace: bool = False
    trace_buffer: int = DEFAULT_TRACE_BUFFER
    trace_sample_rates: Tuple[Tuple[str, int], ...] = ()
    sample_every: int = 0
    profile: bool = False

    def __post_init__(self) -> None:
        if self.trace_buffer < 1:
            raise ConfigurationError("obs.trace_buffer must be >= 1")
        if self.sample_every < 0:
            raise ConfigurationError(
                "obs.sample_every must be >= 0 (0 disables sampling)")
        rates = tuple(sorted(tuple(pair) for pair in self.trace_sample_rates))
        for category, rate in rates:
            if category not in TRACE_CATEGORIES:
                raise ConfigurationError(
                    f"obs.trace_sample_rates names unknown category "
                    f"{category!r} (known: {', '.join(TRACE_CATEGORIES)})")
            if not isinstance(rate, int) or rate < 1:
                raise ConfigurationError(
                    f"obs sampling rate for {category!r} must be an int "
                    f">= 1, got {rate!r}")
        object.__setattr__(self, "trace_sample_rates", rates)

    @property
    def enabled(self) -> bool:
        """Whether any observability instrumentation is active."""
        return self.trace or self.profile or self.sample_every > 0

    def rate_for(self, category: str) -> int:
        """Keep-one-in-N sampling rate for ``category`` (default 1)."""
        for name, rate in self.trace_sample_rates:
            if name == category:
                return rate
        return 1

    def with_rates(self, rates: Union[Mapping[str, int],
                                      Tuple[Tuple[str, int], ...]],
                   ) -> "ObsConfig":
        """Variant with the given per-category sampling rates."""
        if isinstance(rates, Mapping):
            rates = tuple(rates.items())
        return replace(self, trace_sample_rates=tuple(rates))
