"""Aggregate-only span profiler for the simulator's own hot paths.

:class:`SpanProfiler` answers "where does wall-clock time go inside a
run?" without storing one record per call: each named span keeps only
count / total / min / max, so profiling a million engine dispatches
costs a handful of dict entries. Spans are recorded by the engine
(``engine.<event kind>``), the runner (``algorithm.decide``,
``guards.round``, ``obs.sample``), and anything else holding a
reference to the profiler.

Wall-clock timings are inherently non-deterministic; the profiler is
telemetry only and never enters metric digests (see the determinism
contract in docs/ARCHITECTURE.md).

>>> profiler = SpanProfiler()
>>> profiler.add("engine.round", 0.25)
>>> profiler.add("engine.round", 0.75)
>>> span = profiler.spans()["engine.round"]
>>> span["count"], span["total"], span["min"], span["max"]
(2, 1.0, 0.25, 0.75)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.utils.tables import format_table

__all__ = ["SpanProfiler"]


class SpanProfiler:
    """Named wall-clock spans aggregated to count/total/min/max."""

    def __init__(self) -> None:
        self._count: Dict[str, int] = {}
        self._total: Dict[str, float] = {}
        self._min: Dict[str, float] = {}
        self._max: Dict[str, float] = {}

    def add(self, name: str, elapsed: float) -> None:
        """Fold one measured duration (seconds) into span ``name``."""
        if name in self._count:
            self._count[name] += 1
            self._total[name] += elapsed
            if elapsed < self._min[name]:
                self._min[name] = elapsed
            if elapsed > self._max[name]:
                self._max[name] = elapsed
        else:
            self._count[name] = 1
            self._total[name] = elapsed
            self._min[name] = elapsed
            self._max[name] = elapsed

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block as one sample of span ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._count)

    def spans(self) -> Dict[str, Dict[str, float]]:
        """``{name: {count, total, min, max, mean}}``, sorted by name."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._count):
            count = self._count[name]
            total = self._total[name]
            out[name] = {
                "count": count,
                "total": total,
                "min": self._min[name],
                "max": self._max[name],
                "mean": total / count,
            }
        return out

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Alias of :meth:`spans` for telemetry payloads."""
        return self.spans()

    def merge(self, spans: Dict[str, Dict[str, float]]) -> None:
        """Fold a previously exported :meth:`spans` payload into this one.

        Used when aggregating per-worker profiles across a sweep.
        """
        for name, span in spans.items():
            count = int(span["count"])
            if count <= 0:
                continue
            if name in self._count:
                self._count[name] += count
                self._total[name] += span["total"]
                self._min[name] = min(self._min[name], span["min"])
                self._max[name] = max(self._max[name], span["max"])
            else:
                self._count[name] = count
                self._total[name] = float(span["total"])
                self._min[name] = float(span["min"])
                self._max[name] = float(span["max"])

    def table(self, title: Optional[str] = "Self-profile (wall clock)",
              ) -> str:
        """Render the aggregated spans as an aligned monospace table."""
        spans = self.spans()
        grand_total = sum(span["total"] for span in spans.values()) or 1.0
        rows: List[List[object]] = []
        for name, span in sorted(spans.items(),
                                 key=lambda item: -item[1]["total"]):
            rows.append([
                name,
                span["count"],
                span["total"] * 1e3,
                span["mean"] * 1e6,
                span["min"] * 1e6,
                span["max"] * 1e6,
                100.0 * span["total"] / grand_total,
            ])
        return format_table(
            ["span", "count", "total_ms", "mean_us", "min_us", "max_us",
             "share_%"],
            rows, title=title, float_format=".4g")
