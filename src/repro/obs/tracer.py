"""Bounded ring-buffer event tracer with deterministic sampling.

:class:`EventTracer` is the structured log of a running simulation:
every notable moment — a piece transfer, a choke decision, a
reputation credit, a bootstrap, a completion, an injected fault — is
offered to the tracer as a :class:`TraceEvent` and kept, sampled out,
or (once the ring is full) evicted-oldest-first. Capacity is fixed up
front, so memory is bounded no matter how long the run is, and every
drop is counted: ``tracer.counts()`` always reconciles seen = kept +
sampled-out, and ``tracer.dropped`` reports ring evictions.

Sampling is **counter-based**, never random: with a rate of N for a
category, the 1st, (N+1)th, (2N+1)th... events of that category are
kept. Two runs of the same seed therefore trace the same events, and
enabling the tracer consumes no randomness — the foundation of the
observation-only contract (see docs/ARCHITECTURE.md).

>>> tracer = EventTracer(capacity=2)
>>> tracer.offer(0.0, 0, "transfer", "send", {"piece": 1})
True
>>> tracer.offer(1.0, 1, "transfer", "send", {"piece": 2})
True
>>> tracer.offer(2.0, 2, "transfer", "send", {"piece": 3})
True
>>> [event.fields["piece"] for event in tracer.events()]
[2, 3]
>>> tracer.dropped
1
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, NamedTuple, Optional

__all__ = ["TraceEvent", "EventTracer"]


class TraceEvent(NamedTuple):
    """One traced moment of a simulation.

    ``time`` is sim-time seconds, ``round_index`` the one-second round
    it fell in, ``category`` one of
    :data:`~repro.obs.config.TRACE_CATEGORIES`, ``name`` the specific
    kind of moment within the category (e.g. ``"send"``, ``"unchoke"``),
    and ``fields`` a flat dict of JSON-safe details (peer ids, piece
    indexes, flags).
    """

    time: float
    round_index: int
    category: str
    name: str
    fields: Mapping[str, object]


class EventTracer:
    """Fixed-capacity event ring with per-category 1-in-N sampling."""

    def __init__(self, capacity: int,
                 sample_rates: Mapping[str, int] = (),
                 categories: Optional[Iterable[str]] = None) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self._rates: Dict[str, int] = dict(sample_rates)
        self._categories = frozenset(categories) if categories is not None \
            else None
        self._seen: Dict[str, int] = {}
        self._kept: Dict[str, int] = {}
        self._evicted = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def wants(self, category: str) -> bool:
        """Whether events of ``category`` can ever be kept.

        Hot paths may use this to skip building the fields dict when a
        category filter excludes the event entirely. (Sampled-out
        events must still be *offered* so the counters stay exact.)
        """
        return self._categories is None or category in self._categories

    def offer(self, time: float, round_index: int, category: str,
              name: str, fields: Mapping[str, object]) -> bool:
        """Offer one event; returns ``True`` if it was kept.

        Every offer of an in-filter category advances that category's
        deterministic sampling counter, whether or not the event is
        kept; the first offer is always kept.
        """
        if self._categories is not None and category not in self._categories:
            return False
        seen = self._seen.get(category, 0)
        self._seen[category] = seen + 1
        rate = self._rates.get(category, 1)
        if rate > 1 and seen % rate != 0:
            return False
        if len(self._ring) == self.capacity:
            self._evicted += 1
        self._ring.append(TraceEvent(time, round_index, category, name,
                                     dict(fields)))
        self._kept[category] = self._kept.get(category, 0) + 1
        return True

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring after being kept (oldest-first)."""
        return self._evicted

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        """The retained events, oldest first, optionally one category."""
        if category is None:
            return list(self._ring)
        return [event for event in self._ring if event.category == category]

    def counts(self) -> Dict[str, Dict[str, int]]:
        """Per-category accounting: offered, kept, sampled out.

        ``sampled_out`` counts events the rate filter rejected;
        ring evictions are tracked separately via :attr:`dropped`
        (an evicted event was kept — it aged out, it was not rejected).
        """
        out: Dict[str, Dict[str, int]] = {}
        for category in sorted(self._seen):
            seen = self._seen[category]
            kept = self._kept.get(category, 0)
            out[category] = {"seen": seen, "kept": kept,
                             "sampled_out": seen - kept}
        return out

    def summary(self) -> Dict[str, object]:
        """Compact accounting payload (no events) for telemetry."""
        return {
            "capacity": self.capacity,
            "retained": len(self._ring),
            "evicted": self._evicted,
            "counts": self.counts(),
        }

    def clear(self) -> None:
        """Empty the ring and reset all counters."""
        self._ring.clear()
        self._seen.clear()
        self._kept.clear()
        self._evicted = 0
