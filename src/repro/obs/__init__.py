"""Streaming observability: event tracing, samplers, profiling.

``repro.obs`` is the simulator's flight recorder. Three instruments,
all off by default and all observation-only (a run with them enabled
is byte-identical, digest-wise, to the same seed without):

* :class:`~repro.obs.tracer.EventTracer` — a bounded ring buffer of
  structured :class:`~repro.obs.tracer.TraceEvent` records (piece
  transfers, choke decisions, reputation movements, bootstraps,
  completions, injected faults) with deterministic per-category
  1-in-N sampling;
* :class:`~repro.obs.samplers.SeriesStore` — per-round gauges
  (progress percentiles, availability entropy, queue depth, ...) in a
  compact columnar store with CSV/JSONL export and an ASCII sparkline
  dashboard;
* :class:`~repro.obs.profiler.SpanProfiler` — aggregate wall-clock
  spans around engine dispatch, strategy decisions, and guard passes.

Exporters (:mod:`repro.obs.exporters`) render traces as Chrome
``trace_event`` JSON (loads in Perfetto) or JSONL. The full catalogue
and schema live in docs/OBSERVABILITY.md; the wiring into the
simulation is :class:`~repro.obs.runtime.ObsRuntime`.
"""

from repro.obs.config import ObsConfig, TRACE_CATEGORIES
from repro.obs.exporters import (sweep_series_to_chrome_trace,
                                 to_chrome_trace, to_jsonl)
from repro.obs.profiler import SpanProfiler
from repro.obs.runtime import ObsRuntime
from repro.obs.samplers import SeriesStore, entropy, percentile
from repro.obs.tracer import EventTracer, TraceEvent

__all__ = [
    "ObsConfig",
    "TRACE_CATEGORIES",
    "EventTracer",
    "TraceEvent",
    "SeriesStore",
    "SpanProfiler",
    "ObsRuntime",
    "percentile",
    "entropy",
    "sweep_series_to_chrome_trace",
    "to_chrome_trace",
    "to_jsonl",
]
