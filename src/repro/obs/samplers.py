"""Per-round time-series samplers and their columnar store.

:class:`SeriesStore` is a small append-only column store: each named
series is an ``array('d')`` of float64 values, one per sampled round,
all sharing one index column (the round numbers). That representation
is a fraction of the footprint of a list-of-dicts, pickles compactly
across worker pipes (:meth:`to_compact` / :meth:`from_compact`), and
exports losslessly to CSV and JSONL.

The gauge catalogue (what :class:`~repro.obs.runtime.ObsRuntime`
samples every ``sample_every`` rounds) is documented in
docs/OBSERVABILITY.md; the store itself is schema-free — any
``{name: float}`` row works.

>>> store = SeriesStore()
>>> store.append(0, {"progress_p50": 0.0, "active": 40.0})
>>> store.append(5, {"progress_p50": 0.25, "active": 40.0})
>>> store.names()
['active', 'progress_p50']
>>> store.column("progress_p50")
[0.0, 0.25]
>>> SeriesStore.from_compact(store.to_compact()).column("active")
[40.0, 40.0]
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

__all__ = ["SeriesStore", "hybrid_coupling_store", "percentile", "entropy"]

_NAN = float("nan")


class SeriesStore:
    """Append-only columnar store of per-round float series."""

    def __init__(self) -> None:
        self._index: array = array("d")
        self._columns: Dict[str, array] = {}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, round_index: int, row: Mapping[str, float]) -> None:
        """Append one sampled row at ``round_index``.

        Series may appear or disappear between rows; missing cells are
        padded with NaN on both sides so every column stays aligned
        with the shared index.
        """
        n_before = len(self._index)
        self._index.append(float(round_index))
        for name, value in row.items():
            column = self._columns.get(name)
            if column is None:
                column = array("d", [_NAN] * n_before)
                self._columns[name] = column
            column.append(float(value))
        for name, column in self._columns.items():
            if len(column) < len(self._index):
                column.append(_NAN)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def names(self) -> List[str]:
        """Series names, sorted."""
        return sorted(self._columns)

    def index(self) -> List[float]:
        """The shared round-number column."""
        return list(self._index)

    def column(self, name: str) -> List[float]:
        """One series' values, aligned with :meth:`index`."""
        return list(self._columns[name])

    def rows(self) -> Iterator[Tuple[float, Dict[str, float]]]:
        """Iterate ``(round, {name: value})`` rows, oldest first."""
        names = self.names()
        for i, round_index in enumerate(self._index):
            yield round_index, {name: self._columns[name][i]
                                for name in names}

    def last(self, name: str, default: float = _NAN) -> float:
        """Latest value of a series (``default`` if absent/empty)."""
        column = self._columns.get(name)
        if not column:
            return default
        return column[-1]

    # ------------------------------------------------------------------
    # Round-tripping and export
    # ------------------------------------------------------------------

    def to_compact(self) -> Dict[str, object]:
        """A plain-dict snapshot cheap to pickle across worker pipes."""
        return {
            "index": list(self._index),
            "columns": {name: list(column)
                        for name, column in self._columns.items()},
        }

    @classmethod
    def from_compact(cls, payload: Mapping[str, object]) -> "SeriesStore":
        """Rebuild a store from a :meth:`to_compact` snapshot."""
        store = cls()
        store._index = array("d", payload["index"])
        store._columns = {name: array("d", values) for name, values
                          in payload["columns"].items()}
        return store

    def to_csv(self) -> str:
        """Render as CSV: a ``round`` column plus one per series."""
        names = self.names()
        lines = [",".join(["round"] + names)]
        for round_index, row in self.rows():
            cells = [f"{round_index:g}"]
            cells += ["" if math.isnan(row[name]) else repr(row[name])
                      for name in names]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def to_jsonl(self) -> str:
        """Render as JSONL, one ``{"round": r, ...}`` object per row."""
        import json
        lines = []
        for round_index, row in self.rows():
            record: Dict[str, object] = {"round": round_index}
            for name, value in row.items():
                record[name] = None if math.isnan(value) else value
            lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + "\n"

    def dashboard(self, names: Sequence[str] = (), width: int = 48) -> str:
        """ASCII sparkline per series: latest value plus the shape."""
        from repro.utils.ascii_chart import sparkline
        chosen = list(names) if names else self.names()
        if not chosen:
            return "(no series sampled)"
        label_width = max(len(name) for name in chosen)
        lines = []
        for name in chosen:
            values = [v for v in self._columns.get(name, ())
                      if not math.isnan(v)]
            spark = sparkline(values, width=width) if values else ""
            latest = f"{values[-1]:.4g}" if values else "-"
            lines.append(f"{name.ljust(label_width)}  {spark}  {latest}")
        return "\n".join(lines)


def hybrid_coupling_store(rows: Sequence[object]) -> "SeriesStore":
    """Aggregate gauges at the hybrid engine's coupling boundaries.

    Builds a :class:`SeriesStore` from the conservation ledger of a
    fluid/event-driven hybrid run (``repro.sim.hybrid.CouplingRow``
    objects): population-scale masses (``pop_*``), the measured
    effectiveness fed back into the fluid layer, the fairness gauge,
    the independently integrated fluid trajectory (``fluid_*``), and
    the per-boundary cross-check residual. The store lands in
    ``HybridMetrics.obs["series"]`` in compact form, so the sweep
    telemetry and ``--trace-out`` machinery journal coupling gauges
    exactly like per-round obs series (docs/OBSERVABILITY.md,
    docs/SCALING.md).
    """
    store = SeriesStore()
    for row in rows:
        gauges = {
            "pop_arrived": row.arrived,
            "pop_active": row.active,
            "pop_seeds": row.seeds,
            "pop_departed": row.departed,
            "pop_completed": row.completed,
            "pop_bootstrapped": row.bootstrapped,
            "pop_unarrived": row.unarrived,
            "coupling_effectiveness": row.effectiveness,
            "fluid_downloaders": row.fluid_downloaders,
            "fluid_seeds": row.fluid_seeds,
            "fluid_residual": row.residual,
        }
        if row.fairness_ud is not None:
            gauges["fairness_ud"] = row.fairness_ud
        store.append(int(row.time), gauges)
    return store


def percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Deterministic and dependency-free; NaN for an empty input.
    Out-of-range ranks clamp to the extremes (``q <= 0`` is the
    minimum, ``q >= 100`` the maximum); a NaN ``q`` is a caller bug
    and raises ``ValueError`` rather than ordering against NaN.

    >>> percentile([3.0, 1.0, 2.0, 4.0], 50)
    2.0
    >>> percentile([], 50)
    nan
    """
    if math.isnan(q):
        raise ValueError("percentile rank q must not be NaN")
    ordered = sorted(values)
    if not ordered:
        return _NAN
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[-1]
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def entropy(counts: Iterable[int]) -> float:
    """Shannon entropy (bits) of a count distribution.

    Used for piece-availability entropy: high entropy means pieces are
    evenly replicated across the swarm, low entropy means a few pieces
    dominate (a flash crowd starts near zero — only the seeder's
    uniform copies — and rises as rarest-first spreads variety).

    >>> entropy([1, 1, 1, 1])
    2.0
    >>> entropy([4, 0, 0])
    0.0
    """
    positive = [c for c in counts if c > 0]
    total = float(sum(positive))
    if total <= 0 or len(positive) <= 1:
        return 0.0
    acc = 0.0
    for count in positive:
        p = count / total
        acc -= p * math.log2(p)
    return acc
