"""Canonical names for the six incentive mechanisms compared in the paper.

The same :class:`Algorithm` enumeration is used by the analytical layer
(:mod:`repro.core`), the simulator strategies (:mod:`repro.algorithms`),
and the experiment harness, so results from the two layers can be
joined by key.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

__all__ = ["Algorithm", "BASIC_ALGORITHMS", "HYBRID_ALGORITHMS",
           "ALL_ALGORITHMS", "EXTENDED_ALGORITHMS"]


class Algorithm(str, Enum):
    """The six incentive mechanisms analysed in the paper (Section III).

    Three basic classes:

    * :attr:`RECIPROCITY` — pure direct reciprocity; uploads happen only
      to repay a download, so no exchange can ever be initiated.
    * :attr:`ALTRUISM` — upload full capacity to uniformly random users.
    * :attr:`REPUTATION` — upload preferentially to users with high
      global reputation (total pieces uploaded), plus a small altruism
      fraction for bootstrapping, as in EigenTrust.

    Three hybrids:

    * :attr:`BITTORRENT` — reciprocity/altruism: tit-for-tat to the top
      contributors plus optimistic unchoking.
    * :attr:`FAIRTORRENT` — reputation/altruism: upload to the neighbor
      with the lowest (most-owed) piece deficit; ties at zero deficit
      are broken randomly, which is altruism toward newcomers.
    * :attr:`TCHAIN` — reciprocity/reputation: encrypted uploads whose
      keys are released only after direct or indirect reciprocation.
    """

    RECIPROCITY = "reciprocity"
    ALTRUISM = "altruism"
    REPUTATION = "reputation"
    BITTORRENT = "bittorrent"
    FAIRTORRENT = "fairtorrent"
    TCHAIN = "tchain"
    #: Extension beyond the paper's six: PropShare [5] (Levin et al.),
    #: cited in Corollary 2's proof — BitTorrent with the tit-for-tat
    #: share allocated *proportionally* to last-round contributions.
    PROPSHARE = "propshare"

    @property
    def display_name(self) -> str:
        """Human-readable name as used in the paper's tables."""
        return _DISPLAY_NAMES[self]

    @classmethod
    def parse(cls, name: "str | Algorithm") -> "Algorithm":
        """Parse a string (case-insensitive, display or enum form)."""
        if isinstance(name, Algorithm):
            return name
        key = str(name).strip().lower().replace("-", "").replace("_", "").replace(" ", "")
        for algorithm, display in _DISPLAY_NAMES.items():
            candidates = {algorithm.value, display.lower().replace("-", "")}
            if key in candidates:
                return algorithm
        raise ValueError(f"unknown algorithm name: {name!r}")


_DISPLAY_NAMES = {
    Algorithm.RECIPROCITY: "Reciprocity",
    Algorithm.ALTRUISM: "Altruism",
    Algorithm.REPUTATION: "Reputation",
    Algorithm.BITTORRENT: "BitTorrent",
    Algorithm.FAIRTORRENT: "FairTorrent",
    Algorithm.TCHAIN: "T-Chain",
    Algorithm.PROPSHARE: "PropShare",
}

#: The three basic classes of Section III-A.
BASIC_ALGORITHMS: Tuple[Algorithm, ...] = (
    Algorithm.RECIPROCITY,
    Algorithm.ALTRUISM,
    Algorithm.REPUTATION,
)

#: The three hybrid algorithms of Section III-A.
HYBRID_ALGORITHMS: Tuple[Algorithm, ...] = (
    Algorithm.BITTORRENT,
    Algorithm.FAIRTORRENT,
    Algorithm.TCHAIN,
)

#: The paper's six, in the row order used by its tables.
ALL_ALGORITHMS: Tuple[Algorithm, ...] = (
    Algorithm.RECIPROCITY,
    Algorithm.TCHAIN,
    Algorithm.BITTORRENT,
    Algorithm.FAIRTORRENT,
    Algorithm.REPUTATION,
    Algorithm.ALTRUISM,
)

#: The paper's six plus this repo's extensions (PropShare).
EXTENDED_ALGORITHMS: Tuple[Algorithm, ...] = ALL_ALGORITHMS + (
    Algorithm.PROPSHARE,
)
