"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report;
this module does the column alignment so every experiment renders
consistently without pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table"]


def _cell(value: object, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None,
                 float_format: str = ".4g") -> str:
    """Render rows as an aligned monospace table.

    ``None`` cells render as ``-``; floats use ``float_format``.
    """
    header_cells = [str(h) for h in headers]
    body = [[_cell(v, float_format) for v in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(header_cells)}")
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: List[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_cells))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)
