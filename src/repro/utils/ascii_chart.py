"""Plain-text line charts for terminal-only reproduction runs.

The paper's Figures 4-6 are time-series plots; with no plotting stack
available we render them as monospace charts so ``python -m repro
figure4 --plot`` (and the benches under ``-s``) can show the *curves*,
not just the summary scalars. One chart overlays several labelled
series; points are bucketed onto a fixed character grid, latest writer
wins within a cell, and a legend maps glyphs to series.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ascii_chart", "sparkline"]

#: Glyphs assigned to series in order.
_GLYPHS = "ox*+#@%&"

Point = Tuple[float, float]

#: Eight block heights, lowest to highest, for sparklines.
_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Render a series as a one-line block-character sparkline.

    Longer series are squeezed to ``width`` cells by averaging equal
    slices; non-finite values are dropped first. The line is scaled to
    its own min/max (a flat series renders as a run of mid-blocks).

    >>> sparkline([0.0, 1.0, 2.0, 3.0], width=4)
    '▁▃▆█'
    """
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return ""
    if len(finite) > width:
        squeezed = []
        for cell in range(width):
            lo = cell * len(finite) // width
            hi = max(lo + 1, (cell + 1) * len(finite) // width)
            chunk = finite[lo:hi]
            squeezed.append(sum(chunk) / len(chunk))
        finite = squeezed
    v_lo, v_hi = min(finite), max(finite)
    if v_hi == v_lo:
        return _SPARKS[3] * len(finite)
    span = v_hi - v_lo
    top = len(_SPARKS) - 1
    return "".join(_SPARKS[round((v - v_lo) / span * top)] for v in finite)


def _bounds(series: Dict[str, Sequence[Point]],
            y_max: Optional[float]) -> Tuple[float, float, float, float]:
    xs = [p[0] for points in series.values() for p in points]
    ys = [p[1] for points in series.values() for p in points
          if math.isfinite(p[1])]
    if not xs or not ys:
        raise ValueError("chart needs at least one finite point")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_max is not None:
        y_hi = y_max
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    return x_lo, x_hi, y_lo, y_hi


def ascii_chart(series: Dict[str, Sequence[Point]],
                width: int = 64, height: int = 16,
                title: Optional[str] = None,
                y_max: Optional[float] = None) -> str:
    """Render ``{label: [(x, y), ...]}`` as a monospace line chart.

    Non-finite y values are skipped. ``y_max`` optionally clips the
    vertical range (useful when one series has a long tail).
    """
    if width < 8 or height < 4:
        raise ValueError("chart needs width >= 8 and height >= 4")
    if not series:
        raise ValueError("chart needs at least one series")
    x_lo, x_hi, y_lo, y_hi = _bounds(series, y_max)

    grid = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in points:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            if y > y_hi:
                y = y_hi
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    left_labels = [f"{y_hi:.3g}", "", f"{y_lo:.3g}"]
    pad = max(len(label) for label in left_labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = left_labels[0]
        elif row_index == height - 1:
            label = left_labels[2]
        else:
            label = ""
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    lines.append(f"{' ' * pad} +{'-' * width}")
    x_axis = f"{x_lo:.3g}".ljust(width - 6) + f"{x_hi:.3g}".rjust(6)
    lines.append(f"{' ' * pad}  {x_axis}")
    legend = "   ".join(f"{_GLYPHS[i % len(_GLYPHS)]} {label}"
                        for i, label in enumerate(series))
    lines.append(f"{' ' * pad}  {legend}")
    return "\n".join(lines)
