"""Summary statistics used by the experiment harness and tests."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

__all__ = ["mean", "median", "cdf_points", "gini"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; ``nan`` for an empty input."""
    items = list(values)
    if not items:
        return math.nan
    return sum(items) / len(items)


def median(values: Iterable[float]) -> float:
    """Median; ``nan`` for an empty input."""
    items = sorted(values)
    if not items:
        return math.nan
    mid = len(items) // 2
    if len(items) % 2:
        return items[mid]
    return 0.5 * (items[mid - 1] + items[mid])


def cdf_points(values: Iterable[float]) -> List[Dict[str, float]]:
    """Empirical CDF as ``{"value", "fraction"}`` rows, sorted."""
    items = sorted(values)
    n = len(items)
    return [{"value": v, "fraction": (i + 1) / n}
            for i, v in enumerate(items)]


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative vector (0 = equal).

    Used as an auxiliary inequality measure alongside the paper's
    fairness statistic.
    """
    items = sorted(values)
    n = len(items)
    if n == 0:
        return math.nan
    if any(v < 0 for v in items):
        raise ValueError("gini requires non-negative values")
    total = sum(items)
    if total == 0:
        return 0.0
    cum = 0.0
    for i, v in enumerate(items, start=1):
        cum += i * v
    return (2.0 * cum) / (n * total) - (n + 1.0) / n
