"""Small shared utilities: text tables, charts, and statistics."""

from repro.utils.ascii_chart import ascii_chart  # noqa: F401
from repro.utils.stats import cdf_points, gini, mean, median  # noqa: F401
from repro.utils.tables import format_table  # noqa: F401

__all__ = ["ascii_chart", "format_table", "cdf_points", "gini",
           "mean", "median"]
