"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``
    Print Tables I-III and the Figure 2/3 rankings (analytical; fast).
``figure4`` / ``figure5`` / ``figure6``
    Run the corresponding simulation sweep and print its summary table.
``run``
    Run a single simulation and print (or export) its metrics.
    ``--loss-rate``/``--crash-hazard``/... inject faults.
    ``--guards {cheap,full}`` enables runtime invariant checks and the
    stall watchdog; guard failures exit 3 (with a crash-bundle path on
    stderr) and watchdog-degraded runs exit 4.
``sweep``
    Crash-safe replicated sweep on a persistent worker pool
    (``--jobs``): crash isolation, per-replicate timeouts, bounded
    retry with jittered backoff, a resumable checkpoint journal, and
    sweep telemetry. ``--hosts h1:7071,h2:7071`` dispatches replicates
    to remote runner agents (failover + re-dispatch on agent death;
    degrades to the local pool unless ``--no-local-fallback``);
    ``--cache-dir`` fetches/persists finished replicates in a
    content-addressed result cache. ``--sample-every N`` ships each
    replicate's gauge series home through the telemetry channel;
    ``--trace-out`` renders them as one Chrome trace (one Perfetto
    process per seed).
``agent``
    Run a fabric agent: binds a socket, accepts dispatcher sessions,
    executes sweep tasks in warm worker processes, streams results
    home. Start one per machine, then point ``sweep --hosts`` at them.
``trace``
    Run one fully-instrumented simulation (tracer + samplers +
    profiler all on) and print its self-profile table, sparkline
    dashboard, and trace-ring statistics; ``--trace-out`` writes the
    Chrome ``trace_event`` JSON, loadable in Perfetto.
``report``
    The full reproduction report: all tables plus all three sweeps.

``run``/``sweep``/``trace`` share the observability flags (``--trace``,
``--sample-every``, ``--profile``, ``--sample-rate CAT=N``,
``--trace-out``); observability is strictly observation-only, so
enabling any of it never changes a run's metrics (see
docs/OBSERVABILITY.md).

Examples
--------
::

    python -m repro tables
    python -m repro run --algorithm tchain --users 200 --pieces 64
    python -m repro run --algorithm altruism --freeriders 0.2 --json out.json
    python -m repro run --algorithm bittorrent --loss-rate 0.2
    python -m repro run --algorithm tchain --guards full --bundle-dir ./bundles
    python -m repro run --algorithm tchain --trace --trace-out run.trace.json
    python -m repro sweep --algorithm tchain --replicates 5 \
        --journal sweep.jsonl --timeout 120 --jobs 4
    python -m repro sweep --algorithm tchain --sample-every 5 \
        --trace-out sweep.trace.json
    python -m repro agent --port 7071 --slots 4
    python -m repro sweep --algorithm tchain --replicates 20 \
        --hosts host-a:7071,host-b:7071 --cache-dir ./sweep-cache
    python -m repro trace --algorithm bittorrent --freeriders 0.2
    python -m repro figure5 --scale smoke --seed 7
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.errors import (ConfigurationError, InvariantViolationError,
                          SimulationError, SimulationStalled)
from repro.experiments import figures, report, scenarios, tables
from repro.experiments.executor import DEFAULT_RECYCLE_AFTER
from repro.experiments.export import result_to_json, summary_dict
from repro.experiments.replicates import (DEFAULT_RETRY_BACKOFF,
                                          run_resilient_sweep)
from repro.names import EXTENDED_ALGORITHMS, Algorithm
from repro.obs import (SeriesStore, sweep_series_to_chrome_trace,
                       to_chrome_trace, to_jsonl)
from repro.sim import (FaultConfig, Simulation, SimulationConfig,
                       VectorSimulation, targeted_attack_for,
                       vector_unsupported_reason)

__all__ = ["main", "build_parser"]

_SCALES = {
    "paper": scenarios.paper_scale,
    "default": scenarios.default_scale,
    "smoke": scenarios.smoke_scale,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Performance Analysis of Incentive "
                    "Mechanisms for Cooperative Computing' (ICDCS 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I-III and Fig. 2/3 rankings")

    for name in ("figure4", "figure5", "figure6"):
        fig = sub.add_parser(name, help=f"run the {name} simulation sweep")
        fig.add_argument("--scale", choices=sorted(_SCALES), default="default")
        fig.add_argument("--seed", type=int, default=0)
        fig.add_argument("--plot", action="store_true",
                         help="render the figure panels as text charts")
        fig.add_argument("--processes", type=int, default=1,
                         help="parallel worker processes for the sweep")

    rep = sub.add_parser("report", help="full reproduction report")
    rep.add_argument("--scale", choices=sorted(_SCALES), default="default")
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument("--no-figures", action="store_true",
                     help="analytical tables only")

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument("--algorithm", required=True,
                     choices=[a.value for a in EXTENDED_ALGORITHMS])
    run.add_argument("--users", type=int, default=200)
    run.add_argument("--pieces", type=int, default=64)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--freeriders", type=float, default=0.0,
                     help="free-rider fraction (targeted attacks applied)")
    run.add_argument("--large-view", action="store_true",
                     help="free-riders use the large-view exploit")
    run.add_argument("--arrivals", choices=["flash", "poisson"],
                     default="flash")
    run.add_argument("--max-rounds", type=int, default=600)
    run.add_argument("--backend", choices=["object", "vector", "vector-fast"],
                     default="object",
                     help="round-loop engine; 'vector' is the batched "
                          "struct-of-arrays fast path with byte-identical "
                          "metrics, 'vector-fast' its batched-sampling "
                          "fast-v1 lineage (distributionally equivalent, "
                          "not draw-exact); instrumented configs fall back "
                          "to 'object' per --backend-fallback")
    run.add_argument("--backend-fallback", choices=["warn", "error", "silent"],
                     default="warn",
                     help="when the chosen backend cannot run this config: "
                          "'warn' falls back to the object engine with a "
                          "notice, 'silent' falls back quietly, 'error' "
                          "refuses to run (exit 2)")
    hybrid = run.add_argument_group(
        "population-scale hybrid (repro.sim.hybrid, docs/SCALING.md)")
    hybrid.add_argument("--population", type=int, default=None,
                        help="simulate this many users as a fluid/"
                             "event-driven hybrid: --users becomes the "
                             "per-subswarm sample size and results are "
                             "scaled up by shard weight (hybrid-v1 "
                             "lineage)")
    hybrid.add_argument("--subswarms", type=int, default=None, metavar="K",
                        help="number of sampled event-driven subswarms "
                             "(default 8; requires --population)")
    hybrid.add_argument("--coupling-interval", type=int, default=None,
                        metavar="ROUNDS",
                        help="rounds between fluid<->event couplings "
                             "(default 25; requires --population)")
    hybrid.add_argument("--jobs", type=int, default=None,
                        help="worker processes for concurrent subswarms "
                             "(default: run them sequentially in-process; "
                             "results are identical for any value)")
    run.add_argument("--json", metavar="PATH",
                     help="write full result JSON to PATH ('-' for stdout)")
    _add_fault_arguments(run)
    _add_guard_arguments(run)
    _add_obs_arguments(
        run, trace_out_help="write the traced events and sampled series "
                            "as Chrome trace_event JSON (open in Perfetto); "
                            "implies --trace")

    sweep = sub.add_parser(
        "sweep", help="crash-safe replicated sweep with checkpoint/resume")
    sweep.add_argument("--algorithm", required=True,
                       choices=[a.value for a in EXTENDED_ALGORITHMS])
    sweep.add_argument("--scale", choices=sorted(_SCALES), default="default")
    sweep.add_argument("--replicates", type=int, default=5,
                       help="number of seeds (0..N-1 offset by --seed)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="first replicate seed")
    sweep.add_argument("--freeriders", type=float, default=0.0,
                       help="free-rider fraction (targeted attacks applied)")
    sweep.add_argument("--backend",
                       choices=["object", "vector", "vector-fast"],
                       default="object",
                       help="round-loop engine used by every replicate; "
                            "'vector' is digest-identical to 'object', "
                            "'vector-fast' trades draw-parity for speed "
                            "(fast-v1 lineage, separate journal/cache "
                            "identity); both fall back per-replicate when "
                            "a config needs the object engine, per "
                            "--backend-fallback")
    sweep.add_argument("--backend-fallback",
                       choices=["warn", "error", "silent"],
                       default="warn",
                       help="when the chosen backend cannot run this "
                            "config: 'warn' falls back to the object "
                            "engine with a notice, 'silent' falls back "
                            "quietly, 'error' refuses to run (exit 2)")
    sweep.add_argument("--journal", metavar="PATH",
                       help="checkpoint journal (JSON lines); rerunning "
                            "with the same path resumes the sweep")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="wall-clock seconds allowed per replicate")
    sweep.add_argument("--max-attempts", type=int, default=3,
                       help="tries per replicate before recording a failure")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="persistent worker processes (default: CPU "
                            "count minus one); results are identical "
                            "for any value")
    sweep.add_argument("--recycle-after", type=int, default=None,
                       metavar="K",
                       help="recycle each worker after K replicates "
                            f"(default {DEFAULT_RECYCLE_AFTER})")
    sweep.add_argument("--retry-backoff", type=float, default=None,
                       metavar="SECONDS",
                       help="base of the jittered exponential backoff "
                            "between retry attempts (default "
                            f"{DEFAULT_RETRY_BACKOFF}; 0 disables)")
    sweep_hybrid = sweep.add_argument_group(
        "population-scale hybrid (repro.sim.hybrid, docs/SCALING.md)")
    sweep_hybrid.add_argument("--population", type=int, default=None,
                              help="run every replicate as a fluid/"
                                   "event-driven hybrid at this "
                                   "population (the scale's n_users "
                                   "becomes the subswarm size; hybrid-v1 "
                                   "lineage keys the journal/cache)")
    sweep_hybrid.add_argument("--subswarms", type=int, default=None,
                              metavar="K",
                              help="sampled subswarms per replicate "
                                   "(default 8; requires --population)")
    sweep_hybrid.add_argument("--coupling-interval", type=int, default=None,
                              metavar="ROUNDS",
                              help="rounds between fluid<->event couplings "
                                   "(default 25; requires --population)")
    dist = sweep.add_argument_group(
        "distributed execution (repro.dist)")
    dist.add_argument("--hosts", action="append", default=None,
                      metavar="HOST:PORT[,HOST:PORT...]",
                      help="dispatch replicates to these fabric agents "
                           "(repeatable or comma-separated); agents are "
                           "failure domains — in-flight replicates are "
                           "re-dispatched when one dies, and the digest "
                           "matches a local run")
    dist.add_argument("--min-agents", type=int, default=1,
                      help="minimum reachable agents before the sweep "
                           "degrades to the local pool (default 1)")
    dist.add_argument("--no-local-fallback", action="store_true",
                      help="fail (exit 5) instead of degrading to the "
                           "local pool when agents are unreachable")
    dist.add_argument("--cache-dir", metavar="DIR", default=None,
                      help="content-addressed result cache: finished "
                           "replicates are persisted and fetched on "
                           "overlapping re-runs (digest-identical)")
    dist.add_argument("--cache-strict", action="store_true",
                      help="treat a corrupt cache entry as fatal "
                           "(exit 6) instead of a cache miss")
    _add_fault_arguments(sweep)
    _add_guard_arguments(sweep)
    _add_obs_arguments(
        sweep, trace_out_help="render every replicate's sampled series "
                              "(shipped home via the telemetry channel; "
                              "needs --sample-every) as one Chrome trace, "
                              "one Perfetto process per seed")

    agent = sub.add_parser(
        "agent", help="run a distributed-sweep runner agent (see "
                      "sweep --hosts)")
    agent.add_argument("--bind", default="0.0.0.0", metavar="ADDR",
                       help="address to listen on (default 0.0.0.0)")
    agent.add_argument("--port", type=int, default=7071,
                       help="port to listen on (default 7071; 0 lets "
                            "the OS pick)")
    agent.add_argument("--slots", type=int, default=None,
                       help="concurrent warm worker processes "
                            "(default: CPU count minus one)")
    agent.add_argument("--heartbeat", type=float, default=None,
                       metavar="SECONDS",
                       help="seconds between liveness heartbeats "
                            "(default 1.0)")
    agent.add_argument("--start-method", choices=["spawn", "fork"],
                       default="spawn",
                       help="multiprocessing context for slot workers")
    agent.add_argument("--max-sessions", type=int, default=None,
                       metavar="N",
                       help="exit after N dispatcher sessions "
                            "(default: serve forever)")

    trace = sub.add_parser(
        "trace", help="run one fully-instrumented simulation and print "
                      "its self-profile, dashboard, and trace statistics")
    trace.add_argument("--algorithm", default=Algorithm.TCHAIN.value,
                       choices=[a.value for a in EXTENDED_ALGORITHMS])
    trace.add_argument("--users", type=int, default=60)
    trace.add_argument("--pieces", type=int, default=32)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--freeriders", type=float, default=0.0,
                       help="free-rider fraction (targeted attacks applied)")
    trace.add_argument("--max-rounds", type=int, default=200)
    trace.add_argument("--sample-every", type=int, default=1, metavar="N",
                       help="sample the gauge catalogue every N rounds")
    trace.add_argument("--sample-rate", action="append", default=None,
                       metavar="CAT=N",
                       help="keep 1 in N traced events of category CAT "
                            "(repeatable; categories: transfer, choke, "
                            "reputation, bootstrap, completion, fault)")
    trace.add_argument("--buffer", type=int, default=None, metavar="EVENTS",
                       help="trace ring-buffer capacity (default 65536)")
    trace.add_argument("--trace-out", metavar="PATH",
                       help="write Chrome trace_event JSON to PATH "
                            "(open in Perfetto)")
    trace.add_argument("--jsonl-out", metavar="PATH",
                       help="write traced events as JSON lines to PATH")
    return parser


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("fault injection")
    group.add_argument("--loss-rate", type=float, default=0.0,
                       help="probability each transfer is lost in flight")
    group.add_argument("--crash-hazard", type=float, default=0.0,
                       help="per-round crash probability per active user")
    group.add_argument("--seeder-outage-rate", type=float, default=0.0,
                       help="per-round transient-outage probability "
                            "per seeder")
    group.add_argument("--seeder-outage-duration", type=int, default=None,
                       help="rounds each seeder outage lasts (default 5)")
    group.add_argument("--report-delay", type=int, default=0,
                       help="rounds reputation reports are delayed")
    group.add_argument("--obligation-expiry", type=int, default=None,
                       help="rounds before a pending encrypted piece "
                            "whose key never arrived is dropped")


def _add_guard_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("runtime guards")
    group.add_argument("--guards", choices=["off", "cheap", "full"],
                       default="off",
                       help="invariant checking: 'cheap' samples the "
                            "heavy checks, 'full' runs every check "
                            "every round")
    group.add_argument("--bundle-dir", metavar="DIR", default=None,
                       help="directory for crash-forensics bundles "
                            "(default ./crash-bundles)")
    group.add_argument("--watchdog-window", type=int, default=None,
                       metavar="ROUNDS",
                       help="rounds without swarm progress before the "
                            "stall watchdog fires (default 60)")
    group.add_argument("--watchdog-action", choices=["degrade", "raise"],
                       default=None,
                       help="on stall: finalize with degraded=True, or "
                            "raise SimulationStalled")


def _apply_guards(config: SimulationConfig,
                  args: argparse.Namespace) -> SimulationConfig:
    if args.guards == "off":
        return config
    overrides = {}
    if args.bundle_dir is not None:
        overrides["bundle_dir"] = args.bundle_dir
    if args.watchdog_window is not None:
        overrides["watchdog_window"] = args.watchdog_window
    if args.watchdog_action is not None:
        overrides["watchdog_action"] = args.watchdog_action
    return config.with_guards(args.guards, **overrides)


def _add_obs_arguments(parser: argparse.ArgumentParser,
                       trace_out_help: str) -> None:
    group = parser.add_argument_group("observability (observation-only: "
                                      "never changes metrics)")
    group.add_argument("--trace", action="store_true",
                       help="record events (transfers, choke decisions, "
                            "reputation movements, bootstraps, completions, "
                            "faults) in a bounded ring buffer")
    group.add_argument("--sample-every", type=int, default=0, metavar="N",
                       help="sample the per-round gauge catalogue every "
                            "N rounds (0 disables)")
    group.add_argument("--profile", action="store_true",
                       help="aggregate wall-clock spans around engine "
                            "dispatch, strategy decisions, and guard passes")
    group.add_argument("--sample-rate", action="append", default=None,
                       metavar="CAT=N",
                       help="keep 1 in N traced events of category CAT "
                            "(repeatable); implies --trace")
    group.add_argument("--trace-out", metavar="PATH", help=trace_out_help)


def _parse_sample_rates(items) -> tuple:
    rates = []
    for item in items or ():
        category, sep, value = item.partition("=")
        try:
            rate = int(value)
        except ValueError:
            rate = -1
        if not sep or rate < 1:
            raise ConfigurationError(
                f"--sample-rate expects CATEGORY=N with N >= 1, "
                f"got {item!r}")
        rates.append((category.strip(), rate))
    return tuple(rates)


def _apply_obs(config: SimulationConfig,
               args: argparse.Namespace) -> SimulationConfig:
    """Enable the observability layer when any of its flags were used.

    May raise :class:`ConfigurationError` (unknown category, bad rate);
    callers translate that into exit code 2.
    """
    rates = _parse_sample_rates(args.sample_rate)
    trace = bool(args.trace or args.trace_out or rates)
    if not (trace or args.profile or args.sample_every > 0):
        return config
    overrides = {"trace_sample_rates": rates} if rates else {}
    return config.with_obs(trace=trace, sample_every=args.sample_every,
                           profile=args.profile, **overrides)


def _export_run_trace(sim: Simulation, path: Optional[str],
                      label: str, prefix: str) -> None:
    """Write a run's Chrome trace (events + series) to ``path``."""
    if not path:
        return
    obs = sim.obs
    events = (obs.tracer.events()
              if obs is not None and obs.tracer is not None else [])
    series = obs.series if obs is not None else None
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_chrome_trace(events, series, label=label))
    print(f"{prefix}: wrote Chrome trace to {path} "
          "(open in https://ui.perfetto.dev)")


def _fault_config(args: argparse.Namespace) -> FaultConfig:
    kwargs = {}
    if args.seeder_outage_duration is not None:
        kwargs["seeder_outage_duration"] = args.seeder_outage_duration
    return FaultConfig(
        transfer_loss_rate=args.loss_rate,
        crash_hazard=args.crash_hazard,
        seeder_outage_rate=args.seeder_outage_rate,
        report_delay_rounds=args.report_delay,
        obligation_expiry_rounds=args.obligation_expiry,
        **kwargs,
    )


def _print_summary(result) -> None:
    for key, value in summary_dict(result).items():
        print(f"  {key:24s} {value}")


def _cmd_run(args: argparse.Namespace) -> int:
    algorithm = Algorithm.parse(args.algorithm)
    config = SimulationConfig(
        algorithm=algorithm,
        n_users=args.users,
        n_pieces=args.pieces,
        seed=args.seed,
        freerider_fraction=args.freeriders,
        attack=targeted_attack_for(algorithm, large_view=args.large_view),
        arrival_process=args.arrivals,
        max_rounds=args.max_rounds,
    )
    faults = _fault_config(args)
    if faults.enabled:
        config = config.with_faults(faults)
    config = _apply_guards(config, args)
    try:
        config = _apply_obs(config, args)
    except ConfigurationError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 2
    for flag, value in (("--subswarms", args.subswarms),
                        ("--coupling-interval", args.coupling_interval),
                        ("--jobs", args.jobs)):
        if value is not None and args.population is None:
            print(f"run: {flag} requires --population", file=sys.stderr)
            return 2
    if args.population is not None:
        try:
            config = config.with_population(
                args.population, n_subswarms=args.subswarms,
                coupling_interval=args.coupling_interval)
        except ConfigurationError as exc:
            print(f"run: {exc}", file=sys.stderr)
            return 2
    downgrade_reason: Optional[str] = None
    if args.backend != "object":
        config = config.with_backend(args.backend)
        config = config.with_backend_fallback(args.backend_fallback)
        reason = vector_unsupported_reason(config)
        if reason is not None:
            if args.backend_fallback == "error":
                print(f"run: the '{args.backend}' backend does not support "
                      f"{reason} and --backend-fallback error forbids the "
                      "object-engine fallback", file=sys.stderr)
                return 2
            if args.backend_fallback == "warn":
                print(f"run: note: this run fell back from the "
                      f"'{args.backend}' backend to the object engine "
                      f"({reason}); results are exact but without the "
                      "vector speedup", file=sys.stderr)
            downgrade_reason = reason
            config = config.with_backend("object")
    sim: Optional[Simulation] = None
    try:
        if config.population is not None:
            from repro.sim.hybrid import run_hybrid_simulation
            result = run_hybrid_simulation(config, jobs=args.jobs)
        elif config.backend == "vector-fast":
            from repro.sim.vector import VectorFastSimulation
            result = VectorFastSimulation(config).run()
        elif config.backend == "vector":
            result = VectorSimulation(config).run()
        else:
            # Hold the Simulation instance (rather than run_simulation) so
            # the observability runtime is still reachable for export
            # afterwards.
            sim = Simulation(config)
            result = sim.run()
    except InvariantViolationError as exc:
        print(f"run: invariant violation: {exc}", file=sys.stderr)
        if exc.bundle_path:
            print(f"run: crash bundle written to {exc.bundle_path}",
                  file=sys.stderr)
        return 3
    except SimulationStalled as exc:
        print(f"run: simulation stalled: {exc}", file=sys.stderr)
        if exc.bundle_path:
            print(f"run: crash bundle written to {exc.bundle_path}",
                  file=sys.stderr)
        return 3
    except SimulationError as exc:
        # Hybrid-engine failures: a subswarm died in its worker, or the
        # population-conservation ledger refused to balance.
        print(f"run: {exc}", file=sys.stderr)
        return 3
    if downgrade_reason is not None:
        # The run executed on the object engine after the pre-check
        # swap; stamp the reason so exported JSON records the downgrade
        # exactly like an in-worker fallback would.
        result.metrics.backend_downgraded = downgrade_reason
    if args.json:
        payload = result_to_json(result)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload)
            print(f"wrote {args.json}")
    else:
        if config.population is not None:
            metrics = result.metrics
            print(f"{algorithm.display_name}: population "
                  f"{metrics.population} as {metrics.n_subswarms} subswarms "
                  f"x {metrics.subswarm_size} users (shard weight "
                  f"{metrics.shard_weight:g}), seed {args.seed}")
        else:
            print(f"{algorithm.display_name}: {args.users} users, "
                  f"{args.pieces} pieces, seed {args.seed}")
        _print_summary(result)
        if config.population is not None:
            metrics = result.metrics
            print(f"  {'population_completed':24s} "
                  f"{metrics.population_completed():.0f}")
            print(f"  {'fluid_residual':24s} {metrics.fluid_residual:.4f}")
    if sim is not None:
        _export_run_trace(sim, args.trace_out,
                          label=f"repro run {algorithm.value}", prefix="run")
    elif args.trace_out and config.population is not None:
        print("run: note: --trace-out has no per-event trace in hybrid "
              "mode; coupling-boundary series are exported in --json "
              "output (metrics.obs.series)", file=sys.stderr)
    if result.metrics.degraded:
        print("run: WARNING: stall watchdog degraded this run "
              "(metrics cover only the rounds before the stall)",
              file=sys.stderr)
        if result.metrics.bundle_path:
            print(f"run: crash bundle written to "
                  f"{result.metrics.bundle_path}", file=sys.stderr)
        return 4
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    algorithm = Algorithm.parse(args.algorithm)
    config = _SCALES[args.scale](algorithm, seed=args.seed)
    config = replace(
        config,
        freerider_fraction=args.freeriders,
        attack=targeted_attack_for(algorithm),
    )
    config = config.with_backend(args.backend)
    config = config.with_backend_fallback(args.backend_fallback)
    faults = _fault_config(args)
    if faults.enabled:
        config = config.with_faults(faults)
    config = _apply_guards(config, args)
    try:
        config = _apply_obs(config, args)
    except ConfigurationError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    for flag, value in (("--subswarms", args.subswarms),
                        ("--coupling-interval", args.coupling_interval)):
        if value is not None and args.population is None:
            print(f"sweep: {flag} requires --population", file=sys.stderr)
            return 2
    if args.population is not None:
        try:
            config = config.with_population(
                args.population, n_subswarms=args.subswarms,
                coupling_interval=args.coupling_interval)
        except ConfigurationError as exc:
            print(f"sweep: {exc}", file=sys.stderr)
            return 2
    if args.backend != "object" and args.backend_fallback == "error":
        # The config is uniform across replicates, so every one would
        # raise in its worker; refuse up front with a clear message.
        reason = vector_unsupported_reason(config)
        if reason is not None:
            print(f"sweep: the '{args.backend}' backend does not support "
                  f"{reason} and --backend-fallback error forbids the "
                  "object-engine fallback", file=sys.stderr)
            return 2
    if args.replicates < 1:
        print("sweep: --replicates must be >= 1", file=sys.stderr)
        return 2
    if args.trace_out and args.sample_every <= 0:
        print("sweep: --trace-out needs --sample-every N (raw trace "
              "events never cross worker pipes; only sampled series do)",
              file=sys.stderr)
        return 2
    seeds = tuple(range(args.seed, args.seed + args.replicates))
    recycle = (args.recycle_after if args.recycle_after is not None
               else DEFAULT_RECYCLE_AFTER)
    backoff = (args.retry_backoff if args.retry_backoff is not None
               else DEFAULT_RETRY_BACKOFF)
    from repro.dist import (AgentUnreachableError, CacheCorruptionError,
                            parse_hosts)
    if args.hosts is not None:
        try:
            parse_hosts(args.hosts)
        except ValueError as exc:
            print(f"sweep: {exc}", file=sys.stderr)
            return 2
    if args.min_agents < 1:
        print("sweep: --min-agents must be >= 1", file=sys.stderr)
        return 2
    try:
        result = run_resilient_sweep(
            config, seeds,
            journal_path=args.journal,
            timeout=args.timeout,
            max_attempts=args.max_attempts,
            retry_backoff=backoff,
            jobs=args.jobs,
            recycle_after=recycle,
            hosts=args.hosts,
            min_agents=args.min_agents,
            local_fallback=not args.no_local_fallback,
            cache_dir=args.cache_dir,
            cache_strict=args.cache_strict,
        )
    except AgentUnreachableError as exc:
        print(f"sweep: agents unreachable: {exc}", file=sys.stderr)
        return 5
    except CacheCorruptionError as exc:
        print(f"sweep: result cache corrupt: {exc}", file=sys.stderr)
        print("sweep: delete the entry (or the cache directory) to "
              "recompute, or drop --cache-strict to treat corruption "
              "as a miss", file=sys.stderr)
        return 6
    print(f"{algorithm.display_name}: {len(seeds)} replicates "
          f"({result.resumed} resumed, {result.cached} cached, "
          f"{result.n_failed} failed)")
    for outcome in result.outcomes:
        status = outcome.status
        if outcome.degraded:
            status += " (degraded: stall watchdog fired)"
        if (outcome.telemetry or {}).get("backend_downgraded"):
            status += " [backend downgraded]"
        if outcome.attempts > 1:
            status += f" after {outcome.attempts} attempts"
        timing = ""
        if outcome.telemetry:
            timing = (f"  [worker {outcome.telemetry.get('worker')}, "
                      f"{outcome.telemetry.get('wall_s', 0.0):.2f}s run, "
                      f"{outcome.telemetry.get('queue_wait_s', 0.0):.2f}s "
                      "queued]")
        print(f"  seed {outcome.seed:5d}  {status}{timing}")
        if outcome.bundle_path:
            print(f"             bundle: {outcome.bundle_path}")
    if args.trace_out:
        series_by_seed = {}
        for outcome in result.outcomes:
            compact = ((outcome.telemetry or {}).get("obs") or {}
                       ).get("series")
            if compact:
                series_by_seed[outcome.seed] = SeriesStore.from_compact(
                    compact)
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(sweep_series_to_chrome_trace(
                series_by_seed,
                label=f"repro sweep {algorithm.value}"))
        print(f"sweep: wrote Chrome trace ({len(series_by_seed)} "
              f"replicate series) to {args.trace_out}")
    engine = result.telemetry
    if engine:
        print(f"engine: {engine.get('jobs', 0)} workers, "
              f"{engine.get('wall_s', 0.0):.2f}s wall, "
              f"{100.0 * engine.get('utilization', 0.0):.0f}% utilized, "
              f"{engine.get('worker_crashes', 0)} crashes, "
              f"{engine.get('timeouts', 0)} timeouts, "
              f"{engine.get('workers_recycled', 0)} recycled")
        for label, host in sorted((engine.get("hosts") or {}).items()):
            print(f"  agent {label}: {host.get('ok', 0)} ok, "
                  f"{host.get('errors', 0)} errors, "
                  f"{host.get('redispatched', 0)} re-dispatched, "
                  f"{host.get('disconnects', 0)} disconnects, "
                  f"{host.get('reconnects', 0)} reconnects")
        if engine.get("fallback_tasks"):
            print(f"  local fallback ran {engine['fallback_tasks']} "
                  "replicate(s)")
        cache_stats = engine.get("cache")
        if cache_stats:
            print(f"cache: {cache_stats.get('hits', 0)} hits, "
                  f"{cache_stats.get('misses', 0)} misses, "
                  f"{cache_stats.get('stores', 0)} stores, "
                  f"{cache_stats.get('corrupt', 0)} corrupt")
    print()
    header = f"{'metric':28s} {'mean':>12s} {'std':>10s} {'n':>3s} {'miss':>4s}"
    print(header)
    for summary in result.metrics.values():
        print(f"{summary.name:28s} {summary.mean:12.4f} "
              f"{summary.std:10.4f} {summary.n:3d} {summary.n_missing:4d}")
    if result.n_backend_downgraded and args.backend_fallback != "silent":
        print(f"sweep: note: {result.n_backend_downgraded} replicate(s) "
              f"fell back from the '{args.backend}' backend to the object "
              "engine (unsupported config axis); results are exact but "
              "without the vector speedup", file=sys.stderr)
    if result.n_failed:
        return 1
    if result.n_degraded:
        print(f"sweep: WARNING: {result.n_degraded} replicate(s) degraded "
              "by the stall watchdog", file=sys.stderr)
        return 4
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    algorithm = Algorithm.parse(args.algorithm)
    overrides = {}
    if args.buffer is not None:
        overrides["trace_buffer"] = args.buffer
    try:
        rates = _parse_sample_rates(args.sample_rate)
        if rates:
            overrides["trace_sample_rates"] = rates
        config = SimulationConfig(
            algorithm=algorithm,
            n_users=args.users,
            n_pieces=args.pieces,
            seed=args.seed,
            freerider_fraction=args.freeriders,
            attack=targeted_attack_for(algorithm),
            max_rounds=args.max_rounds,
        ).with_obs(trace=True, sample_every=args.sample_every,
                   profile=True, **overrides)
    except ConfigurationError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    sim = Simulation(config)
    try:
        sim.run()
    except (InvariantViolationError, SimulationStalled) as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 3
    obs = sim.obs
    print(f"{algorithm.display_name}: {args.users} users, "
          f"{args.pieces} pieces, seed {args.seed} — fully instrumented")
    print()
    print(obs.profiler.table())
    if obs.series is not None and obs.series.names():
        print()
        print(obs.series.dashboard())
    summary = obs.tracer.summary()
    print()
    print(f"trace ring: {summary['retained']} retained, "
          f"{summary['evicted']} evicted "
          f"(capacity {summary['capacity']})")
    for category, counts in sorted(summary["counts"].items()):
        print(f"  {category:12s} seen {counts['seen']:7d}   "
              f"kept {counts['kept']:7d}   "
              f"sampled out {counts['sampled_out']:7d}")
    if args.trace_out:
        _export_run_trace(sim, args.trace_out,
                          label=f"repro trace {algorithm.value}",
                          prefix="trace")
    if args.jsonl_out:
        with open(args.jsonl_out, "w", encoding="utf-8") as handle:
            handle.write(to_jsonl(obs.tracer.events()))
        print(f"trace: wrote event JSONL to {args.jsonl_out}")
    return 0


def _cmd_agent(args: argparse.Namespace) -> int:
    from repro.dist import Agent
    from repro.experiments.executor import default_jobs
    slots = args.slots if args.slots is not None else default_jobs()
    if slots < 1:
        print("agent: --slots must be >= 1", file=sys.stderr)
        return 2
    kwargs = {}
    if args.heartbeat is not None:
        kwargs["heartbeat_interval"] = args.heartbeat
    agent = Agent(host=args.bind, port=args.port, slots=slots,
                  start_method=args.start_method,
                  max_sessions=args.max_sessions, **kwargs)
    try:
        port = agent.bind()
    except OSError as exc:
        print(f"agent: cannot bind {args.bind}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    # The smoke harness (and any supervisor) parses this line to learn
    # the bound port, so print it before blocking — and flush.
    print(f"agent: listening on {args.bind}:{port} ({slots} slots)",
          flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:
        print("agent: interrupted, shutting down", file=sys.stderr)
    finally:
        agent.stop()
    return 0


def _cmd_tables(_args: argparse.Namespace) -> int:
    print(report.full_report(include_figures=False))
    return 0


def _cmd_figure(args: argparse.Namespace, which: str) -> int:
    base = _SCALES[args.scale](seed=args.seed)
    runner = getattr(figures, which)
    result = runner(base, processes=args.processes)
    print(result.to_text())
    if args.plot:
        print()
        print(result.to_charts())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    base = _SCALES[args.scale](seed=args.seed)
    print(report.full_report(base, include_figures=not args.no_figures))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "agent":
        return _cmd_agent(args)
    if args.command == "tables":
        return _cmd_tables(args)
    if args.command in ("figure4", "figure5", "figure6"):
        return _cmd_figure(args, args.command)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
