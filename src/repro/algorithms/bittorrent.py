"""BitTorrent: the reciprocity/altruism hybrid (Section III-A).

A fraction ``1 - alpha_BT`` of upload bandwidth is tit-for-tat: each
round the peer unchokes the ``n_BT`` neighbors from which it received
the most data in the previous round and round-robins pieces to them.
Tit-for-tat requires the partner to have something to trade, so when
no positive contributors exist this bandwidth flows to piece-holding
neighbors — never to empty newcomers. The remaining ``alpha_BT``
fraction is optimistic unchoking: uploads to uniformly random needy
neighbors *including newcomers*, which per Cohen's original design is
the only bootstrap channel (and, per Table III, exactly the resource
free-riders can exploit). The paper's experiments use
``alpha_BT = 0.2``.
"""

from __future__ import annotations

from typing import List

from repro.algorithms.base import Strategy
from repro.names import Algorithm
from repro.sim.context import StrategyContext

__all__ = ["BitTorrentStrategy"]


class BitTorrentStrategy(Strategy):
    """Tit-for-tat toward last round's top contributors, plus optimism."""

    algorithm = Algorithm.BITTORRENT

    def _unchoked(self, ctx: StrategyContext) -> List[int]:
        """Top ``n_BT`` last-round contributors we can still serve."""
        me = ctx.peer
        contributors = [pid for pid in ctx.needy_neighbors()
                        if me.received_last_round.get(pid, 0) > 0]
        contributors.sort(
            key=lambda pid: (-me.received_last_round.get(pid, 0), pid))
        return contributors[: self.params.n_bt]

    def _past_contributors(self, ctx: StrategyContext) -> List[int]:
        """Needy neighbors that have ever uploaded to us.

        Tit-for-tat bandwidth only ever flows toward peers with a
        record of reciprocation — a free-rider never appears here, so
        its intake is capped at the optimistic ``alpha_BT`` share
        (Table III's exploitable-resources row).
        """
        me = ctx.peer
        return [pid for pid in ctx.needy_neighbors()
                if me.received_from.get(pid, 0) > 0]

    def on_round(self, ctx: StrategyContext) -> None:
        unchoked = self._unchoked(ctx)
        if unchoked:
            self.note_decision(ctx, "unchoke", targets=list(unchoked))
        # One attempt per available piece; a tit-for-tat slot with no
        # tradeable partner is *wasted* (reserved bandwidth idles), it
        # is never redirected to newcomers.
        for _ in range(ctx.budget()):
            if ctx.budget() == 0:
                return
            if self.rng.random() < self.params.alpha_bt:
                # Optimistic unchoke: anyone needy, newcomers included.
                self.note_decision(ctx, "optimistic")
                if not self._send_random(ctx):
                    return
                continue
            # Tit-for-tat share: round-robin the unchoke set, pruning
            # targets we can no longer serve and rotating the served
            # one to the back.
            sent_index = None
            for idx, target in enumerate(unchoked):
                if ctx.is_active(target) and ctx.send_piece(target):
                    sent_index = idx
                    break
            if sent_index is not None:
                unchoked = unchoked[sent_index + 1:] + [unchoked[sent_index]]
                continue
            # No last-round partner is servable: fall back to a random
            # all-time contributor. Never hand tit-for-tat bandwidth to
            # peers that have given us nothing.
            self._send_random(ctx, self._past_contributors(ctx))
