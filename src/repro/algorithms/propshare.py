"""PropShare: proportional-share reciprocity (extension, [5]).

PropShare (Levin et al., "BitTorrent is an auction") replaces
BitTorrent's equal-split tit-for-tat with a *proportional* allocation:
each round, the `1 - alpha` reciprocal share of upload bandwidth is
divided among last round's contributors in proportion to how much each
contributed, which is the auction-theoretic best response and is known
to resist strategic under-reporting better than rank-based unchoking.
The `alpha` share remains optimistic (random needy neighbors,
newcomers included).

The paper cites PropShare in Corollary 2's proof (its exchange
feasibility matches BitTorrent's: the reciprocal share still needs
mutual interest, the optimistic share only one-sided interest). It is
not one of the six analysed mechanisms, so this repository ships it as
an extension for ablation studies — see
``benchmarks/bench_extensions.py``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.algorithms.base import Strategy
from repro.names import Algorithm
from repro.sim.context import StrategyContext
from repro.sim.rng import weighted_choice

__all__ = ["PropShareStrategy"]


class PropShareStrategy(Strategy):
    """Contribution-proportional reciprocity plus optimism."""

    algorithm = Algorithm.PROPSHARE

    def _contributors(self, ctx: StrategyContext,
                      last_round_only: bool) -> Dict[int, int]:
        me = ctx.peer
        ledger = me.received_last_round if last_round_only else me.received_from
        needy = set(ctx.needy_neighbors())
        return {pid: amount
                for pid, amount in ledger.items()
                if amount > 0 and pid in needy}

    def on_round(self, ctx: StrategyContext) -> None:
        # One attempt per available piece; reciprocal slots with no
        # contributor to serve are wasted, never given to newcomers
        # (same discipline as our BitTorrent strategy).
        for _ in range(ctx.budget()):
            if ctx.budget() == 0:
                return
            if self.rng.random() < self.params.alpha_bt:
                if not self._send_random(ctx):
                    return
                continue
            weights = self._contributors(ctx, last_round_only=True)
            if not weights:
                # Quiet last round: weight by all-time contributions.
                weights = self._contributors(ctx, last_round_only=False)
            if not weights:
                continue  # reciprocal slot idles
            targets: List[int] = sorted(weights)
            target = weighted_choice(self.rng, targets,
                                     [float(weights[t]) for t in targets])
            ctx.send_piece(target)
