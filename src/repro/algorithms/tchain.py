"""T-Chain: the reciprocity/reputation hybrid (Section III-A, [8]).

Uploads are *encrypted*: the receiver gets the data but not the key.
The key is released only after the receiver reciprocates — either
**directly** (uploading a piece back to the uploader) or **indirectly**
(forwarding a piece to a third user the uploader designates). Through
indirect reciprocity a newcomer can reciprocate with the very piece it
just received, so T-Chain bootstraps nearly as fast as altruism while
giving free-riders nothing usable.

The strategy per round:

1. Fulfil pending obligations, oldest first — a compliant user always
   reciprocates as soon as it can (the runner tries direct repayment,
   then forwarding to the designated or any other needy user).
2. Spend remaining budget on *opportunistic seeding*: encrypted
   uploads to random needy neighbors, skipping peers with stale unmet
   obligations (the mechanism's zero-tolerance for free-riders).

This realises Lemma 2's observation that T-Chain reaches full upload
utilisation: every user can initiate as many exchanges as capacity
allows, because reciprocation is guaranteed by the key escrow.
"""

from __future__ import annotations

from repro.algorithms.base import Strategy
from repro.names import Algorithm
from repro.sim.context import StrategyContext

__all__ = ["TChainStrategy"]


class TChainStrategy(Strategy):
    """Reciprocate first, then opportunistically seed encrypted pieces."""

    algorithm = Algorithm.TCHAIN

    def on_round(self, ctx: StrategyContext) -> None:
        # 1. Honour our own obligations before anything else.
        for pending in ctx.pending_obligations():
            if ctx.budget() == 0:
                return
            ctx.fulfill_obligation(pending)

        # 2. Opportunistic seeding with the remaining capacity.
        while ctx.budget() > 0:
            if not ctx.send_encrypted_random():
                return
