"""Pure altruism (Section III-A).

Users upload their full capacity to uniformly random neighbors that
need pieces, with no attempt at reciprocity. The most efficient and
fastest-bootstrapping mechanism — and the most exploitable: every
upload slot is equally available to free-riders (Table III).
"""

from __future__ import annotations

from repro.algorithms.base import Strategy
from repro.names import Algorithm
from repro.sim.context import StrategyContext

__all__ = ["AltruismStrategy"]


class AltruismStrategy(Strategy):
    """Spray pieces at random needy neighbors until the budget is gone."""

    algorithm = Algorithm.ALTRUISM

    def on_round(self, ctx: StrategyContext) -> None:
        while ctx.budget() > 0:
            if not self._send_random(ctx):
                return
