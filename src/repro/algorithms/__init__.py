"""The six incentive mechanisms as pluggable peer strategies.

Use :func:`create_strategy` to instantiate the policy for a given
:class:`~repro.names.Algorithm`; the simulator attaches one instance
per peer.
"""

from __future__ import annotations

import random
from typing import Dict, Type

from repro.algorithms.altruism import AltruismStrategy
from repro.algorithms.base import SeederStrategy, Strategy
from repro.algorithms.bittorrent import BitTorrentStrategy
from repro.algorithms.fairtorrent import FairTorrentStrategy
from repro.algorithms.reciprocity import ReciprocityStrategy
from repro.algorithms.propshare import PropShareStrategy
from repro.algorithms.reputation import ReputationStrategy
from repro.algorithms.tchain import TChainStrategy
from repro.errors import UnknownAlgorithmError
from repro.names import Algorithm
from repro.sim.config import StrategyParameters

__all__ = [
    "Strategy",
    "SeederStrategy",
    "ReciprocityStrategy",
    "AltruismStrategy",
    "ReputationStrategy",
    "PropShareStrategy",
    "BitTorrentStrategy",
    "FairTorrentStrategy",
    "TChainStrategy",
    "STRATEGY_CLASSES",
    "create_strategy",
]

STRATEGY_CLASSES: Dict[Algorithm, Type[Strategy]] = {
    Algorithm.RECIPROCITY: ReciprocityStrategy,
    Algorithm.ALTRUISM: AltruismStrategy,
    Algorithm.REPUTATION: ReputationStrategy,
    Algorithm.BITTORRENT: BitTorrentStrategy,
    Algorithm.FAIRTORRENT: FairTorrentStrategy,
    Algorithm.TCHAIN: TChainStrategy,
    Algorithm.PROPSHARE: PropShareStrategy,
}


def create_strategy(algorithm: Algorithm, params: StrategyParameters,
                    rng: random.Random) -> Strategy:
    """Instantiate the strategy implementing ``algorithm``."""
    try:
        cls = STRATEGY_CLASSES[Algorithm.parse(algorithm)]
    except (KeyError, ValueError) as exc:
        raise UnknownAlgorithmError(str(algorithm)) from exc
    return cls(params, rng)
