"""Strategy interface: incentive mechanisms as per-peer policies.

A :class:`Strategy` instance is attached to exactly one peer and is
invoked once per round with a :class:`~repro.sim.context.StrategyContext`.
The strategy decides how to spend the peer's upload budget by calling
the context's guarded send methods; everything else (ledgers, piece
selection, metrics, T-Chain key management) is handled by the runner,
so the strategy code reads like the paper's algorithm descriptions.
"""

from __future__ import annotations

import abc
import random
from typing import ClassVar, List, Optional

from repro.names import Algorithm
from repro.sim.config import StrategyParameters
from repro.sim.context import StrategyContext

__all__ = ["Strategy", "SeederStrategy"]


class Strategy(abc.ABC):
    """Base class for per-peer upload policies."""

    #: The mechanism this strategy implements; None for special roles
    #: (seeder, free-rider) that exist under every mechanism.
    algorithm: ClassVar[Optional[Algorithm]] = None

    def __init__(self, params: StrategyParameters, rng: random.Random) -> None:
        self.params = params
        self.rng = rng

    @abc.abstractmethod
    def on_round(self, ctx: StrategyContext) -> None:
        """Spend this round's upload budget through ``ctx``."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _send_random(self, ctx: StrategyContext,
                     candidates: Optional[List[int]] = None) -> bool:
        """Send one plain piece to a uniformly random needy neighbor."""
        pool = ctx.needy_neighbors() if candidates is None else candidates
        if not pool:
            return False
        target = self.rng.choice(pool)
        return ctx.send_piece(target)

    def note_decision(self, ctx: StrategyContext, name: str,
                      target_id: Optional[int] = None, **fields) -> None:
        """Trace a policy decision into the run's event tracer.

        A thin forward to :meth:`StrategyContext.note_decision`
        (``choke`` category): free to call unconditionally — with
        tracing off it is a no-op — and observation-only, so emitting
        decisions can never perturb a seeded run.
        """
        ctx.note_decision(name, target_id=target_id, **fields)


class SeederStrategy(Strategy):
    """The seeder's policy, identical under every mechanism.

    The seeder altruistically uploads to uniformly random users that
    need pieces — the ``u_S / N`` expected seeder bandwidth of Eq. 1
    and the ``n_S`` bootstrap channel of Table II. Seeder pieces are
    always plain (usable immediately), including under T-Chain, where
    the seeder's job is precisely to start reciprocation chains.
    """

    def on_round(self, ctx: StrategyContext) -> None:
        while ctx.budget() > 0:
            if not self._send_random(ctx):
                break
