"""Global reputation system (Section III-A, EigenTrust-style).

Reputations are global knowledge: each user's score is the total
amount of data it has (reportedly) uploaded to anyone. Uploaders pick
receivers probabilistically, with probability proportional to
reputation — "the probability of uploading to another user is
proportional to the total number of pieces uploaded by that user".
A reserved fraction ``alpha_R`` of bandwidth is spent altruistically
on uniformly random users, which is the only way zero-reputation
newcomers get bootstrapped (Table II's ``z(t)/2`` row reflects half
the users making one altruistic upload per slot).

The score lives on the swarm's :class:`~repro.sim.swarm.ReputationBoard`,
which accepts *reports* — making the mechanism structurally vulnerable
to the false-praise collusion of Section IV-C.
"""

from __future__ import annotations

from repro.algorithms.base import Strategy
from repro.names import Algorithm
from repro.sim.context import StrategyContext
from repro.sim.rng import weighted_choice

__all__ = ["ReputationStrategy"]


class ReputationStrategy(Strategy):
    """Reputation-weighted uploads plus an altruism fraction."""

    algorithm = Algorithm.REPUTATION

    def on_round(self, ctx: StrategyContext) -> None:
        attempts = ctx.budget()
        for _ in range(attempts):
            if ctx.budget() == 0:
                return
            candidates = ctx.needy_neighbors()
            if not candidates:
                return
            if self.rng.random() < self.params.alpha_r:
                target = self.rng.choice(candidates)
            else:
                weights = [ctx.reputation_of(pid) for pid in candidates]
                if sum(weights) <= 0:
                    # The reserved (1 - alpha_R) bandwidth is unusable
                    # while every candidate has zero reputation — this
                    # is precisely why reputation systems bootstrap
                    # slowly (Table II's reputation row).
                    continue
                target = weighted_choice(self.rng, candidates, weights)
            if not ctx.send_piece(target):
                return
