"""Batched per-round decision kernels for the vector backend.

Each kernel re-expresses one strategy's ``on_round`` over the
struct-of-arrays state of
:class:`repro.sim.vector.VectorSimulation`: candidate discovery is a
masked array query done once per turn (then repaired in place after
each send), while the *decision* sequence — every ``random()`` draw,
every ``choice``, every ``shuffle``, in order — matches the object
strategy exactly. That draw-for-draw equivalence is what makes the
two backends produce byte-identical metrics digests (see
``tests/integration/test_seed_equivalence.py``); comments below flag
each place where a strategy's control flow forces (or forbids) an RNG
draw. Uniform picks use the engine's inlined ``_randbelow`` (the same
draw sequence as ``rng.choice``) so the drawn index can repair the
pool without a search.

Kernels are fault-agnostic: transfer loss, seeder outages, crashes,
delayed reports, and obligation expiry all happen in the engine's
round phases and send paths, never here. The one interaction worth
naming is delayed reports — kernels read ``sim.rep`` directly, and
under ``report_delay_rounds`` that board is *stale by design* (both
engines flush queued reports at the same round boundary, so staleness
is part of the shared draw sequence, not a divergence).

A kernel is called as ``kernel(sim, s, rng)`` with the simulation, the
acting peer's slot, and that peer's private strategy stream. Kernels
for ledger-based strategies read the per-slot pairwise ledgers
(``sim.rcv_d`` / ``sim.upl_d`` dicts, ``sim.D`` deficit matrix);
:data:`RECEIVED_ALGORITHMS` / :data:`DEFICIT_ALGORITHMS` /
:data:`RECEIPT_ALGORITHMS` tell the engine which ledgers a run needs
so the others are never maintained.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List

import numpy as np

from repro.names import Algorithm
from repro.sim.rng import weighted_choice
# No cycle: vector.py defers its kernel import into __init__.
from repro.sim.vector import _shuffle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.vector import VectorSimulation

__all__ = ["KERNELS", "FAST_KERNELS", "DEFICIT_ALGORITHMS",
           "RECEIVED_ALGORITHMS", "RECEIPT_ALGORITHMS", "run_spray",
           "run_reciprocity", "run_fairtorrent", "run_bittorrent",
           "run_propshare", "run_reputation", "run_tchain",
           "run_freerider", "run_spray_fast", "run_fairtorrent_fast",
           "run_bittorrent_fast", "run_propshare_fast",
           "run_reputation_fast", "run_tchain_fast"]

#: Algorithms whose kernels read the all-time received-from ledger.
RECEIVED_ALGORITHMS: FrozenSet[Algorithm] = frozenset({
    Algorithm.RECIPROCITY, Algorithm.BITTORRENT, Algorithm.PROPSHARE,
})

#: Algorithms that need the pairwise sent-minus-received deficit.
DEFICIT_ALGORITHMS: FrozenSet[Algorithm] = frozenset({
    Algorithm.FAIRTORRENT,
})

#: Algorithms that additionally need the last-round receipt window
#: (``peer.received_last_round`` in the object engine).
RECEIPT_ALGORITHMS: FrozenSet[Algorithm] = frozenset({
    Algorithm.BITTORRENT, Algorithm.PROPSHARE,
})


def run_spray(sim: "VectorSimulation", s: int, rng: random.Random) -> None:
    """Seeder / Altruism: full capacity to uniformly random needy peers."""
    budget = sim.budgets[s]
    if sim.cnt[s] == 0 or not budget.can_send():
        # With nothing to offer the needy pool is empty, so the object
        # strategy bails on its first ``_send_random`` without drawing.
        return
    needy = sim.begin_turn(s).needy
    grb = rng.getrandbits
    while budget.can_send():
        n = len(needy)
        if n == 0:
            return
        # rng.choice(pool), inlined to keep the drawn index.
        k = n.bit_length()
        j = grb(k)
        while j >= n:
            j = grb(k)
        if not sim._plain_send(s, needy[j], j):
            return


def run_reciprocity(sim: "VectorSimulation", s: int,
                    rng: random.Random) -> None:
    """Pure direct reciprocity: repay the largest creditor. No RNG.

    The engine maintains ``sim.cred[s]`` — counterparties whose
    received-from exceeds uploaded-to — incrementally on every send,
    so a turn only scans that (small) set for view membership and
    interest instead of running the full needy-pool query. The
    strategy draws no randomness, so skipping discovery entirely on
    creditor-less turns is draw-equivalent.
    """
    budget = sim.budgets[s]
    if sim.cnt[s] == 0 or not budget.can_send():
        return
    cred = sim.cred[s]
    if not cred:
        return
    vs = sim.vset.get(sim.ids[s])
    if not vs:
        return
    members = sim.members
    rcv = sim.rcv_d[s]
    held = sim.held
    usable_s = sim.usable[s]
    while budget.can_send():
        # max by (received, -pid) over creditors that are in view,
        # active, and needy — the object strategy's exact key.
        best_pid = -1
        best_r = -1
        for pid in cred:
            if pid in vs and held[members[pid]] & usable_s != usable_s:
                r = rcv[pid]
                if r > best_r or (r == best_r and pid < best_pid):
                    best_r = r
                    best_pid = pid
        if best_pid < 0:
            return
        if not sim._plain_send(s, best_pid):
            return


def run_fairtorrent(sim: "VectorSimulation", s: int,
                    rng: random.Random) -> None:
    """Serve the neighbor we owe the most (lowest deficit).

    One numpy gather over the needy pool finds the minimum deficit
    and its (ascending) tie list. Each send bumps only its target's
    deficit — the target leaves the minimum level either way — so the
    tie list shrinks by exactly the served peer and remains the
    object strategy's tie list until it drains; only then can the
    minimum move (it never decreases mid-turn), which a rescan of the
    repaired pool picks up.
    """
    budget = sim.budgets[s]
    if sim.cnt[s] == 0 or not budget.can_send():
        return
    turn = sim.begin_turn(s)
    drow = sim.D[s]
    slot_np = sim.slot_np
    grb = rng.getrandbits
    while True:
        needy = turn.needy
        if not needy:
            return
        arr = np.array(needy, dtype=np.int64)
        d = drow[slot_np[arr]]
        ties = arr[d == d.min()].tolist()
        while ties:
            n = len(ties)
            if n == 1:
                j = 0
                tid = ties[0]
            else:
                # Tie at the minimum: uniform pick, one draw —
                # identical to ``rng.choice`` over the object
                # strategy's tie list (same membership, same order).
                k = n.bit_length()
                j = grb(k)
                while j >= n:
                    j = grb(k)
                tid = ties[j]
            if not sim._plain_send(s, tid):
                return
            ties.pop(j)
            if not budget.can_send():
                return


def run_bittorrent(sim: "VectorSimulation", s: int,
                   rng: random.Random) -> None:
    """Tit-for-tat toward last round's top contributors, plus optimism."""
    budget = sim.budgets[s]
    b0 = budget.available()
    if b0 == 0:
        return
    alpha = sim.params.alpha_bt
    random_ = rng.random
    if sim.cnt[s] == 0:
        # Empty-handed round: every slot draws its optimism coin; a
        # hit fails ``_send_random`` (empty pool) and returns, a miss
        # idles through the empty unchoke set. The strategy's budget
        # never decreases, so its mid-loop budget check cannot trip.
        for _ in range(b0):
            if random_() < alpha:
                return
        return
    # The needy pool is built lazily: tit-for-tat slots only probe
    # their (at most n_bt) unchoked targets directly.
    turn = sim.begin_turn_lazy(s)
    members = sim.members
    held = sim.held
    usable_s = sim.usable[s]
    lr = sim.last_rcv[s]
    unchoked: list = []
    if lr:
        # Last round's contributors that are still in view and needy,
        # ascending — the same list as filtering the full needy pool
        # by receipt, built from the (much smaller) receipt window.
        vs = sim.vset.get(sim.ids[s]) or ()
        cand = []
        for pid in sorted(lr):
            if (lr[pid] > 0 and pid in vs
                    and held[members[pid]] & usable_s != usable_s):
                cand.append(pid)
        cand.sort(key=lambda pid: (-lr[pid], pid))
        unchoked = cand[:sim.params.n_bt]
    grb = rng.getrandbits
    for _ in range(b0):
        if not budget.can_send():
            return
        if random_() < alpha:
            # Optimistic unchoke: anyone needy, newcomers included.
            needy = turn.needy
            if needy is None:
                needy = sim.ensure_needy(turn)
            n = len(needy)
            if n == 0:
                return
            k = n.bit_length()
            j = grb(k)
            while j >= n:
                j = grb(k)
            if not sim._plain_send(s, needy[j], j):
                return
            continue
        # Tit-for-tat: round-robin the unchoke set, pruning targets we
        # can no longer serve, rotating the served one to the back.
        # Each attempt is budget-gated like the object engine's
        # ``_valid_target``: a *lost* send consumes the credit, after
        # which the remaining probes must fail without drawing.
        sent_index = None
        for idx, target in enumerate(unchoked):
            if (target in members and budget.can_send()
                    and sim._plain_send(s, target)):
                sent_index = idx
                break
        if sent_index is not None:
            unchoked = unchoked[sent_index + 1:] + [unchoked[sent_index]]
            continue
        # Fall back to a random all-time contributor (result ignored;
        # an empty pool draws nothing). The choice is drawn even when
        # a lost tit-for-tat probe just spent the budget — the object
        # strategy's ``_send_random`` draws before its send fails.
        needy = turn.needy
        if needy is None:
            needy = sim.ensure_needy(turn)
        if needy:
            arr = np.array(needy, dtype=np.int64)
            past = arr[sim.R[s, sim.slot_np[arr]] > 0].tolist()
            if past:
                n = len(past)
                k = n.bit_length()
                j = grb(k)
                while j >= n:
                    j = grb(k)
                if budget.can_send():
                    sim._plain_send(s, past[j])


def run_propshare(sim: "VectorSimulation", s: int,
                  rng: random.Random) -> None:
    """Contribution-proportional reciprocity plus optimism."""
    budget = sim.budgets[s]
    b0 = budget.available()
    if b0 == 0:
        return
    alpha = sim.params.alpha_bt
    random_ = rng.random
    if sim.cnt[s] == 0:
        # Same empty-handed draw pattern as BitTorrent: an optimism
        # hit returns (empty pool), a miss finds no contributor
        # weights and idles the slot.
        for _ in range(b0):
            if random_() < alpha:
                return
        return
    needy = sim.begin_turn(s).needy
    grb = rng.getrandbits
    for _ in range(b0):
        if not budget.can_send():
            return
        if random_() < alpha:
            n = len(needy)
            if n == 0:
                return
            k = n.bit_length()
            j = grb(k)
            while j >= n:
                j = grb(k)
            if not sim._plain_send(s, needy[j], j):
                return
            continue
        lr = sim.last_rcv[s]
        weights: Dict[int, int] = {}
        if lr:
            for pid, amt in lr.items():
                if amt > 0:
                    i = bisect_left(needy, pid)
                    if i < len(needy) and needy[i] == pid:
                        weights[pid] = amt
        if not weights and needy:
            # Quiet last round: weight by all-time contributions.
            arr = np.array(needy, dtype=np.int64)
            amts = sim.R[s, sim.slot_np[arr]]
            for pid, amt in zip(arr.tolist(), amts.tolist()):
                if amt > 0:
                    weights[pid] = amt
        if not weights:
            continue  # reciprocal slot idles
        targets = sorted(weights)
        target = weighted_choice(rng, targets,
                                 [float(weights[t]) for t in targets])
        sim._plain_send(s, target)


def run_reputation(sim: "VectorSimulation", s: int,
                   rng: random.Random) -> None:
    """Reputation-weighted uploads plus an altruism fraction."""
    budget = sim.budgets[s]
    attempts = budget.available()
    if attempts == 0 or sim.cnt[s] == 0:
        # No pieces: the object strategy returns on its first empty
        # candidate list, before any draw.
        return
    needy = sim.begin_turn(s).needy
    alpha = sim.params.alpha_r
    rep = sim.rep
    grb = rng.getrandbits
    for _ in range(attempts):
        if not budget.can_send():
            return
        n = len(needy)
        if n == 0:
            return
        if rng.random() < alpha:
            k = n.bit_length()
            j = grb(k)
            while j >= n:
                j = grb(k)
            if not sim._plain_send(s, needy[j], j):
                return
        else:
            weights = [rep[pid] for pid in needy]
            total = 0.0
            for w in weights:
                total += w
            if total <= 0:
                continue  # reserved share unusable: all zero-rep
            target = weighted_choice(rng, needy, weights)
            if not sim._plain_send(s, target):
                return


def run_tchain(sim: "VectorSimulation", s: int, rng: random.Random) -> None:
    """Fulfil pending obligations, then seed encrypted pieces."""
    budget = sim.budgets[s]
    pend = sim.pend[s]
    if pend:
        # Oldest obligations first, piece id as tiebreak — the same
        # order ``ctx.pending_obligations()`` yields. Snapshot before
        # fulfilling: fulfilment mutates the dict.
        for piece, _entry in sorted(pend.items(),
                                    key=lambda kv: (kv[1][2], kv[0])):
            if not budget.can_send():
                return
            sim.tchain_fulfill(s, piece)
    if not budget.can_send():
        return
    # Seeding-phase candidates, computed once: a successful seed can
    # only change the *seeded target's* eligibility (its pending set
    # and possibly — under collusion — its piece set), so the list is
    # repaired per send instead of re-queried per send.
    elig = sim.tchain_elig(s)
    grb = rng.getrandbits
    members = sim.members
    held = sim.held
    usable_s = sim.usable[s]
    while budget.can_send():
        candidates = elig.copy()
        _shuffle(candidates, grb)
        for tid in candidates:
            if sim.tchain_seed(s, tid):
                ts = members.get(tid)
                if (ts is None or held[ts] & usable_s == usable_s
                        or sim._blacklisted(ts)):
                    i = bisect_left(elig, tid)
                    if i < len(elig) and elig[i] == tid:
                        elig.pop(i)
                break
        else:
            return  # no candidate accepted a seed


def run_freerider(sim: "VectorSimulation", s: int,
                  rng: random.Random) -> None:
    """Free-rider: never uploads; optionally false-praises a colluder."""
    attack = sim.attack
    if not attack.false_praise:
        return
    members = sim.members
    colluders = [pid for pid in sorted(sim.colluders[s]) if pid in members]
    if not colluders:
        return
    beneficiary = rng.choice(colluders)
    sim.rep[beneficiary] += attack.fake_praise_amount
    sim.fake_reported += attack.fake_praise_amount


KERNELS: Dict[Algorithm, Callable] = {
    Algorithm.RECIPROCITY: run_reciprocity,
    Algorithm.ALTRUISM: run_spray,
    Algorithm.REPUTATION: run_reputation,
    Algorithm.BITTORRENT: run_bittorrent,
    Algorithm.FAIRTORRENT: run_fairtorrent,
    Algorithm.TCHAIN: run_tchain,
    Algorithm.PROPSHARE: run_propshare,
}


# ----------------------------------------------------------------------
# Fast-lineage kernels (the ``vector-fast`` backend)
# ----------------------------------------------------------------------
# Same decision *policies* as the kernels above, freed from the
# draw-for-draw parity contract: uniform picks come from the engine's
# buffered PCG64 sampler (``sim._fs``), and bookkeeping the object
# strategies force purely for draw alignment (full shuffles, per-send
# rescans, recomputed weight vectors) is batched or made lazy. These
# run only under ``digest_lineage="fast-v1"``; their distributional
# equivalence to the object engine is enforced by
# ``tests/integration/test_distributional_parity.py``.


def _weighted_pick(x: float, pool: List[int], weights: List[float]) -> int:
    """Index into ``pool`` for cumulative-weight position ``x``.

    Same scan as :func:`repro.sim.rng.weighted_choice`, with the unit
    draw supplied by the caller (pre-scaled by the weight total) and
    the *last positive weight* as the float-rounding fall-through.
    """
    acc = 0.0
    for i, w in enumerate(weights):
        if w > 0.0:
            acc += w
            if x < acc:
                return i
    for i in range(len(weights) - 1, -1, -1):
        if weights[i] > 0.0:
            return i
    return 0


def run_spray_fast(sim: "VectorSimulation", s: int,
                   rng: random.Random) -> None:
    """Seeder / Altruism spray, drawing targets from the fast sampler.

    The fast engine's needy pool is a maybe-stale superset of *slots*
    (see ``VectorFastSimulation._pool_for``): each drawn candidate is
    validated with one bigint interest test and evicted on staleness.
    Rejection sampling from a superset is exactly uniform over the
    true needy pool, so the spray distribution is unchanged.
    """
    budget = sim.budgets[s]
    if sim.cnt[s] == 0 or not budget.can_send():
        return
    needy = sim.begin_turn(s).needy
    out = sim._pout[s]
    ids = sim.ids
    held = sim.held
    cnt = sim.cnt
    npieces = sim.n_pieces
    uw = sim.usable[s]
    den = budget._den
    rb = sim._fs.randbelow
    send = sim._plain_send
    while True:
        n = len(needy)
        if n == 0:
            return
        j = rb(n) if n > 1 else 0
        t = needy[j]
        if held[t] & uw != uw:
            if not send(s, ids[t], j):
                return
            if budget._credits_num < den:
                return
        else:
            needy[j] = needy[n - 1]
            needy.pop()
            if cnt[t] != npieces:
                out.append(t)


def run_fairtorrent_fast(sim: "VectorSimulation", s: int,
                         rng: random.Random) -> None:
    """FairTorrent min-deficit serving on the fast sampler.

    Same gather-and-drain structure as the parity kernel (bucketing
    the whole pool by level up front costs more than the occasional
    re-gather: drains are rare because a turn's budget is small). The
    tie pick is drawn from the buffered sampler with a swap-pop
    instead of the parity kernel's order-preserving ``pop(j)``.
    """
    budget = sim.budgets[s]
    if sim.cnt[s] == 0 or not budget.can_send():
        return
    needy = sim.begin_turn(s).needy
    out = sim._pout[s]
    ids = sim.ids
    held = sim.held
    cnt = sim.cnt
    npieces = sim.n_pieces
    uw = sim.usable[s]
    drow = sim.D[s]
    den = budget._den
    rb = sim._fs.randbelow
    send = sim._plain_send
    while True:
        if not needy:
            return
        arr = np.array(needy, dtype=np.int64)
        d = drow[arr]
        ties = arr[d == d.min()].tolist()
        while ties:
            n = len(ties)
            j = rb(n) if n > 1 else 0
            t = ties[j]
            ties[j] = ties[-1]
            ties.pop()
            if held[t] & uw == uw:
                # Stale superset entry: evict; the remaining ties are
                # still the minimum level of the remaining pool.
                k = needy.index(t)
                needy[k] = needy[-1]
                needy.pop()
                if cnt[t] != npieces:
                    out.append(t)
                continue
            if not send(s, ids[t]):
                return
            if budget._credits_num < den:
                return


def run_bittorrent_fast(sim: "VectorSimulation", s: int,
                        rng: random.Random) -> None:
    """Tit-for-tat plus optimism, coins and picks from the fast sampler."""
    budget = sim.budgets[s]
    b0 = budget.available()
    if b0 == 0:
        return
    alpha = sim.params.alpha_bt
    fs = sim._fs
    if sim.cnt[s] == 0:
        # Empty-handed: nothing can be sent whichever way the coins
        # land, so skip the per-slot coin flips entirely (the draws
        # exist only for parity replay).
        return
    turn = sim.begin_turn_lazy(s)
    members = sim.members
    held = sim.held
    usable_s = sim.usable[s]
    lr = sim.last_rcv[s]
    unchoked: list = []
    if lr:
        vs = sim.vset.get(sim.ids[s]) or ()
        cand = []
        # No pre-sort needed: the (-amount, pid) key is a total order,
        # so the final sort is insertion-order independent.
        for pid, amt in lr.items():
            if (amt > 0 and pid in vs
                    and held[members[pid]] & usable_s != usable_s):
                cand.append(pid)
        cand.sort(key=lambda pid: (-lr[pid], pid))
        unchoked = cand[:sim.params.n_bt]
    rb = fs.randbelow
    send = sim._plain_send
    out = sim._pout[s]
    ids = sim.ids
    cnt = sim.cnt
    npieces = sim.n_pieces
    den = budget._den
    left = b0
    past: list = None  # per-turn contributor cache for the fallback
    while left > 0:
        left -= 1
        if budget._credits_num < den:
            return
        if fs.random() < alpha:
            needy = turn.needy
            if needy is None:
                needy = sim.ensure_needy(turn)
            while True:
                n = len(needy)
                if n == 0:
                    return
                j = rb(n) if n > 1 else 0
                t = needy[j]
                if held[t] & usable_s != usable_s:
                    if not send(s, ids[t], j):
                        return
                    break
                needy[j] = needy[n - 1]
                needy.pop()
                if cnt[t] != npieces:
                    out.append(t)
            continue
        sent_index = None
        # Budget is known >= den here (checked at the top of the
        # iteration; failed sends consume nothing), so membership is
        # the only gate before the send attempt.
        for idx, target in enumerate(unchoked):
            if target in members and send(s, target):
                sent_index = idx
                break
        if sent_index is not None:
            unchoked = unchoked[sent_index + 1:] + [unchoked[sent_index]]
            continue
        # Fallback: a random all-time contributor among the needy.
        # The contributor set is fixed within the turn (the uploader
        # receives nothing during its own slots), so it is built once
        # and revalidated per draw — rejection keeps the pick uniform
        # over the still-interesting contributors.
        needy = turn.needy
        if needy is None:
            needy = sim.ensure_needy(turn)
        if past is None:
            base = s * sim.n_slots
            Rf = sim._Rf
            past = [t for t in needy if Rf[base + t] > 0]
        while past:
            n = len(past)
            j = rb(n) if n > 1 else 0
            t = past[j]
            if held[t] & usable_s != usable_s:
                send(s, ids[t])
                break
            past[j] = past[n - 1]
            past.pop()
            try:
                k = needy.index(t)
            except ValueError:
                # Already repaired out of the needy pool by an
                # earlier send this turn.
                continue
            needy[k] = needy[-1]
            needy.pop()
            if cnt[t] != npieces:
                out.append(t)


def run_propshare_fast(sim: "VectorSimulation", s: int,
                       rng: random.Random) -> None:
    """Contribution-proportional reciprocity on the fast sampler."""
    budget = sim.budgets[s]
    b0 = budget.available()
    if b0 == 0:
        return
    alpha = sim.params.alpha_bt
    fs = sim._fs
    if sim.cnt[s] == 0:
        return  # nothing to send; skip the parity-only coin flips
    needy = sim.begin_turn(s).needy
    out = sim._pout[s]
    members = sim.members
    ids = sim.ids
    held = sim.held
    cnt = sim.cnt
    npieces = sim.n_pieces
    uw = sim.usable[s]
    vs = sim.vset.get(sim.ids[s]) or ()
    den = budget._den
    rb = fs.randbelow
    send = sim._plain_send
    left = b0
    while left > 0:
        left -= 1
        if budget._credits_num < den:
            return
        if fs.random() < alpha:
            while True:
                n = len(needy)
                if n == 0:
                    return
                j = rb(n) if n > 1 else 0
                t = needy[j]
                if held[t] & uw != uw:
                    if not send(s, ids[t], j):
                        return
                    break
                needy[j] = needy[n - 1]
                needy.pop()
                if cnt[t] != npieces:
                    out.append(t)
            continue
        # Reciprocal slot: weight by last-round (then all-time)
        # contribution. Candidates are interest-tested directly —
        # equivalent to the parity kernel's membership check against
        # its per-turn needy pool, which the superset pool replaces.
        lr = sim.last_rcv[s]
        weights: Dict[int, int] = {}
        if lr:
            for pid, amt in lr.items():
                if amt > 0 and pid in vs:
                    ts = members.get(pid)
                    if ts is not None and held[ts] & uw != uw:
                        weights[pid] = amt
        if not weights and needy:
            arr = np.array(needy, dtype=np.int64)
            amts = sim.R[s, arr]
            for t, amt in zip(arr.tolist(), amts.tolist()):
                if amt > 0 and held[t] & uw != uw:
                    weights[ids[t]] = amt
        if not weights:
            continue  # reciprocal slot idles
        targets = sorted(weights)
        wlist = [float(weights[t]) for t in targets]
        total = 0.0
        for w in wlist:
            total += w
        send(s, targets[_weighted_pick(fs.random() * total, targets, wlist)])


def run_reputation_fast(sim: "VectorSimulation", s: int,
                        rng: random.Random) -> None:
    """Reputation-weighted uploads with a turn-cached weight vector.

    Targets' reputations cannot change during the uploader's own turn
    (only the uploader earns reputation from its sends), so the weight
    vector is computed once and rebuilt only when the needy pool
    shrinks — the parity kernel rebuilds it on every reciprocal send.
    """
    budget = sim.budgets[s]
    attempts = budget.available()
    if attempts == 0 or sim.cnt[s] == 0:
        return
    needy = sim.begin_turn(s).needy
    out = sim._pout[s]
    ids = sim.ids
    held = sim.held
    cnt = sim.cnt
    npieces = sim.n_pieces
    uw = sim.usable[s]
    alpha = sim.params.alpha_r
    rep = sim.rep
    fs = sim._fs
    den = budget._den
    rb = fs.randbelow
    send = sim._plain_send
    weights: List[float] = []
    total = 0.0
    stale = True

    def evict(i: int, t: int) -> None:
        # Swap-pop keeps ``weights`` index-aligned with the pool.
        needy[i] = needy[-1]
        needy.pop()
        if cnt[t] != npieces:
            out.append(t)
        if not stale and len(weights) == len(needy) + 1:
            nonlocal total
            total -= weights[i]
            weights[i] = weights[-1]
            weights.pop()

    left = attempts
    while left > 0:
        left -= 1
        if budget._credits_num < den:
            return
        if fs.random() < alpha:
            while True:
                n = len(needy)
                if n == 0:
                    return
                j = rb(n) if n > 1 else 0
                t = needy[j]
                if held[t] & uw != uw:
                    break
                evict(j, t)
            if not send(s, ids[t], j):
                return
            stale = stale or len(needy) != n
        else:
            n = len(needy)
            if n == 0:
                return
            if stale or len(weights) != n:
                weights = [rep[ids[t]] for t in needy]
                total = 0.0
                for w in weights:
                    total += w
                stale = False
            while True:
                if total <= 0:
                    break  # reserved share unusable: all zero-rep
                n = len(needy)
                if n == 0:
                    return
                i = _weighted_pick(fs.random() * total, needy, weights)
                t = needy[i]
                if held[t] & uw != uw:
                    if not send(s, ids[t], i):
                        return
                    if len(needy) != n:
                        # The served target left the pool (swap-pop):
                        # drop its weight to stay aligned.
                        total -= weights[i]
                        weights[i] = weights[-1]
                        weights.pop()
                    break
                evict(i, t)


def run_tchain_fast(sim: "VectorSimulation", s: int,
                    rng: random.Random) -> None:
    """T-Chain with lazy candidate draws in the seeding phase.

    The parity kernel rescans the view for eligibility (interest and
    no blacklist) and fully shuffles the result before *every* send.
    Here the persistent interest pool replaces the scan, a partial
    Fisher-Yates over a copy replaces the full shuffle (one draw per
    candidate actually probed), and blacklisting is tested per probe
    by ``tchain_seed`` itself. The eligible members occupy uniformly
    random relative positions in a uniform permutation of the
    superset, so the accepted-target distribution is exactly the
    parity kernel's.
    """
    budget = sim.budgets[s]
    pend = sim.pend[s]
    if pend:
        for piece, _entry in sorted(pend.items(),
                                    key=lambda kv: (kv[1][2], kv[0])):
            if not budget.can_send():
                return
            sim.tchain_fulfill(s, piece)
    if not budget.can_send():
        return
    needy = sim.begin_turn(s).needy
    out = sim._pout[s]
    rb = sim._fs.randbelow
    ids = sim.ids
    held = sim.held
    cnt = sim.cnt
    npieces = sim.n_pieces
    uw = sim.usable[s]
    den = budget._den
    seed = sim.tchain_seed
    while budget._credits_num >= den:
        cand = needy.copy()
        m = len(cand)
        accepted = False
        while m:
            j = rb(m) if m > 1 else 0
            t = cand[j]
            m -= 1
            cand[j] = cand[m]
            if held[t] & uw == uw:
                k = needy.index(t)
                needy[k] = needy[-1]
                needy.pop()
                if cnt[t] != npieces:
                    out.append(t)
                continue
            if seed(s, ids[t]):
                accepted = True
                break
        if not accepted:
            return


FAST_KERNELS: Dict[Algorithm, Callable] = {
    Algorithm.RECIPROCITY: run_reciprocity,  # draws no randomness
    Algorithm.ALTRUISM: run_spray_fast,
    Algorithm.REPUTATION: run_reputation_fast,
    Algorithm.BITTORRENT: run_bittorrent_fast,
    Algorithm.FAIRTORRENT: run_fairtorrent_fast,
    Algorithm.TCHAIN: run_tchain_fast,
    Algorithm.PROPSHARE: run_propshare_fast,
}
