"""Batched per-round decision kernels for the vector backend.

Each kernel re-expresses one strategy's ``on_round`` over the
struct-of-arrays state of
:class:`repro.sim.vector.VectorSimulation`: candidate discovery is a
masked array query done once per turn (then repaired in place after
each send), while the *decision* sequence — every ``random()`` draw,
every ``choice``, every ``shuffle``, in order — matches the object
strategy exactly. That draw-for-draw equivalence is what makes the
two backends produce byte-identical metrics digests (see
``tests/integration/test_seed_equivalence.py``); comments below flag
each place where a strategy's control flow forces (or forbids) an RNG
draw. Uniform picks use the engine's inlined ``_randbelow`` (the same
draw sequence as ``rng.choice``) so the drawn index can repair the
pool without a search.

A kernel is called as ``kernel(sim, s, rng)`` with the simulation, the
acting peer's slot, and that peer's private strategy stream. Kernels
for ledger-based strategies read the per-slot pairwise ledgers
(``sim.rcv_d`` / ``sim.upl_d`` dicts, ``sim.D`` deficit matrix);
:data:`RECEIVED_ALGORITHMS` / :data:`DEFICIT_ALGORITHMS` /
:data:`RECEIPT_ALGORITHMS` tell the engine which ledgers a run needs
so the others are never maintained.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet

import numpy as np

from repro.names import Algorithm
from repro.sim.rng import weighted_choice
# No cycle: vector.py defers its kernel import into __init__.
from repro.sim.vector import _shuffle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.vector import VectorSimulation

__all__ = ["KERNELS", "DEFICIT_ALGORITHMS", "RECEIVED_ALGORITHMS",
           "RECEIPT_ALGORITHMS", "run_spray", "run_reciprocity",
           "run_fairtorrent", "run_bittorrent", "run_propshare",
           "run_reputation", "run_tchain", "run_freerider"]

#: Algorithms whose kernels read the all-time received-from ledger.
RECEIVED_ALGORITHMS: FrozenSet[Algorithm] = frozenset({
    Algorithm.RECIPROCITY, Algorithm.BITTORRENT, Algorithm.PROPSHARE,
})

#: Algorithms that need the pairwise sent-minus-received deficit.
DEFICIT_ALGORITHMS: FrozenSet[Algorithm] = frozenset({
    Algorithm.FAIRTORRENT,
})

#: Algorithms that additionally need the last-round receipt window
#: (``peer.received_last_round`` in the object engine).
RECEIPT_ALGORITHMS: FrozenSet[Algorithm] = frozenset({
    Algorithm.BITTORRENT, Algorithm.PROPSHARE,
})


def run_spray(sim: "VectorSimulation", s: int, rng: random.Random) -> None:
    """Seeder / Altruism: full capacity to uniformly random needy peers."""
    budget = sim.budgets[s]
    if sim.cnt[s] == 0 or not budget.can_send():
        # With nothing to offer the needy pool is empty, so the object
        # strategy bails on its first ``_send_random`` without drawing.
        return
    needy = sim.begin_turn(s).needy
    grb = rng.getrandbits
    while budget.can_send():
        n = len(needy)
        if n == 0:
            return
        # rng.choice(pool), inlined to keep the drawn index.
        k = n.bit_length()
        j = grb(k)
        while j >= n:
            j = grb(k)
        if not sim._plain_send(s, needy[j], j):
            return


def run_reciprocity(sim: "VectorSimulation", s: int,
                    rng: random.Random) -> None:
    """Pure direct reciprocity: repay the largest creditor. No RNG.

    The engine maintains ``sim.cred[s]`` — counterparties whose
    received-from exceeds uploaded-to — incrementally on every send,
    so a turn only scans that (small) set for view membership and
    interest instead of running the full needy-pool query. The
    strategy draws no randomness, so skipping discovery entirely on
    creditor-less turns is draw-equivalent.
    """
    budget = sim.budgets[s]
    if sim.cnt[s] == 0 or not budget.can_send():
        return
    cred = sim.cred[s]
    if not cred:
        return
    vs = sim.vset.get(sim.ids[s])
    if not vs:
        return
    members = sim.members
    rcv = sim.rcv_d[s]
    held = sim.held
    usable_s = sim.usable[s]
    while budget.can_send():
        # max by (received, -pid) over creditors that are in view,
        # active, and needy — the object strategy's exact key.
        best_pid = -1
        best_r = -1
        for pid in cred:
            if pid in vs and held[members[pid]] & usable_s != usable_s:
                r = rcv[pid]
                if r > best_r or (r == best_r and pid < best_pid):
                    best_r = r
                    best_pid = pid
        if best_pid < 0:
            return
        if not sim._plain_send(s, best_pid):
            return


def run_fairtorrent(sim: "VectorSimulation", s: int,
                    rng: random.Random) -> None:
    """Serve the neighbor we owe the most (lowest deficit).

    One numpy gather over the needy pool finds the minimum deficit
    and its (ascending) tie list. Each send bumps only its target's
    deficit — the target leaves the minimum level either way — so the
    tie list shrinks by exactly the served peer and remains the
    object strategy's tie list until it drains; only then can the
    minimum move (it never decreases mid-turn), which a rescan of the
    repaired pool picks up.
    """
    budget = sim.budgets[s]
    if sim.cnt[s] == 0 or not budget.can_send():
        return
    turn = sim.begin_turn(s)
    drow = sim.D[s]
    slot_np = sim.slot_np
    grb = rng.getrandbits
    while True:
        needy = turn.needy
        if not needy:
            return
        arr = np.array(needy, dtype=np.int64)
        d = drow[slot_np[arr]]
        ties = arr[d == d.min()].tolist()
        while ties:
            n = len(ties)
            if n == 1:
                j = 0
                tid = ties[0]
            else:
                # Tie at the minimum: uniform pick, one draw —
                # identical to ``rng.choice`` over the object
                # strategy's tie list (same membership, same order).
                k = n.bit_length()
                j = grb(k)
                while j >= n:
                    j = grb(k)
                tid = ties[j]
            if not sim._plain_send(s, tid):
                return
            ties.pop(j)
            if not budget.can_send():
                return


def run_bittorrent(sim: "VectorSimulation", s: int,
                   rng: random.Random) -> None:
    """Tit-for-tat toward last round's top contributors, plus optimism."""
    budget = sim.budgets[s]
    b0 = budget.available()
    if b0 == 0:
        return
    alpha = sim.params.alpha_bt
    random_ = rng.random
    if sim.cnt[s] == 0:
        # Empty-handed round: every slot draws its optimism coin; a
        # hit fails ``_send_random`` (empty pool) and returns, a miss
        # idles through the empty unchoke set. The strategy's budget
        # never decreases, so its mid-loop budget check cannot trip.
        for _ in range(b0):
            if random_() < alpha:
                return
        return
    # The needy pool is built lazily: tit-for-tat slots only probe
    # their (at most n_bt) unchoked targets directly.
    turn = sim.begin_turn_lazy(s)
    members = sim.members
    held = sim.held
    usable_s = sim.usable[s]
    lr = sim.last_rcv[s]
    unchoked: list = []
    if lr:
        # Last round's contributors that are still in view and needy,
        # ascending — the same list as filtering the full needy pool
        # by receipt, built from the (much smaller) receipt window.
        vs = sim.vset.get(sim.ids[s]) or ()
        cand = []
        for pid in sorted(lr):
            if (lr[pid] > 0 and pid in vs
                    and held[members[pid]] & usable_s != usable_s):
                cand.append(pid)
        cand.sort(key=lambda pid: (-lr[pid], pid))
        unchoked = cand[:sim.params.n_bt]
    grb = rng.getrandbits
    for _ in range(b0):
        if not budget.can_send():
            return
        if random_() < alpha:
            # Optimistic unchoke: anyone needy, newcomers included.
            needy = turn.needy
            if needy is None:
                needy = sim.ensure_needy(turn)
            n = len(needy)
            if n == 0:
                return
            k = n.bit_length()
            j = grb(k)
            while j >= n:
                j = grb(k)
            if not sim._plain_send(s, needy[j], j):
                return
            continue
        # Tit-for-tat: round-robin the unchoke set, pruning targets we
        # can no longer serve, rotating the served one to the back.
        sent_index = None
        for idx, target in enumerate(unchoked):
            if target in members and sim._plain_send(s, target):
                sent_index = idx
                break
        if sent_index is not None:
            unchoked = unchoked[sent_index + 1:] + [unchoked[sent_index]]
            continue
        # Fall back to a random all-time contributor (result ignored;
        # an empty pool draws nothing).
        needy = turn.needy
        if needy is None:
            needy = sim.ensure_needy(turn)
        if needy:
            arr = np.array(needy, dtype=np.int64)
            past = arr[sim.R[s, sim.slot_np[arr]] > 0].tolist()
            if past:
                n = len(past)
                k = n.bit_length()
                j = grb(k)
                while j >= n:
                    j = grb(k)
                sim._plain_send(s, past[j])


def run_propshare(sim: "VectorSimulation", s: int,
                  rng: random.Random) -> None:
    """Contribution-proportional reciprocity plus optimism."""
    budget = sim.budgets[s]
    b0 = budget.available()
    if b0 == 0:
        return
    alpha = sim.params.alpha_bt
    random_ = rng.random
    if sim.cnt[s] == 0:
        # Same empty-handed draw pattern as BitTorrent: an optimism
        # hit returns (empty pool), a miss finds no contributor
        # weights and idles the slot.
        for _ in range(b0):
            if random_() < alpha:
                return
        return
    needy = sim.begin_turn(s).needy
    grb = rng.getrandbits
    for _ in range(b0):
        if not budget.can_send():
            return
        if random_() < alpha:
            n = len(needy)
            if n == 0:
                return
            k = n.bit_length()
            j = grb(k)
            while j >= n:
                j = grb(k)
            if not sim._plain_send(s, needy[j], j):
                return
            continue
        lr = sim.last_rcv[s]
        weights: Dict[int, int] = {}
        if lr:
            for pid, amt in lr.items():
                if amt > 0:
                    i = bisect_left(needy, pid)
                    if i < len(needy) and needy[i] == pid:
                        weights[pid] = amt
        if not weights and needy:
            # Quiet last round: weight by all-time contributions.
            arr = np.array(needy, dtype=np.int64)
            amts = sim.R[s, sim.slot_np[arr]]
            for pid, amt in zip(arr.tolist(), amts.tolist()):
                if amt > 0:
                    weights[pid] = amt
        if not weights:
            continue  # reciprocal slot idles
        targets = sorted(weights)
        target = weighted_choice(rng, targets,
                                 [float(weights[t]) for t in targets])
        sim._plain_send(s, target)


def run_reputation(sim: "VectorSimulation", s: int,
                   rng: random.Random) -> None:
    """Reputation-weighted uploads plus an altruism fraction."""
    budget = sim.budgets[s]
    attempts = budget.available()
    if attempts == 0 or sim.cnt[s] == 0:
        # No pieces: the object strategy returns on its first empty
        # candidate list, before any draw.
        return
    needy = sim.begin_turn(s).needy
    alpha = sim.params.alpha_r
    rep = sim.rep
    grb = rng.getrandbits
    for _ in range(attempts):
        if not budget.can_send():
            return
        n = len(needy)
        if n == 0:
            return
        if rng.random() < alpha:
            k = n.bit_length()
            j = grb(k)
            while j >= n:
                j = grb(k)
            if not sim._plain_send(s, needy[j], j):
                return
        else:
            weights = [rep[pid] for pid in needy]
            total = 0.0
            for w in weights:
                total += w
            if total <= 0:
                continue  # reserved share unusable: all zero-rep
            target = weighted_choice(rng, needy, weights)
            if not sim._plain_send(s, target):
                return


def run_tchain(sim: "VectorSimulation", s: int, rng: random.Random) -> None:
    """Fulfil pending obligations, then seed encrypted pieces."""
    budget = sim.budgets[s]
    pend = sim.pend[s]
    if pend:
        # Oldest obligations first, piece id as tiebreak — the same
        # order ``ctx.pending_obligations()`` yields. Snapshot before
        # fulfilling: fulfilment mutates the dict.
        for piece, _entry in sorted(pend.items(),
                                    key=lambda kv: (kv[1][2], kv[0])):
            if not budget.can_send():
                return
            sim.tchain_fulfill(s, piece)
    if not budget.can_send():
        return
    # Seeding-phase candidates, computed once: a successful seed can
    # only change the *seeded target's* eligibility (its pending set
    # and possibly — under collusion — its piece set), so the list is
    # repaired per send instead of re-queried per send.
    elig = sim.tchain_elig(s)
    grb = rng.getrandbits
    members = sim.members
    held = sim.held
    usable_s = sim.usable[s]
    while budget.can_send():
        candidates = elig.copy()
        _shuffle(candidates, grb)
        for tid in candidates:
            if sim.tchain_seed(s, tid):
                ts = members.get(tid)
                if (ts is None or held[ts] & usable_s == usable_s
                        or sim._blacklisted(ts)):
                    i = bisect_left(elig, tid)
                    if i < len(elig) and elig[i] == tid:
                        elig.pop(i)
                break
        else:
            return  # no candidate accepted a seed


def run_freerider(sim: "VectorSimulation", s: int,
                  rng: random.Random) -> None:
    """Free-rider: never uploads; optionally false-praises a colluder."""
    attack = sim.attack
    if not attack.false_praise:
        return
    members = sim.members
    colluders = [pid for pid in sorted(sim.colluders[s]) if pid in members]
    if not colluders:
        return
    beneficiary = rng.choice(colluders)
    sim.rep[beneficiary] += attack.fake_praise_amount
    sim.fake_reported += attack.fake_praise_amount


KERNELS: Dict[Algorithm, Callable] = {
    Algorithm.RECIPROCITY: run_reciprocity,
    Algorithm.ALTRUISM: run_spray,
    Algorithm.REPUTATION: run_reputation,
    Algorithm.BITTORRENT: run_bittorrent,
    Algorithm.FAIRTORRENT: run_fairtorrent,
    Algorithm.TCHAIN: run_tchain,
    Algorithm.PROPSHARE: run_propshare,
}
