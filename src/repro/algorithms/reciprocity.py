"""Pure direct reciprocity (Section III-A).

Users upload *only* to repay data already received: a peer is a valid
target only if it has given us more than we have returned, and among
valid targets we repay the largest contributor first. Nobody ever
initiates an exchange, so — exactly as Lemma 2 predicts — the only
dissemination channel is the seeder, and the swarm stalls.
"""

from __future__ import annotations

from typing import List

from repro.algorithms.base import Strategy
from repro.names import Algorithm
from repro.sim.context import StrategyContext

__all__ = ["ReciprocityStrategy"]


class ReciprocityStrategy(Strategy):
    """Upload only to creditors, largest contributor first."""

    algorithm = Algorithm.RECIPROCITY

    def _creditors(self, ctx: StrategyContext) -> List[int]:
        """Neighbors we owe (received more than we repaid) and can serve."""
        me = ctx.peer
        creditors = []
        for pid in ctx.needy_neighbors():
            if me.received_from.get(pid, 0) > me.uploaded_to.get(pid, 0):
                creditors.append(pid)
        return creditors

    def on_round(self, ctx: StrategyContext) -> None:
        me = ctx.peer
        while ctx.budget() > 0:
            creditors = self._creditors(ctx)
            if not creditors:
                return
            # Repay the neighbor that has contributed the most overall
            # (the paper's simulation rule: upload to the neighbor that
            # has contributed the most to them).
            target = max(creditors,
                         key=lambda pid: (me.received_from.get(pid, 0), -pid))
            if not ctx.send_piece(target):
                return
