"""FairTorrent: the reputation/altruism hybrid (Section III-A).

Each user keeps a *deficit counter* per peer — pieces uploaded to that
peer minus pieces received from it. These counters act as local
reputation scores: every piece goes to the servable neighbor with the
smallest (most negative) deficit, i.e. the peer to whom we owe the
most. When no neighbor is owed anything (all counters >= 0), the piece
goes to a uniformly random neighbor with a zero counter — including
newcomers — which is the altruism component that bootstraps the swarm
and, per Table III, the ``(1 - omega)`` exposure free-riders exploit.
"""

from __future__ import annotations

from repro.algorithms.base import Strategy
from repro.names import Algorithm
from repro.sim.context import StrategyContext

__all__ = ["FairTorrentStrategy"]


class FairTorrentStrategy(Strategy):
    """Serve the lowest-deficit neighbor; random among zero deficits."""

    algorithm = Algorithm.FAIRTORRENT

    def on_round(self, ctx: StrategyContext) -> None:
        me = ctx.peer
        uploaded, received = me.uploaded_to, me.received_from
        while ctx.budget() > 0:
            candidates = ctx.needy_neighbors()
            if not candidates:
                return
            deficits = [uploaded.get(pid, 0) - received.get(pid, 0)
                        for pid in candidates]
            min_deficit = min(deficits)
            lowest = [pid for pid, deficit in zip(candidates, deficits)
                      if deficit == min_deficit]
            # Smallest deficit wins; ties (notably the all-zero
            # newcomer pool) are broken uniformly at random.
            target = lowest[0] if len(lowest) == 1 else self.rng.choice(lowest)
            if not ctx.send_piece(target):
                return
