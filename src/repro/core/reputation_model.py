"""Reputation-equilibrium model (Proposition 3).

Section IV-A2 observes that a reputation system's performance hinges on
the reputation vector ``r`` actually realised, which may *not* be
proportional to upload capacity — e.g. a high-capacity user that
received few pieces early keeps a low reputation. Proposition 3 gives
fairness and efficiency in a perfect-piece-availability equilibrium for
an arbitrary reputation vector (with ``sum_k r_k >> r_i``)::

    d_i / u_i = r_i * sum_k U_k / (U_i * sum_k r_k)
    F = sum_i | log(d_i / u_i) |                (paper's normalisation)
    E = sum_i sum_k r_k / (N * r_i)

so a single low-reputation, moderate-capacity user can drag down both
metrics at once — reputation systems are *not* automatically in the
middle of the fairness/efficiency tradeoff.

Note on normalisation: Proposition 3 prints ``F`` both with and without
the ``1/N`` factor; we expose ``normalize=True`` (mean, consistent with
Eq. 3) as the default and ``normalize=False`` for the printed sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core import metrics
from repro.errors import ModelParameterError

__all__ = [
    "ReputationEquilibrium",
    "reputation_download_rates",
    "reputation_fairness",
    "reputation_efficiency",
    "reputation_equilibrium",
    "capacity_proportional_reputations",
]


def _validate(capacities: Iterable[float],
              reputations: Iterable[float]) -> "tuple[np.ndarray, np.ndarray]":
    caps = metrics.validate_rates(capacities, "capacities", strictly_positive=True)
    reps = metrics.validate_rates(reputations, "reputations", strictly_positive=True)
    if caps.shape != reps.shape:
        raise ModelParameterError(
            "capacities and reputations must have equal length")
    if caps.size < 2:
        raise ModelParameterError("need at least two users")
    return caps, reps


@dataclass(frozen=True)
class ReputationEquilibrium:
    """Rates and metrics of a reputation equilibrium (Proposition 3)."""

    capacities: np.ndarray
    reputations: np.ndarray
    download_rates: np.ndarray
    fairness: float
    efficiency: float


def reputation_download_rates(capacities: Iterable[float],
                              reputations: Iterable[float]) -> np.ndarray:
    """Equilibrium download rates under reputation-weighted uploads.

    Every user ``j`` splits its capacity ``U_j`` across the other
    users in proportion to their reputations, so
    ``u(j, i) = U_j * r_i / sum_{k != j} r_k``; summing over ``j``
    gives ``d_i``. Under Proposition 3's assumption
    ``sum_k r_k >> r_i`` this reduces to
    ``d_i ~= r_i * sum_k U_k / sum_k r_k``.
    """
    caps, reps = _validate(capacities, reputations)
    total_reps = reps.sum()
    rates = np.zeros_like(caps)
    for j in range(caps.size):
        denom = total_reps - reps[j]
        if denom <= 0:
            raise ModelParameterError(
                "reputation mass must not be concentrated on one user")
        share = caps[j] * reps / denom
        share[j] = 0.0
        rates += share
    return rates


def reputation_fairness(capacities: Iterable[float],
                        reputations: Iterable[float],
                        normalize: bool = True) -> float:
    """Proposition 3's fairness::

        F = (1/N) sum_i | log( r_i sum_k U_k / (N^0 U_i sum_k r_k) ) |

    using the asymptotic rates ``d_i = r_i sum U / sum r`` and
    ``u_i = U_i``. Set ``normalize=False`` for the un-averaged sum as
    printed in the proposition.
    """
    caps, reps = _validate(capacities, reputations)
    ratios = (reps * caps.sum()) / (caps * reps.sum())
    total = float(np.abs(np.log(ratios)).sum())
    return total / caps.size if normalize else total


def reputation_efficiency(capacities: Iterable[float],
                          reputations: Iterable[float]) -> float:
    """Proposition 3's efficiency ``E = sum_i sum_k r_k / (N r_i)``.

    This is Eq. 2 evaluated at the asymptotic download rates with unit
    total capacity scale; it diverges as any ``r_i -> 0`` — the
    low-reputation-user pathology the paper highlights. The returned
    value is normalised by ``sum_k U_k`` so it is exactly
    ``sum_i 1 / (N d_i)``.
    """
    caps, reps = _validate(capacities, reputations)
    d = reps * caps.sum() / reps.sum()
    return metrics.efficiency(d)


def reputation_equilibrium(capacities: Iterable[float],
                           reputations: Iterable[float]) -> ReputationEquilibrium:
    """Full Proposition-3 equilibrium for a given reputation vector."""
    caps, reps = _validate(capacities, reputations)
    return ReputationEquilibrium(
        capacities=caps,
        reputations=reps,
        download_rates=reputation_download_rates(caps, reps),
        fairness=reputation_fairness(caps, reps),
        efficiency=reputation_efficiency(caps, reps),
    )


def capacity_proportional_reputations(capacities: Iterable[float]) -> np.ndarray:
    """The benign case: reputations proportional to upload capacity.

    This is the assumption behind Table I's reputation row; plugging it
    into :func:`reputation_fairness` gives ``F = 0`` and recovers the
    idealized analysis.
    """
    caps = metrics.validate_rates(capacities, "capacities", strictly_positive=True)
    return caps / caps.sum()
