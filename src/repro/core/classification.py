"""Design-space classification of incentive mechanisms (Fig. 1, Sec. III).

The paper organises incentive mechanisms along three basic exchange
classes — reciprocity, altruism, and reputation — and places the six
analysed algorithms in that space: three pure class representatives and
three pairwise hybrids. Figure 1 also records the paper's *qualitative*
performance expectations, which Sections IV-V then sharpen; we encode
both so tests and reports can compare expectation against analysis and
simulation.

Ordinal scores run from 1 (worst) to 5 (best) within each metric; only
the *ordering* is meaningful, matching the qualitative nature of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, List, Tuple

from repro.names import ALL_ALGORITHMS, Algorithm

__all__ = [
    "ExchangeClass",
    "Metric",
    "AlgorithmProfile",
    "PROFILES",
    "components",
    "hybrids_of",
    "expected_ranking",
    "is_hybrid",
]


class ExchangeClass(str, Enum):
    """The three basic exchange classes of Section III-A."""

    RECIPROCITY = "reciprocity"
    ALTRUISM = "altruism"
    REPUTATION = "reputation"


class Metric(str, Enum):
    """The four performance dimensions of Section III-B / Figure 1."""

    FAIRNESS = "fairness"
    EFFICIENCY = "efficiency"
    BOOTSTRAPPING = "bootstrapping"
    FREERIDING_RESISTANCE = "freeriding_resistance"


@dataclass(frozen=True)
class AlgorithmProfile:
    """An algorithm's position in the design space plus expectations.

    Attributes
    ----------
    algorithm:
        Which of the six mechanisms this profile describes.
    classes:
        The basic exchange classes the mechanism combines; singleton
        for the three pure algorithms.
    exemplar:
        The real system the paper cites as the class representative.
    expectations:
        Ordinal 1-5 score per metric, encoding Figure 1's qualitative
        expectations (5 = best on that metric).
    """

    algorithm: Algorithm
    classes: FrozenSet[ExchangeClass]
    exemplar: str
    expectations: Dict[Metric, int]

    @property
    def is_hybrid(self) -> bool:
        return len(self.classes) > 1


def _profile(algorithm: Algorithm, classes: Tuple[ExchangeClass, ...],
             exemplar: str, fairness: int, efficiency: int,
             bootstrapping: int, freeriding: int) -> AlgorithmProfile:
    return AlgorithmProfile(
        algorithm=algorithm,
        classes=frozenset(classes),
        exemplar=exemplar,
        expectations={
            Metric.FAIRNESS: fairness,
            Metric.EFFICIENCY: efficiency,
            Metric.BOOTSTRAPPING: bootstrapping,
            Metric.FREERIDING_RESISTANCE: freeriding,
        },
    )


#: Figure 1's layout: pure classes and hybrids with their exemplars and
#: the paper's qualitative expectations (Section III-B).
PROFILES: Dict[Algorithm, AlgorithmProfile] = {
    Algorithm.RECIPROCITY: _profile(
        Algorithm.RECIPROCITY, (ExchangeClass.RECIPROCITY,),
        exemplar="pure tit-for-tat",
        fairness=5, efficiency=1, bootstrapping=1, freeriding=5),
    Algorithm.ALTRUISM: _profile(
        Algorithm.ALTRUISM, (ExchangeClass.ALTRUISM,),
        exemplar="random push / gossip",
        fairness=1, efficiency=5, bootstrapping=5, freeriding=1),
    Algorithm.REPUTATION: _profile(
        Algorithm.REPUTATION, (ExchangeClass.REPUTATION,),
        exemplar="EigenTrust",
        fairness=3, efficiency=3, bootstrapping=2, freeriding=2),
    Algorithm.BITTORRENT: _profile(
        Algorithm.BITTORRENT,
        (ExchangeClass.RECIPROCITY, ExchangeClass.ALTRUISM),
        exemplar="BitTorrent",
        fairness=4, efficiency=4, bootstrapping=3, freeriding=3),
    Algorithm.FAIRTORRENT: _profile(
        Algorithm.FAIRTORRENT,
        (ExchangeClass.REPUTATION, ExchangeClass.ALTRUISM),
        exemplar="FairTorrent",
        fairness=5, efficiency=4, bootstrapping=5, freeriding=3),
    Algorithm.TCHAIN: _profile(
        Algorithm.TCHAIN,
        (ExchangeClass.RECIPROCITY, ExchangeClass.REPUTATION),
        exemplar="T-Chain",
        fairness=5, efficiency=4, bootstrapping=4, freeriding=5),
    # Extension beyond the paper's six (cited in Corollary 2's proof):
    # proportional-share reciprocity plus optimistic unchoking.
    Algorithm.PROPSHARE: _profile(
        Algorithm.PROPSHARE,
        (ExchangeClass.RECIPROCITY, ExchangeClass.ALTRUISM),
        exemplar="PropShare",
        fairness=5, efficiency=4, bootstrapping=3, freeriding=3),
}


def components(algorithm: Algorithm) -> FrozenSet[ExchangeClass]:
    """The basic exchange classes a mechanism is built from."""
    return PROFILES[Algorithm.parse(algorithm)].classes


def is_hybrid(algorithm: Algorithm) -> bool:
    """True for the three two-class hybrids."""
    return PROFILES[Algorithm.parse(algorithm)].is_hybrid


def hybrids_of(exchange_class: ExchangeClass) -> List[Algorithm]:
    """All hybrid algorithms that include ``exchange_class``."""
    return [a for a in ALL_ALGORITHMS
            if PROFILES[a].is_hybrid and exchange_class in PROFILES[a].classes]


def expected_ranking(metric: Metric) -> List[Algorithm]:
    """Algorithms ordered best-first on ``metric`` per Figure 1.

    Ties are broken by the paper's table row order, which keeps the
    ranking deterministic for tests.
    """
    order = {a: i for i, a in enumerate(ALL_ALGORITHMS)}
    return sorted(
        ALL_ALGORITHMS,
        key=lambda a: (-PROFILES[a].expectations[metric], order[a]),
    )
