"""Free-riding susceptibility model (Section IV-C, Table III).

The paper quantifies the potential for free-riding through two
channels:

* **Exploitable resources** — upload bandwidth handed out without an
  enforceable expectation of return. Altruism gives away everything;
  BitTorrent and reputation give away their altruism fractions
  (``alpha_BT``, ``alpha_R``); FairTorrent gives away the
  ``1 - omega`` fraction of time in which users have no outstanding
  negative deficits; reciprocity and T-Chain give away nothing.
* **Collusion** — tricking legitimate users via third parties.
  Reputation systems are fully vulnerable (colluders inflate each
  other's scores); T-Chain is vulnerable only when an indirect
  reciprocation happens to be routed through a colluding pair, with
  probability ``pi_IR * m(m-1) / (N(N-1))`` for ``m`` colluders;
  the rest have no third-party channel at all.

FairTorrent's exposure is additionally bounded: a compliant user's
deficit with any peer stays ``O(log N)`` pieces (Sherman et al. [7]),
which caps what a free-rider — even a whitewashing one — can ever
extract from a single victim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.core import metrics
from repro.errors import ModelParameterError
from repro.names import ALL_ALGORITHMS, Algorithm

__all__ = [
    "FreeRidingParameters",
    "exploitable_resources",
    "collusion_probability",
    "table3",
    "fairtorrent_deficit_bound",
    "fairtorrent_expected_free_pieces",
    "susceptibility_ranking",
]


@dataclass(frozen=True)
class FreeRidingParameters:
    """Parameters of the free-riding susceptibility model.

    Attributes
    ----------
    capacities:
        Compliant users' upload capacities ``U_i``; the total system
        resource is their sum.
    alpha_bt / alpha_r:
        Altruism fractions of BitTorrent and the reputation system.
    omega:
        FairTorrent: probability a user holds a negative deficit with
        at least one peer (so its bandwidth is *not* up for grabs).
    pi_ir:
        T-Chain: probability of indirect reciprocity between a given
        user pair (see :func:`repro.core.piece_availability.pi_indirect_reciprocity`).
    n_colluders:
        ``m`` — size of the colluding free-rider group.
    """

    capacities: Sequence[float]
    alpha_bt: float = 0.2
    alpha_r: float = 0.1
    omega: float = 0.75
    pi_ir: float = 0.05
    n_colluders: int = 0

    def __post_init__(self) -> None:
        caps = metrics.validate_capacities(self.capacities)
        object.__setattr__(self, "capacities", tuple(float(c) for c in caps))
        for name in ("alpha_bt", "alpha_r", "omega", "pi_ir"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelParameterError(f"{name} must lie in [0, 1], got {value}")
        if self.n_colluders < 0:
            raise ModelParameterError("n_colluders must be non-negative")

    @property
    def n_users(self) -> int:
        return len(self.capacities)

    @property
    def total_capacity(self) -> float:
        return float(sum(self.capacities))


def exploitable_resources(algorithm: Algorithm,
                          params: FreeRidingParameters) -> float:
    """Table III: upload bandwidth exploitable by non-collusive free-riders."""
    algorithm = Algorithm.parse(algorithm)
    total = params.total_capacity
    if algorithm in (Algorithm.RECIPROCITY, Algorithm.TCHAIN):
        return 0.0
    if algorithm in (Algorithm.BITTORRENT, Algorithm.PROPSHARE):
        # PropShare (extension) exposes the same optimistic share.
        return params.alpha_bt * total
    if algorithm is Algorithm.FAIRTORRENT:
        return (1.0 - params.omega) * total
    if algorithm is Algorithm.REPUTATION:
        return params.alpha_r * total
    return total  # altruism: everything is free


def collusion_probability(algorithm: Algorithm,
                          params: FreeRidingParameters) -> Optional[float]:
    """Table III: probability that a collusive attack succeeds.

    Returns ``None`` for algorithms where collusion is meaningless
    (altruism already gives everything away — the paper marks it
    "n/a"). Reciprocity, BitTorrent and FairTorrent have no
    third-party channel, so their probability is 0. The reputation
    system is fully gameable (probability 1). T-Chain's exposure is
    ``pi_IR * m(m-1) / (N(N-1))``: an indirect reciprocation must
    occur *and* both its receiver and its designated third party must
    be colluders.
    """
    algorithm = Algorithm.parse(algorithm)
    if algorithm is Algorithm.ALTRUISM:
        return None
    if algorithm is Algorithm.REPUTATION:
        return 1.0
    if algorithm is Algorithm.TCHAIN:
        n = params.n_users
        m = params.n_colluders
        if n < 2 or m < 2:
            return 0.0
        return params.pi_ir * (m - 1) * m / ((n - 1) * n)
    return 0.0


def table3(params: FreeRidingParameters,
           algorithms: Optional[Iterable[Algorithm]] = None,
           ) -> Dict[Algorithm, Dict[str, Optional[float]]]:
    """Reproduce Table III for every algorithm.

    Each entry maps to ``{"exploitable": ..., "collusion": ...}`` where
    ``collusion`` is ``None`` for altruism (marked n/a in the paper).
    """
    selected = tuple(Algorithm.parse(a) for a in (algorithms or ALL_ALGORITHMS))
    return {
        a: {
            "exploitable": exploitable_resources(a, params),
            "collusion": collusion_probability(a, params),
        }
        for a in selected
    }


def fairtorrent_deficit_bound(n_users: int, constant: float = 1.0) -> float:
    """FairTorrent's ``O(log N)`` bound on any pairwise deficit [7].

    ``constant`` scales the bound; the asymptotic shape is what the
    paper relies on to argue a free-rider's take is capped even under
    whitewashing.
    """
    if n_users < 2:
        raise ModelParameterError("n_users must be at least 2")
    return constant * math.log(n_users)


def fairtorrent_expected_free_pieces(n_users: int, n_freeriders: int,
                                     omega: float = 0.0) -> float:
    """Expected pieces per timeslot obtained by FairTorrent free-riders.

    In the most favourable case (``omega = 0``) ``m`` free-riders
    collect an expected ``m / N`` pieces per timeslot from each
    uploading user; the general form scales by ``1 - omega``.
    """
    if n_users < 1 or not 0 <= n_freeriders <= n_users:
        raise ModelParameterError("need 0 <= n_freeriders <= n_users, n_users >= 1")
    if not 0.0 <= omega <= 1.0:
        raise ModelParameterError("omega must lie in [0, 1]")
    return (1.0 - omega) * n_freeriders / n_users


def susceptibility_ranking(params: FreeRidingParameters) -> list:
    """Algorithms ordered least-susceptible first.

    Orders primarily by exploitable resources, breaking ties by
    collusion probability (``None`` sorts last). With the default
    parameters this reproduces the paper's ordering: reciprocity and
    T-Chain (zero exploitable; T-Chain carries the tiny collusion
    term), then reputation and BitTorrent, then FairTorrent, with
    altruism most susceptible.
    """
    rows = table3(params)

    def key(algorithm: Algorithm):
        entry = rows[algorithm]
        collusion = entry["collusion"]
        collusion_key = math.inf if collusion is None else collusion
        return (entry["exploitable"], collusion_key, algorithm.value)

    return sorted(rows, key=key)
