"""Analytical models from the paper (Sections III-IV).

This subpackage is the paper's primary contribution: closed-form models
of fairness, efficiency, bootstrapping, and free-riding susceptibility
for six incentive mechanisms, plus the design-space classification.

Modules
-------
:mod:`repro.core.metrics`
    Efficiency (Eq. 2), fairness (Eq. 3), Lemma 1's optimum.
:mod:`repro.core.equilibrium`
    Table I equilibrium rates and Corollary 1 rankings.
:mod:`repro.core.piece_availability`
    Exchange feasibility under imperfect piece availability
    (Eqs. 4-8, Proposition 2, Corollary 2).
:mod:`repro.core.reputation_model`
    Proposition 3: reputation-driven fairness/efficiency.
:mod:`repro.core.bootstrapping`
    Lemma 3, Table II, Proposition 4.
:mod:`repro.core.freeriding`
    Table III: exploitable resources and collusion.
:mod:`repro.core.classification`
    Figure 1's taxonomy and qualitative expectations.
:mod:`repro.core.tradeoff`
    Fairness-efficiency frontier and the Figure 2/3 rankings.
:mod:`repro.core.fluid`
    Qiu-Srikant fluid swarm model — the substrate behind the paper's
    BitTorrent-efficiency arguments (refs [10], [27]).
"""

from repro.core import (  # noqa: F401
    bootstrapping,
    classification,
    equilibrium,
    fluid,
    freeriding,
    metrics,
    piece_availability,
    reputation_model,
    tradeoff,
)
from repro.core.bootstrapping import (  # noqa: F401
    BootstrapParameters,
    bootstrap_probability,
    expected_bootstrap_time,
    table2,
)
from repro.core.equilibrium import (  # noqa: F401
    EquilibriumParameters,
    EquilibriumResult,
    equilibrium as equilibrium_for,
    table1,
)
from repro.core.freeriding import FreeRidingParameters, table3  # noqa: F401
from repro.core.metrics import efficiency, fairness  # noqa: F401

__all__ = [
    "bootstrapping",
    "classification",
    "equilibrium",
    "fluid",
    "freeriding",
    "metrics",
    "piece_availability",
    "reputation_model",
    "tradeoff",
    "BootstrapParameters",
    "bootstrap_probability",
    "expected_bootstrap_time",
    "table2",
    "EquilibriumParameters",
    "EquilibriumResult",
    "equilibrium_for",
    "table1",
    "FreeRidingParameters",
    "table3",
    "efficiency",
    "fairness",
]
