"""Equilibrium download rates (Table I, Proposition 1, Corollary 1).

With perfect piece availability and no free-riders, Lemma 2 says every
algorithm drives users to full upload utilisation ``u_i = U_i`` —
except pure reciprocity, where nobody can initiate an exchange and
``u_i = 0``. Proposition 1 (Table I) then gives each user's equilibrium
*download utilisation*, i.e. the download rate received from other
users, excluding the seeder's contribution ``u_S / N``:

=============  =====================================================
Algorithm      Download utilisation ``d_i - u_S/N``
=============  =====================================================
Reciprocity    ``0``
T-Chain        ``U_i``
BitTorrent     tit-for-tat share of its capacity group plus the
               optimistic-unchoke (altruism) share ``alpha_BT``
FairTorrent    ``U_i``
Reputation     reputation-weighted share plus altruism ``alpha_R``
Altruism       ``sum_{k != i} U_k / (N - 1)``
=============  =====================================================

BitTorrent's tit-for-tat term follows the Fan-Lui-Chiu model [10]: in
equilibrium peers cluster into groups of ``n_BT`` users with adjacent
upload capacities and exchange within the group, so user ``i`` receives
the group's average capacity. We realise the paper's index set
``j = floor(mod(i, n_BT)) + 1 .. mod(i, n_BT) + n_BT`` as the block of
``n_BT`` capacity-adjacent users containing ``i`` (users sorted by
descending capacity); under the corollary's standing assumption
``U_i ~= U_{i + n_BT}`` every consistent windowing yields the same
rates, and block grouping is the one that makes the clustering explicit.

Corollary 1 compares the six algorithms: only T-Chain and FairTorrent
achieve optimal fairness (``F = 0``); altruism achieves the highest
(though still sub-optimal) efficiency when capacities are similar;
BitTorrent and reputation lie between altruism and T-Chain/FairTorrent;
and reciprocity is degenerate (no downloads at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core import metrics
from repro.errors import ModelParameterError
from repro.names import ALL_ALGORITHMS, Algorithm

__all__ = [
    "EquilibriumParameters",
    "EquilibriumResult",
    "reciprocity_download_utilization",
    "tchain_download_utilization",
    "bittorrent_download_utilization",
    "fairtorrent_download_utilization",
    "reputation_download_utilization",
    "altruism_download_utilization",
    "propshare_download_utilization",
    "download_utilization",
    "upload_rates",
    "equilibrium",
    "table1",
    "corollary1_efficiency_ranking",
    "corollary1_fair_algorithms",
]


@dataclass(frozen=True)
class EquilibriumParameters:
    """Parameters of the idealised-equilibrium model (Section IV-A1).

    Attributes
    ----------
    capacities:
        Upload capacities ``U_1 >= ... >= U_N`` (any order accepted;
        sorted internally).
    seeder_rate:
        Aggregate seeder upload bandwidth ``u_S``; each user receives
        an expected ``u_S / N`` from the seeder on top of the
        peer-to-peer download utilisation.
    alpha_bt:
        Fraction of BitTorrent bandwidth used for optimistic unchoking
        (altruism). The paper's experiments use 0.2.
    alpha_r:
        Fraction of reputation-system bandwidth reserved for altruism
        (bootstrapping), as in EigenTrust.
    n_bt:
        Number of simultaneous tit-for-tat (unchoked) partners in
        BitTorrent; the classic client uses 4.
    """

    capacities: Sequence[float]
    seeder_rate: float = 0.0
    alpha_bt: float = 0.2
    alpha_r: float = 0.1
    n_bt: int = 4

    def __post_init__(self) -> None:
        caps = metrics.validate_capacities(self.capacities)
        object.__setattr__(self, "capacities", tuple(float(c) for c in caps))
        if self.seeder_rate < 0:
            raise ModelParameterError("seeder_rate must be non-negative")
        for name in ("alpha_bt", "alpha_r"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelParameterError(f"{name} must lie in [0, 1], got {value}")
        if self.n_bt < 1:
            raise ModelParameterError("n_bt must be at least 1")

    @property
    def n_users(self) -> int:
        return len(self.capacities)

    def capacity_array(self) -> np.ndarray:
        return np.asarray(self.capacities, dtype=float)


@dataclass(frozen=True)
class EquilibriumResult:
    """Equilibrium rates and headline metrics for one algorithm."""

    algorithm: Algorithm
    upload_rates: np.ndarray
    download_rates: np.ndarray
    efficiency: float = field(init=False)
    fairness: float = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "efficiency",
                           metrics.efficiency(self.download_rates))
        object.__setattr__(self, "fairness",
                           metrics.fairness(self.download_rates, self.upload_rates))


def _require_two_users(caps: np.ndarray) -> None:
    if caps.size < 2:
        raise ModelParameterError("equilibrium model requires at least two users")


def reciprocity_download_utilization(params: EquilibriumParameters) -> np.ndarray:
    """Pure reciprocity: nobody can initiate, so utilisation is zero."""
    return np.zeros(params.n_users)


def tchain_download_utilization(params: EquilibriumParameters) -> np.ndarray:
    """T-Chain: with perfect availability every upload is reciprocated,
    so each user downloads exactly its upload capacity ``U_i``."""
    return params.capacity_array()


def fairtorrent_download_utilization(params: EquilibriumParameters) -> np.ndarray:
    """FairTorrent: zero deficits in equilibrium force ``d_i = U_i``."""
    return params.capacity_array()


def altruism_download_utilization(params: EquilibriumParameters) -> np.ndarray:
    """Altruism: each user receives the mean capacity of the others."""
    caps = params.capacity_array()
    _require_two_users(caps)
    total = caps.sum()
    return (total - caps) / (caps.size - 1)


def bittorrent_download_utilization(params: EquilibriumParameters) -> np.ndarray:
    """BitTorrent: tit-for-tat within capacity groups plus altruism.

    Users (sorted by descending capacity) are partitioned into blocks
    of ``n_bt``; the tit-for-tat share of user ``i``'s download rate is
    the mean capacity of its block scaled by ``1 - alpha_bt``, and the
    optimistic-unchoke share spreads everyone's ``alpha_bt`` fraction
    uniformly, mirroring the altruism row.
    """
    caps = params.capacity_array()
    _require_two_users(caps)
    n = caps.size
    n_bt = min(params.n_bt, n)
    tit_for_tat = np.empty(n)
    for start in range(0, n, n_bt):
        block = caps[start:start + n_bt]
        tit_for_tat[start:start + n_bt] = block.mean()
    altruistic = (caps.sum() - caps) / (n - 1)
    return (1.0 - params.alpha_bt) * tit_for_tat + params.alpha_bt * altruistic


def reputation_download_utilization(params: EquilibriumParameters) -> np.ndarray:
    """Reputation: reputations proportional to capacity in equilibrium.

    User ``i`` receives ``U_i * sum_{j != i} (1 - alpha_R) U_j /
    sum_{k != j} U_k`` from reputation-weighted uploads, plus the
    uniform altruism share of everyone's ``alpha_R`` fraction.
    """
    caps = params.capacity_array()
    _require_two_users(caps)
    n = caps.size
    total = caps.sum()
    # weight_j = U_j / sum_{k != j} U_k, i.e. uploader j's bandwidth
    # normalised by the total reputation of its candidate receivers.
    weights = caps / (total - caps)
    reputation_share = np.empty(n)
    for i in range(n):
        reputation_share[i] = caps[i] * (1.0 - params.alpha_r) * (
            weights.sum() - weights[i]
        )
    altruistic = (total - caps) / (n - 1)
    return reputation_share + params.alpha_r * altruistic


def propshare_download_utilization(params: EquilibriumParameters) -> np.ndarray:
    """PropShare (extension, [5]): proportional reciprocity.

    In equilibrium a proportional allocation returns each user's
    contribution exactly, so the reciprocal share gives ``U_i`` and the
    remaining ``alpha_BT`` fraction is the uniform altruism share —
    PropShare interpolates between FairTorrent/T-Chain's perfect
    return and altruism, without BitTorrent's capacity-group mixing.
    """
    caps = params.capacity_array()
    _require_two_users(caps)
    altruistic = (caps.sum() - caps) / (caps.size - 1)
    return (1.0 - params.alpha_bt) * caps + params.alpha_bt * altruistic


_UTILIZATION_FUNCTIONS = {
    Algorithm.PROPSHARE: propshare_download_utilization,
    Algorithm.RECIPROCITY: reciprocity_download_utilization,
    Algorithm.TCHAIN: tchain_download_utilization,
    Algorithm.BITTORRENT: bittorrent_download_utilization,
    Algorithm.FAIRTORRENT: fairtorrent_download_utilization,
    Algorithm.REPUTATION: reputation_download_utilization,
    Algorithm.ALTRUISM: altruism_download_utilization,
}


def download_utilization(algorithm: Algorithm,
                         params: EquilibriumParameters) -> np.ndarray:
    """Table I row for ``algorithm``: ``d_i - u_S/N`` per user."""
    return _UTILIZATION_FUNCTIONS[Algorithm.parse(algorithm)](params)


def upload_rates(algorithm: Algorithm,
                 params: EquilibriumParameters) -> np.ndarray:
    """Equilibrium upload rates from Lemma 2.

    Everyone uploads at full capacity except reciprocity users, who
    cannot initiate any exchange and upload nothing.
    """
    if Algorithm.parse(algorithm) is Algorithm.RECIPROCITY:
        return np.zeros(params.n_users)
    return params.capacity_array()


def equilibrium(algorithm: Algorithm,
                params: EquilibriumParameters) -> EquilibriumResult:
    """Full equilibrium (rates + metrics) for one algorithm.

    Download rates include the seeder share ``u_S / N``.
    """
    algorithm = Algorithm.parse(algorithm)
    utilisation = download_utilization(algorithm, params)
    seeder_share = params.seeder_rate / params.n_users
    return EquilibriumResult(
        algorithm=algorithm,
        upload_rates=upload_rates(algorithm, params),
        download_rates=utilisation + seeder_share,
    )


def table1(params: EquilibriumParameters,
           algorithms: Optional[Iterable[Algorithm]] = None,
           ) -> Dict[Algorithm, EquilibriumResult]:
    """Reproduce Table I: equilibrium results for every algorithm."""
    selected = tuple(Algorithm.parse(a) for a in (algorithms or ALL_ALGORITHMS))
    return {a: equilibrium(a, params) for a in selected}


def corollary1_efficiency_ranking(params: EquilibriumParameters,
                                  ) -> List[Algorithm]:
    """Algorithms sorted most-efficient first (smallest ``E``).

    Under Corollary 1's similarity assumptions this yields altruism
    first, then BitTorrent and reputation, then T-Chain and
    FairTorrent, with reciprocity last (infinite download time).
    """
    results = table1(params)
    return sorted(results, key=lambda a: (results[a].efficiency, a.value))


def corollary1_fair_algorithms(params: EquilibriumParameters,
                               tol: float = 1e-9) -> List[Algorithm]:
    """Algorithms achieving optimal fairness ``F = 0`` in equilibrium.

    Per Corollary 1 this is exactly T-Chain and FairTorrent (their
    download and upload rates coincide). The seeder share is excluded
    from this check, matching the paper's utilisation-based argument.
    """
    fair: List[Algorithm] = []
    for algorithm in ALL_ALGORITHMS:
        utilisation = download_utilization(algorithm, params)
        uploads = upload_rates(algorithm, params)
        if np.all(uploads > 0) and np.all(np.abs(utilisation - uploads) <= tol):
            fair.append(algorithm)
    return fair
