"""Fairness-efficiency tradeoff helpers (Lemma 1, Figures 2 and 3).

Two rankings summarise the analysis of Section IV-A:

* **Figure 2** (idealized equilibrium): fairness order
  ``{T-Chain, FairTorrent} > BitTorrent > {reputation, altruism}``
  and efficiency order
  ``altruism > {BitTorrent, reputation} > {T-Chain, FairTorrent} >
  reciprocity``.
* **Figure 3** (piece availability): efficiency order
  ``altruism > T-Chain > FairTorrent > BitTorrent > reciprocity``,
  obtained from the per-pair exchange-feasibility probabilities of
  Proposition 2.

This module computes both orderings from the quantitative models, plus
a parametric fairness-efficiency frontier and the "Robin Hood"
(progressive transfer) operation used in Corollary 1's proof.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core import equilibrium as eq
from repro.core import metrics
from repro.core import piece_availability as pa
from repro.errors import ModelParameterError
from repro.names import Algorithm

__all__ = [
    "figure2_efficiency_ranking",
    "figure2_fairness_ranking",
    "mean_exchange_probability",
    "figure3_efficiency_ranking",
    "fairness_efficiency_frontier",
    "robin_hood_transfer",
]


def figure2_efficiency_ranking(params: eq.EquilibriumParameters) -> List[Algorithm]:
    """Idealized-equilibrium efficiency ranking (most efficient first)."""
    return eq.corollary1_efficiency_ranking(params)


def figure2_fairness_ranking(params: eq.EquilibriumParameters) -> List[Algorithm]:
    """Idealized-equilibrium fairness ranking (most fair first).

    Reciprocity is placed last: with zero rates in both directions its
    fairness is undefined (the paper notes it is "so inefficient that
    fairness cannot be defined"), which we encode as least-fair.
    """
    results = eq.table1(params)

    def key(algorithm: Algorithm) -> Tuple[float, str]:
        if algorithm is Algorithm.RECIPROCITY:
            return (float("inf"), algorithm.value)
        r = results[algorithm]
        value = metrics.fairness(
            eq.download_utilization(algorithm, params),
            r.upload_rates,
        )
        return (value, algorithm.value)

    return sorted(results, key=key)


def mean_exchange_probability(
        algorithm: Algorithm,
        distribution: pa.PieceCountDistribution,
        n_users: int,
        alpha_bt: float = 0.2,
        max_support: Optional[int] = None) -> float:
    """Average exchange feasibility between two random users.

    Averages the Proposition-2 probabilities ``pi(j, i)`` over piece
    counts ``m_i, m_j`` drawn independently from ``distribution``. This
    is the quantity behind Figure 3: a higher mean feasibility means a
    higher achievable efficiency under piece-availability constraints.

    ``max_support`` optionally truncates the support for speed (counts
    with zero probability are always skipped).
    """
    algorithm = Algorithm.parse(algorithm)
    M = distribution.M
    p = distribution.as_array()
    support = [l for l, pl in enumerate(p) if pl > 0.0]
    if max_support is not None:
        support = support[:max_support]
    total = 0.0
    mass = 0.0
    for m_i in support:
        for m_j in support:
            weight = p[m_i] * p[m_j]
            if weight == 0.0:
                continue
            if algorithm is Algorithm.ALTRUISM:
                prob = pa.pi_altruism(m_i, m_j, M)
            elif algorithm is Algorithm.TCHAIN:
                prob = pa.pi_tchain(m_i, m_j, M, distribution, n_users)
            elif algorithm is Algorithm.BITTORRENT:
                prob = pa.pi_bittorrent(m_i, m_j, M, alpha_bt)
            elif algorithm is Algorithm.FAIRTORRENT:
                # FairTorrent needs only one-sided interest, but the
                # uploader must currently favour the receiver's deficit
                # class; availability-wise it matches altruism.
                prob = pa.pi_altruism(m_i, m_j, M)
            elif algorithm is Algorithm.RECIPROCITY:
                prob = 0.0  # exchanges can never be initiated
            elif algorithm is Algorithm.REPUTATION:
                prob = pa.pi_altruism(m_i, m_j, M)
            else:  # pragma: no cover - exhaustive above
                raise ModelParameterError(f"unsupported algorithm {algorithm}")
            total += weight * prob
            mass += weight
    return total / mass if mass > 0 else 0.0


def figure3_efficiency_ranking(
        distribution: pa.PieceCountDistribution,
        n_users: int,
        alpha_bt: float = 0.2) -> List[Algorithm]:
    """Piece-availability efficiency ranking (Figure 3), best first.

    Altruism, T-Chain, BitTorrent, and reciprocity are ranked by their
    mean exchange feasibility (Proposition 2). FairTorrent's raw
    feasibility equals altruism's — any one-sided interest suffices —
    but its lowest-deficit-first rule constrains *which* feasible
    exchange may be used, so, following Section IV-A2's argument, it
    is placed immediately below T-Chain rather than ranked by its
    unconstrained feasibility.
    """
    scored = [Algorithm.ALTRUISM, Algorithm.TCHAIN, Algorithm.BITTORRENT,
              Algorithm.RECIPROCITY]
    probs = {
        a: mean_exchange_probability(a, distribution, n_users, alpha_bt)
        for a in scored
    }
    rank_hint = {a: i for i, a in enumerate(scored)}
    ranking = sorted(scored, key=lambda a: (-probs[a], rank_hint[a]))
    ranking.insert(ranking.index(Algorithm.TCHAIN) + 1, Algorithm.FAIRTORRENT)
    return ranking


def fairness_efficiency_frontier(
        capacities: Iterable[float],
        mix_levels: Iterable[float],
        seeder_rate: float = 0.0) -> List[Dict[str, float]]:
    """Parametric frontier between perfect fairness and peak efficiency.

    For each mix ``theta`` in ``mix_levels``, download rates are the
    convex combination ``(1 - theta) * U + theta * d_star`` of the
    perfectly fair allocation (``d = U``, F = 0) and Lemma 1's
    efficiency-optimal equal-rate allocation ``d_star``. Returns a list
    of ``{"theta", "fairness", "efficiency"}`` rows; efficiency is the
    average download time (lower = more efficient), which decreases
    monotonically in ``theta`` while fairness ``F`` increases — the
    Lemma 1 tension made quantitative.
    """
    caps = metrics.validate_rates(capacities, "capacities", strictly_positive=True)
    d_star = metrics.optimal_download_rates(caps, seeder_rate)
    rows: List[Dict[str, float]] = []
    for theta in mix_levels:
        theta = float(theta)
        if not 0.0 <= theta <= 1.0:
            raise ModelParameterError("mix levels must lie in [0, 1]")
        d = (1.0 - theta) * caps + theta * d_star
        rows.append({
            "theta": theta,
            "fairness": metrics.fairness(d, caps),
            "efficiency": metrics.efficiency(d),
        })
    return rows


def robin_hood_transfer(rates: Iterable[float], amount: float,
                        rich: int, poor: int) -> np.ndarray:
    """One progressive (Robin Hood) transfer used in Corollary 1's proof.

    Moves ``amount`` of download rate from a better-off user to a
    worse-off one; by the Schur-concavity of Eq. 2's objective, any
    such transfer weakly improves efficiency. Raises if the transfer
    would overshoot (make the rich user poorer than the poor one ends
    up), since that would not be progressive.
    """
    r = metrics.validate_rates(rates, "rates").astype(float).copy()
    if not (0 <= rich < r.size and 0 <= poor < r.size) or rich == poor:
        raise ModelParameterError("rich and poor must be distinct valid indices")
    if amount < 0:
        raise ModelParameterError("amount must be non-negative")
    if r[rich] < r[poor]:
        raise ModelParameterError("source must be at least as rich as target")
    if amount > (r[rich] - r[poor]) / 2.0:
        raise ModelParameterError("transfer overshoots: not progressive")
    r[rich] -= amount
    r[poor] += amount
    return r
