"""Fluid model of BitTorrent-like swarms (substrate for refs [10, 27]).

The paper's Table I BitTorrent row and its efficiency arguments build
on the deterministic fluid models of Qiu & Srikant [27] and Fan, Lui &
Chiu [10]. This module implements that substrate: the classic two-state
ODE for the number of downloaders ``x(t)`` and seeds ``y(t)``::

    dx/dt = lambda - theta * x - min(c * x, mu * (eta * x + y))
    dy/dt = min(c * x, mu * (eta * x + y)) - gamma * y

where ``lambda`` is the arrival rate, ``theta`` the abort rate, ``c``
the download-bandwidth cap, ``mu`` the upload bandwidth, ``eta`` the
file-sharing *effectiveness* (the probability a downloader can serve
another — exactly the quantity Section IV-A2's piece-availability
analysis refines), and ``gamma`` the seed departure rate.

The module provides Euler integration of the transient, the
closed-form steady state, and Little's-law mean download times — the
fluid-level counterpart of Eq. 2's efficiency metric. The paper's
insight plugs in directly: an incentive mechanism changes ``eta``
(who *can* exchange with whom), and the fluid model translates that
into download-time differences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import ModelParameterError

__all__ = [
    "FluidParameters",
    "FluidState",
    "simulate_fluid",
    "steady_state",
    "mean_download_time",
    "effectiveness_from_exchange_probability",
]


@dataclass(frozen=True)
class FluidParameters:
    """Parameters of the Qiu-Srikant fluid model.

    Rates are per unit time for a unit-size file: ``mu`` and ``c`` are
    in files (not pieces) per unit time per peer.
    """

    arrival_rate: float  # lambda
    upload_rate: float  # mu
    download_cap: float = float("inf")  # c
    effectiveness: float = 1.0  # eta
    seed_departure_rate: float = 1.0  # gamma
    abort_rate: float = 0.0  # theta

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ModelParameterError("arrival_rate must be non-negative")
        if self.upload_rate <= 0:
            raise ModelParameterError("upload_rate must be positive")
        if self.download_cap <= 0:
            raise ModelParameterError("download_cap must be positive")
        if not 0.0 <= self.effectiveness <= 1.0:
            raise ModelParameterError("effectiveness must lie in [0, 1]")
        if self.seed_departure_rate <= 0:
            raise ModelParameterError("seed_departure_rate must be positive")
        if self.abort_rate < 0:
            raise ModelParameterError("abort_rate must be non-negative")


@dataclass(frozen=True)
class FluidState:
    """Swarm state at one instant: downloaders ``x`` and seeds ``y``."""

    time: float
    downloaders: float
    seeds: float

    @property
    def total_peers(self) -> float:
        return self.downloaders + self.seeds


def _completion_rate(params: FluidParameters, x: float, y: float) -> float:
    """Downloads completed per unit time: min of demand and supply."""
    if x <= 0.0:
        return 0.0  # nobody downloading (also avoids inf * 0)
    supply = params.upload_rate * (params.effectiveness * x + y)
    if math.isinf(params.download_cap):
        return supply
    return min(params.download_cap * x, supply)


def simulate_fluid(params: FluidParameters, t_end: float,
                   dt: float = 0.01, x0: float = 0.0, y0: float = 1.0,
                   ) -> List[FluidState]:
    """Euler-integrate the ODE from ``(x0, y0)`` up to ``t_end``.

    ``y0`` defaults to 1: the initial seeder. States are clamped at
    zero (the fluid approximation can otherwise undershoot).
    """
    if t_end <= 0 or dt <= 0 or dt > t_end:
        raise ModelParameterError("need 0 < dt <= t_end")
    states = [FluidState(0.0, float(x0), float(y0))]
    x, y = float(x0), float(y0)
    steps = int(round(t_end / dt))
    for step in range(1, steps + 1):
        completed = _completion_rate(params, x, y)
        dx = params.arrival_rate - params.abort_rate * x - completed
        dy = completed - params.seed_departure_rate * y
        x = max(0.0, x + dt * dx)
        y = max(0.0, y + dt * dy)
        states.append(FluidState(step * dt, x, y))
    return states


def steady_state(params: FluidParameters) -> FluidState:
    """Closed-form equilibrium of the fluid model ([27], Section 3).

    With ``nu = 1 / (eta + gamma_ratio)`` shorthand, the equilibrium
    solves ``lambda_eff = min(c x, mu (eta x + y))`` and
    ``y = lambda_eff / gamma``. Two regimes:

    * supply-constrained (the min picks the upload term),
    * download-constrained (``x = lambda_eff / c``).
    """
    lam = params.arrival_rate
    if lam == 0:
        return FluidState(float("inf"), 0.0, 0.0)
    theta, mu, gamma = params.abort_rate, params.upload_rate, params.seed_departure_rate
    eta, c = params.effectiveness, params.download_cap

    # Ignoring aborts first (theta = 0 closed form), then correcting:
    # in equilibrium completed = lam - theta*x and y = completed/gamma.
    # Supply-constrained candidate: completed = mu*(eta x + y).
    #   lam - theta x = mu eta x + mu (lam - theta x)/gamma
    #   => x (theta + mu eta - mu theta / gamma) = lam (1 - mu / gamma)
    denom = theta + mu * eta - mu * theta / gamma
    if denom > 0:
        x_supply = lam * (1.0 - mu / gamma) / denom
    else:
        x_supply = float("inf")
    if x_supply < 0:
        # Supply exceeds demand even at x = 0: download-constrained.
        x_supply = 0.0

    # Download-constrained candidate: completed = c x.
    x_demand = lam / (c + theta) if c != float("inf") else 0.0

    x = max(x_supply, x_demand)
    completed = lam - theta * x
    y = completed / gamma
    return FluidState(float("inf"), max(x, 0.0), max(y, 0.0))


def mean_download_time(params: FluidParameters) -> float:
    """Steady-state mean download time via Little's law, ``T = x/lam_c``.

    ``lam_c`` is the rate of *completed* downloads (arrivals minus
    aborts). This is the fluid counterpart of Eq. 2's average download
    time; raising the effectiveness ``eta`` — what a better incentive
    mechanism does — strictly lowers it in the supply-constrained
    regime.
    """
    state = steady_state(params)
    completed = params.arrival_rate - params.abort_rate * state.downloaders
    if completed <= 0:
        return float("inf")
    return state.downloaders / completed


def effectiveness_from_exchange_probability(mean_pi: float) -> float:
    """Map a Proposition-2 mean exchange feasibility onto ``eta``.

    Qiu & Srikant show ``eta`` is the probability that a downloader
    holds something another downloader needs; Section IV-A2's
    ``pi(j, i)`` refines it per mechanism. The identity mapping is
    deliberate — this helper just validates and documents the bridge
    between the two layers.
    """
    if not 0.0 <= mean_pi <= 1.0:
        raise ModelParameterError("mean_pi must lie in [0, 1]")
    return mean_pi
