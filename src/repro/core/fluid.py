"""Fluid model of BitTorrent-like swarms (substrate for refs [10, 27]).

The paper's Table I BitTorrent row and its efficiency arguments build
on the deterministic fluid models of Qiu & Srikant [27] and Fan, Lui &
Chiu [10]. This module implements that substrate: the classic two-state
ODE for the number of downloaders ``x(t)`` and seeds ``y(t)``::

    dx/dt = lambda - theta * x - min(c * x, mu * (eta * x + y))
    dy/dt = min(c * x, mu * (eta * x + y)) - gamma * y

where ``lambda`` is the arrival rate, ``theta`` the abort rate, ``c``
the download-bandwidth cap, ``mu`` the upload bandwidth, ``eta`` the
file-sharing *effectiveness* (the probability a downloader can serve
another — exactly the quantity Section IV-A2's piece-availability
analysis refines), and ``gamma`` the seed departure rate.

The module provides Euler integration of the transient, the
closed-form steady state, and Little's-law mean download times — the
fluid-level counterpart of Eq. 2's efficiency metric. The paper's
insight plugs in directly: an incentive mechanism changes ``eta``
(who *can* exchange with whom), and the fluid model translates that
into download-time differences.

Two degenerate regimes are first-class citizens because the hybrid
engine (:mod:`repro.sim.hybrid`, docs/SCALING.md) integrates through
them at every flash crowd:

* ``gamma == 0`` — seeds never leave. The swarm accumulates supply
  without bound, so the equilibrium is *demand*-constrained:
  ``x* = lambda / (c + theta)`` under a finite download cap and
  ``x* = 0`` without one, with ``y`` diverging. ``gamma == inf``
  (depart the instant the download completes — the paper's Section
  V-A workload) is also accepted: no lingering seed mass ever forms.
* ``lambda == 0`` — the post-flash tail. Once arrivals stop the ODE
  becomes linear and :func:`post_flash_decay` gives its closed form
  (matrix exponential of the 2x2 system), which the unit tests pin
  against the Euler integrator.

:func:`simulate_fluid_schedule` is the coupling surface for the
hybrid: arrival rate and effectiveness may be *time-varying* —
a non-stationary ``lambda(t)`` models the flash crowd itself
(:func:`flash_crowd_rate`), and a piecewise-constant ``eta(t)``
carries measured subswarm feedback back into the aggregate
(:func:`stepwise`).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import ModelParameterError

__all__ = [
    "FluidParameters",
    "FluidState",
    "simulate_fluid",
    "simulate_fluid_schedule",
    "flash_crowd_rate",
    "stepwise",
    "steady_state",
    "mean_download_time",
    "post_flash_decay",
    "effectiveness_from_exchange_probability",
]

#: A fluid coefficient that may vary with time: a constant, or a
#: callable ``t -> value`` evaluated at the *start* of each Euler step.
Schedule = Union[float, Callable[[float], float]]


@dataclass(frozen=True)
class FluidParameters:
    """Parameters of the Qiu-Srikant fluid model.

    Rates are per unit time for a unit-size file: ``mu`` and ``c`` are
    in files (not pieces) per unit time per peer.

    ``seed_departure_rate`` spans the full closed interval
    ``[0, inf]``: ``0`` means completed peers seed forever, ``inf``
    means they leave the instant they finish (the paper's flash-crowd
    workload), and anything between is an exponential linger with mean
    ``1/gamma``.
    """

    arrival_rate: float  # lambda
    upload_rate: float  # mu
    download_cap: float = float("inf")  # c
    effectiveness: float = 1.0  # eta
    seed_departure_rate: float = 1.0  # gamma
    abort_rate: float = 0.0  # theta

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ModelParameterError("arrival_rate must be non-negative")
        if self.upload_rate <= 0:
            raise ModelParameterError("upload_rate must be positive")
        if self.download_cap <= 0:
            raise ModelParameterError("download_cap must be positive")
        if not 0.0 <= self.effectiveness <= 1.0:
            raise ModelParameterError("effectiveness must lie in [0, 1]")
        if self.seed_departure_rate < 0 or math.isnan(self.seed_departure_rate):
            raise ModelParameterError(
                "seed_departure_rate must lie in [0, inf] (0 = seeds never "
                "leave, inf = depart on completion)")
        if self.abort_rate < 0:
            raise ModelParameterError("abort_rate must be non-negative")


@dataclass(frozen=True)
class FluidState:
    """Swarm state at one instant: downloaders ``x`` and seeds ``y``."""

    time: float
    downloaders: float
    seeds: float

    @property
    def total_peers(self) -> float:
        return self.downloaders + self.seeds


def _completion_rate(params: FluidParameters, x: float, y: float) -> float:
    """Downloads completed per unit time: min of demand and supply."""
    if x <= 0.0:
        return 0.0  # nobody downloading (also avoids inf * 0)
    supply = params.upload_rate * (params.effectiveness * x + y)
    if math.isinf(params.download_cap):
        return supply
    return min(params.download_cap * x, supply)


def simulate_fluid(params: FluidParameters, t_end: float,
                   dt: float = 0.01, x0: float = 0.0, y0: float = 1.0,
                   ) -> List[FluidState]:
    """Euler-integrate the ODE from ``(x0, y0)`` up to ``t_end``.

    ``y0`` defaults to 1: the initial seeder. States are clamped at
    zero (the fluid approximation can otherwise undershoot).
    """
    return simulate_fluid_schedule(params, t_end, dt=dt, x0=x0, y0=y0)


def _coefficient(schedule: Optional[Schedule], default: float,
                 t: float) -> float:
    if schedule is None:
        return default
    if callable(schedule):
        return float(schedule(t))
    return float(schedule)


def simulate_fluid_schedule(params: FluidParameters, t_end: float,
                            dt: float = 0.01, x0: float = 0.0, y0: float = 1.0,
                            arrival_rate: Optional[Schedule] = None,
                            effectiveness: Optional[Schedule] = None,
                            seed_floor: float = 0.0,
                            ) -> List[FluidState]:
    """Euler integration with time-varying coefficients — the coupling
    surface of the fluid/event-driven hybrid (docs/SCALING.md).

    ``arrival_rate`` and ``effectiveness`` override the corresponding
    :class:`FluidParameters` field when given; either may be a constant
    or a callable ``t -> value`` sampled at the start of each step
    (:func:`flash_crowd_rate` builds the non-stationary flash-crowd
    ``lambda(t)``; :func:`stepwise` turns per-coupling-round subswarm
    feedback into a piecewise-constant ``eta(t)``).

    ``seed_floor`` is permanent exogenous seed mass (infrastructure
    seeders): it contributes to upload supply at every step but is not
    subject to ``gamma`` departures and is *excluded* from the reported
    ``seeds`` column, which tracks lingering completed peers only.
    With ``gamma == inf`` that column is identically ``y0`` at ``t=0``
    and ``0`` afterwards: completed peers depart within the step they
    finish.
    """
    if t_end <= 0 or dt <= 0 or dt > t_end:
        raise ModelParameterError("need 0 < dt <= t_end")
    if seed_floor < 0:
        raise ModelParameterError("seed_floor must be non-negative")
    gamma = params.seed_departure_rate
    states = [FluidState(0.0, float(x0), float(y0))]
    x, y = float(x0), float(y0)
    steps = int(round(t_end / dt))
    for step in range(1, steps + 1):
        t = (step - 1) * dt
        lam = _coefficient(arrival_rate, params.arrival_rate, t)
        eta = _coefficient(effectiveness, params.effectiveness, t)
        if lam < 0:
            raise ModelParameterError("arrival_rate schedule went negative")
        if not 0.0 <= eta <= 1.0:
            raise ModelParameterError(
                "effectiveness schedule left [0, 1]")
        if x <= 0.0:
            completed = 0.0  # nobody downloading (also avoids inf * 0)
        else:
            supply = params.upload_rate * (eta * x + y + seed_floor)
            completed = (supply if math.isinf(params.download_cap)
                         else min(params.download_cap * x, supply))
        dx = lam - params.abort_rate * x - completed
        x = max(0.0, x + dt * dx)
        if math.isinf(gamma):
            y = 0.0  # completed peers depart within the step
        else:
            y = max(0.0, y + dt * (completed - gamma * y))
        states.append(FluidState(step * dt, x, y))
    return states


def flash_crowd_rate(population: float, duration: float,
                     ) -> Callable[[float], float]:
    """Non-stationary ``lambda(t)`` of a flash crowd: ``population``
    peers arrive uniformly over ``[0, duration)``, then nobody does.

    ``duration == 0`` (the extreme flash crowd of Section IV-B) is
    modelled as arrival within the first integration step — callers
    should instead seed ``x0 = population`` in that case; this helper
    rejects it to keep the rate finite.
    """
    if population < 0:
        raise ModelParameterError("population must be non-negative")
    if duration <= 0:
        raise ModelParameterError(
            "duration must be positive (put an instantaneous crowd in x0)")
    rate = population / duration

    def schedule(t: float) -> float:
        return rate if 0.0 <= t < duration else 0.0

    return schedule


def stepwise(boundaries: Sequence[float], values: Sequence[float],
             ) -> Callable[[float], float]:
    """Piecewise-constant schedule from coupling-boundary feedback.

    ``values[i]`` holds on ``[boundaries[i], boundaries[i+1])``; the
    last value extends to infinity and the first extends back to
    ``-inf`` (so a schedule measured from round 0 covers the whole
    integration). This is how the hybrid feeds measured subswarm
    effectiveness back into the aggregate between coupling rounds.
    """
    if len(boundaries) != len(values):
        raise ModelParameterError("need one value per boundary")
    if not boundaries:
        raise ModelParameterError("need at least one (boundary, value)")
    if list(boundaries) != sorted(boundaries):
        raise ModelParameterError("boundaries must be ascending")
    points = [(float(b), float(v)) for b, v in zip(boundaries, values)]

    def schedule(t: float) -> float:
        current = points[0][1]
        for boundary, value in points:
            if t < boundary:
                break
            current = value
        return current

    return schedule


def steady_state(params: FluidParameters) -> FluidState:
    """Closed-form equilibrium of the fluid model ([27], Section 3).

    With ``nu = 1 / (eta + gamma_ratio)`` shorthand, the equilibrium
    solves ``lambda_eff = min(c x, mu (eta x + y))`` and
    ``y = lambda_eff / gamma``. Two regimes:

    * supply-constrained (the min picks the upload term),
    * download-constrained (``x = lambda_eff / c``).

    Degenerate corners:

    * ``lambda == 0`` — the swarm drains; for ``gamma > 0`` the unique
      equilibrium is empty. With ``gamma == 0`` as well, every
      ``(0, y)`` is an equilibrium (seeds that never leave persist at
      whatever mass the transient deposited); the returned ``seeds=0``
      is the infimum of that line, and :func:`post_flash_decay` gives
      the trajectory-dependent answer.
    * ``gamma == 0`` with ``lambda > 0`` — lingering supply grows
      without bound, so the equilibrium is demand-constrained:
      ``x* = lambda / (c + theta)`` under a finite cap, ``x* = 0``
      otherwise, with ``y = inf``.
    """
    lam = params.arrival_rate
    if lam == 0:
        return FluidState(float("inf"), 0.0, 0.0)
    theta, mu, gamma = params.abort_rate, params.upload_rate, params.seed_departure_rate
    eta, c = params.effectiveness, params.download_cap

    if gamma == 0:
        # Seeds never leave: y(t) -> inf, so supply is unbounded and
        # only the download cap (plus aborts) limits the equilibrium.
        x = lam / (c + theta) if not math.isinf(c) else 0.0
        return FluidState(float("inf"), x, float("inf"))

    # Ignoring aborts first (theta = 0 closed form), then correcting:
    # in equilibrium completed = lam - theta*x and y = completed/gamma.
    # Supply-constrained candidate: completed = mu*(eta x + y).
    #   lam - theta x = mu eta x + mu (lam - theta x)/gamma
    #   => x (theta + mu eta - mu theta / gamma) = lam (1 - mu / gamma)
    # (gamma == inf degrades gracefully: mu/gamma and mu*theta/gamma
    # both vanish, leaving the no-lingering equilibrium.)
    denom = theta + mu * eta - (0.0 if math.isinf(gamma)
                                else mu * theta / gamma)
    gamma_ratio = 0.0 if math.isinf(gamma) else mu / gamma
    if denom > 0:
        x_supply = lam * (1.0 - gamma_ratio) / denom
    else:
        x_supply = float("inf")
    if x_supply < 0:
        # Supply exceeds demand even at x = 0: download-constrained.
        x_supply = 0.0

    # Download-constrained candidate: completed = c x.
    x_demand = lam / (c + theta) if c != float("inf") else 0.0

    x = max(x_supply, x_demand)
    completed = lam - theta * x
    y = 0.0 if math.isinf(gamma) else completed / gamma
    return FluidState(float("inf"), max(x, 0.0), max(y, 0.0))


def mean_download_time(params: FluidParameters) -> float:
    """Steady-state mean download time via Little's law, ``T = x/lam_c``.

    ``lam_c`` is the rate of *completed* downloads (arrivals minus
    aborts). This is the fluid counterpart of Eq. 2's average download
    time; raising the effectiveness ``eta`` — what a better incentive
    mechanism does — strictly lowers it in the supply-constrained
    regime.

    Degenerate corners follow :func:`steady_state`: with ``gamma == 0``
    the unbounded lingering supply makes the download cap the only
    bottleneck (``T = 1/c``; ``0`` with no cap), and ``lambda == 0``
    has no steady-state throughput at all (``inf`` — use
    :func:`post_flash_decay` for the transient question).
    """
    state = steady_state(params)
    if params.seed_departure_rate == 0 and params.arrival_rate > 0:
        # x* / completed* directly: completed = lam - theta x*.
        if math.isinf(params.download_cap):
            return 0.0
        return 1.0 / params.download_cap
    completed = params.arrival_rate - params.abort_rate * state.downloaders
    if completed <= 0:
        return float("inf")
    return state.downloaders / completed


def post_flash_decay(params: FluidParameters, x0: float, y0: float,
                     t: float) -> Tuple[float, float]:
    """Closed-form ``(x(t), y(t))`` of the post-flash tail.

    Once arrivals stop (``lambda = 0``) and while the swarm stays in
    the supply-constrained regime (no binding download cap — pass
    ``download_cap=inf``), the ODE is linear::

        d/dt [x, y] = A [x, y],   A = [[-(theta + mu eta), -mu],
                                       [   mu eta,  mu - gamma]]

    and the solution is the matrix exponential ``expm(A t) [x0, y0]``,
    computed here by eigendecomposition (2x2, possibly complex pair;
    a defective/repeated eigenvalue falls back to the exact
    ``e^{lt}(I + (A - lI)t)`` form). The unit tests pin this against
    :func:`simulate_fluid` Euler runs.

    The form is exact only while ``x(t) > 0``: once the swarm fully
    drains, the integrator clamps at the empty state (completion rate
    zero) while the unclamped linear system would go negative — past
    that instant only the Euler trajectory is meaningful.

    Raises :class:`~repro.errors.ModelParameterError` when the closed
    form does not apply (``lambda != 0``, a finite download cap, or
    ``gamma == inf`` — with instant departure the tail is the scalar
    decay ``x(t) = x0 e^{-(theta + mu eta) t}``, which this function
    returns directly as its one non-matrix special case).
    """
    if params.arrival_rate != 0:
        raise ModelParameterError(
            "post_flash_decay is the lambda = 0 closed form; integrate "
            "simulate_fluid_schedule for a non-stationary tail")
    if not math.isinf(params.download_cap):
        raise ModelParameterError(
            "post_flash_decay assumes the supply-constrained regime "
            "(download_cap=inf); a binding cap makes the ODE piecewise")
    if t < 0:
        raise ModelParameterError("t must be non-negative")
    theta, mu = params.abort_rate, params.upload_rate
    eta, gamma = params.effectiveness, params.seed_departure_rate
    if math.isinf(gamma):
        # No lingering seeds: y = 0 and x decays alone. Completions
        # (rate mu eta x) and aborts (theta x) both remove downloaders.
        return (x0 * math.exp(-(theta + mu * eta) * t), 0.0)

    a, b = -(theta + mu * eta), -mu
    c, d = mu * eta, mu - gamma
    tr, det = a + d, a * d - b * c
    disc = cmath.sqrt(tr * tr / 4.0 - det)
    l1, l2 = tr / 2.0 + disc, tr / 2.0 - disc
    v = complex(x0), complex(y0)
    if abs(l1 - l2) > 1e-12 * max(1.0, abs(l1), abs(l2)):
        # expm(At) = (e^{l1 t}(A - l2 I) - e^{l2 t}(A - l1 I)) / (l1 - l2)
        e1, e2 = cmath.exp(l1 * t), cmath.exp(l2 * t)
        f1, f2 = e1 / (l1 - l2), e2 / (l2 - l1)
        m11 = f1 * (a - l2) + f2 * (a - l1)
        m12 = (f1 + f2) * b
        m21 = (f1 + f2) * c
        m22 = f1 * (d - l2) + f2 * (d - l1)
    else:
        # Repeated eigenvalue: expm(At) = e^{lt} (I + (A - lI) t).
        e = cmath.exp(l1 * t)
        m11 = e * (1.0 + (a - l1) * t)
        m12 = e * b * t
        m21 = e * c * t
        m22 = e * (1.0 + (d - l1) * t)
    x = (m11 * v[0] + m12 * v[1]).real
    y = (m21 * v[0] + m22 * v[1]).real
    return (max(0.0, x), max(0.0, y))


def effectiveness_from_exchange_probability(mean_pi: float) -> float:
    """Map a Proposition-2 mean exchange feasibility onto ``eta``.

    Qiu & Srikant show ``eta`` is the probability that a downloader
    holds something another downloader needs; Section IV-A2's
    ``pi(j, i)`` refines it per mechanism. The identity mapping is
    deliberate — this helper just validates and documents the bridge
    between the two layers.
    """
    if not 0.0 <= mean_pi <= 1.0:
        raise ModelParameterError("mean_pi must lie in [0, 1]")
    return mean_pi
