"""Bootstrapping model (Section IV-B: Lemma 3, Table II, Proposition 4).

A flash crowd of ``P`` newcomers arrives with no pieces; an algorithm's
**bootstrapping time** ``T_B(P)`` is the time until each newcomer holds
at least one piece. Lemma 3 reduces the expected bootstrapping time to
the per-timeslot probability ``p_B(t)`` that a single newcomer is
bootstrapped::

    E[T_B(P)] = sum_{n >= 1} (1 - (1 - prod_{t <= n} (1 - p_B(t)))^P)

Every algorithm's ``p_B`` has the form ``1 - (N - n_S)/N * x`` where
``n_S`` is the number of users the seeder bootstraps per timeslot and
``x`` is the probability that no *peer* bootstraps the newcomer
(Table II). This module provides ``x`` and ``p_B`` for all six
algorithms, the Lemma-3 expectation, and Proposition 4's ordering
checks, including the paper's example column (N = 1000, n_S = 1,
K = 5, z = 500, pi_DR = 0.5, n_BT = 4, omega = 0.75, n_FT = 500,
giving 0.1%, 71.4%, 39.6%, 71.4%, 22.2%, 91.8%).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Union

from repro.errors import ModelParameterError
from repro.names import ALL_ALGORITHMS, Algorithm

__all__ = [
    "BootstrapParameters",
    "no_peer_bootstrap_probability",
    "bootstrap_probability",
    "table2",
    "expected_bootstrap_time",
    "bootstrap_trajectory",
    "proposition4_ordering",
    "fairtorrent_altruism_condition",
]


@dataclass(frozen=True)
class BootstrapParameters:
    """Parameters of the flash-crowd bootstrapping model.

    Attributes
    ----------
    n_users:
        Total number of users ``N`` in the swarm.
    n_seeder:
        ``n_S`` — users bootstrapped by the seeder per timeslot.
    pieces_per_slot:
        ``K`` — average pieces each user can upload in one timeslot.
    bootstrapped:
        ``z(t)`` — number of already-bootstrapped users (piece holders)
        at the time being evaluated.
    pi_dr:
        Probability of direct reciprocity between two users (T-Chain).
    n_bt:
        BitTorrent's number of reciprocal unchoke slots.
    omega:
        FairTorrent: probability that a user has a negative deficit
        with at least one other user (and hence will not serve
        zero-deficit newcomers).
    n_ft:
        FairTorrent: number of users with zero deficits from which the
        uploader picks uniformly.
    altruist_fraction:
        Reputation algorithm: fraction of bootstrapped users that
        altruistically upload to one user per timeslot (EigenTrust's
        suggestion, one half).
    """

    n_users: int
    n_seeder: int = 1
    pieces_per_slot: int = 5
    bootstrapped: int = 500
    pi_dr: float = 0.5
    n_bt: int = 4
    omega: float = 0.75
    n_ft: int = 500
    altruist_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.n_users < 3:
            raise ModelParameterError("n_users must be at least 3")
        if not 0 <= self.n_seeder <= self.n_users:
            raise ModelParameterError("n_seeder must lie in [0, n_users]")
        if self.pieces_per_slot < 1:
            raise ModelParameterError("pieces_per_slot must be at least 1")
        if self.bootstrapped < 0:
            raise ModelParameterError("bootstrapped must be non-negative")
        for name in ("pi_dr", "omega", "altruist_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelParameterError(f"{name} must lie in [0, 1], got {value}")
        if self.n_bt < 1 or self.n_bt > self.n_users - 3:
            raise ModelParameterError(
                "n_bt must lie in [1, n_users - 3] for the Table II formula")
        if self.n_ft < self.pieces_per_slot + 2:
            raise ModelParameterError(
                "n_ft must exceed pieces_per_slot + 1 for the Table II formula")

    def with_bootstrapped(self, z: int) -> "BootstrapParameters":
        """Copy with a different number of bootstrapped users."""
        return replace(self, bootstrapped=z)


def _reciprocity_x(p: BootstrapParameters) -> float:
    # Reciprocity peers never initiate uploads: only the seeder helps.
    return 1.0


def _tchain_x(p: BootstrapParameters) -> float:
    # Each of the K*z uploads either goes to direct reciprocity (never
    # a newcomer) with probability pi_DR, or to a random other user.
    base = (p.n_users - 2 + p.pi_dr) / (p.n_users - 1)
    return base ** (p.pieces_per_slot * p.bootstrapped)


def _bittorrent_x(p: BootstrapParameters) -> float:
    # Each bootstrapped user optimistically unchokes one of the
    # N - n_BT - 1 users outside its reciprocity set.
    base = (p.n_users - p.n_bt - 2) / (p.n_users - p.n_bt - 1)
    return base ** p.bootstrapped


def _fairtorrent_x(p: BootstrapParameters) -> float:
    # A user serves newcomers only when none of its deficits are
    # negative (probability 1 - omega), then picks K of the n_FT
    # zero-deficit users uniformly.
    base = p.omega + (1.0 - p.omega) * (
        (p.n_ft - p.pieces_per_slot - 1) / (p.n_ft - 1))
    return base ** p.bootstrapped


def _reputation_x(p: BootstrapParameters) -> float:
    # Newcomers have zero reputation, so only the altruist fraction of
    # bootstrapped users (each uploading to one random user) can help.
    base = (p.n_users - 2) / (p.n_users - 1)
    return base ** (p.altruist_fraction * p.bootstrapped)


def _altruism_x(p: BootstrapParameters) -> float:
    # Every bootstrapped user sprays K pieces uniformly at random.
    base = (p.n_users - 2) / (p.n_users - 1)
    return base ** (p.pieces_per_slot * p.bootstrapped)


_X_FUNCTIONS: Dict[Algorithm, Callable[[BootstrapParameters], float]] = {
    # PropShare (extension): newcomers are reached only through the
    # optimistic slot, exactly like BitTorrent's Table II row.
    Algorithm.PROPSHARE: _bittorrent_x,
    Algorithm.RECIPROCITY: _reciprocity_x,
    Algorithm.TCHAIN: _tchain_x,
    Algorithm.BITTORRENT: _bittorrent_x,
    Algorithm.FAIRTORRENT: _fairtorrent_x,
    Algorithm.REPUTATION: _reputation_x,
    Algorithm.ALTRUISM: _altruism_x,
}


def no_peer_bootstrap_probability(algorithm: Algorithm,
                                  params: BootstrapParameters) -> float:
    """The factor ``x``: probability that no peer bootstraps a newcomer."""
    return _X_FUNCTIONS[Algorithm.parse(algorithm)](params)


def bootstrap_probability(algorithm: Algorithm,
                          params: BootstrapParameters) -> float:
    """Table II: probability a newcomer is bootstrapped in a timeslot::

        p_B = 1 - (N - n_S)/N * x
    """
    x = no_peer_bootstrap_probability(algorithm, params)
    return 1.0 - (params.n_users - params.n_seeder) / params.n_users * x


def table2(params: BootstrapParameters,
           algorithms: Optional[Iterable[Algorithm]] = None,
           ) -> Dict[Algorithm, float]:
    """Reproduce Table II's probability column for every algorithm."""
    selected = tuple(Algorithm.parse(a) for a in (algorithms or ALL_ALGORITHMS))
    return {a: bootstrap_probability(a, params) for a in selected}


def expected_bootstrap_time(
        p_b: Union[float, Callable[[int], float]],
        newcomers: int,
        max_slots: int = 100_000,
        tol: float = 1e-12) -> float:
    """Expected time for ``P`` newcomers to bootstrap (Lemma 3, Eq. 10).

    Parameters
    ----------
    p_b:
        Either a constant per-slot bootstrap probability or a callable
        ``p_b(t)`` for timeslots ``t = 1, 2, ...``.
    newcomers:
        ``P``, the flash-crowd size.
    max_slots:
        Safety cap on the series; the sum is truncated when terms fall
        below ``tol`` or the cap is reached. If ``p_b`` is identically
        zero the expectation is infinite and ``math.inf`` is returned.

    Note: Eq. 10 as printed sums ``P(T_B > n)`` from ``n = 1``, which
    evaluates to ``E[T_B] - 1`` (e.g. 0 when ``p_B = 1``, though the
    crowd needs one slot). We include the ``n = 0`` term, so this
    function returns the true expectation: ``1/p`` for a single
    newcomer with constant ``p``.
    """
    if newcomers < 1:
        raise ModelParameterError("newcomers must be at least 1")
    if callable(p_b):
        prob = p_b
    else:
        constant = float(p_b)
        if not 0.0 <= constant <= 1.0:
            raise ModelParameterError("p_b must lie in [0, 1]")
        def prob(_t: int, _c: float = constant) -> float:
            return _c

    total = 1.0  # the n = 0 term: the crowd always needs >= 1 slot
    survival = 1.0  # prod_{t <= n} (1 - p_B(t)): P(still not bootstrapped)
    for n in range(1, max_slots + 1):
        p_n = float(prob(n))
        if not 0.0 <= p_n <= 1.0:
            raise ModelParameterError(f"p_b({n}) = {p_n} outside [0, 1]")
        survival *= 1.0 - p_n
        term = 1.0 - (1.0 - survival) ** newcomers
        total += term
        if term < tol:
            return total
    return float("inf")


def bootstrap_trajectory(algorithm: Algorithm,
                         params: BootstrapParameters,
                         n_slots: int = 100,
                         initial_bootstrapped: int = 0,
                         ) -> List[Dict[str, float]]:
    """Mean-field bootstrap curve implied by Table II (Figure 4c's shape).

    Table II gives the per-slot probability ``p_B`` as a function of
    the *current* number of bootstrapped users ``z(t)``; iterating the
    expected-value dynamics::

        z(t+1) = z(t) + (N - z(t)) * p_B(z(t))

    yields the deterministic curve the stochastic swarm tracks. The
    self-reinforcement (more bootstrapped users, faster bootstrapping)
    is what makes Fig. 4c's curves S-shaped; ``pi_DR`` and ``omega``
    are held at their configured values (a documented simplification —
    both drift as pieces disperse).

    Returns ``{"slot", "bootstrapped", "fraction"}`` rows.
    """
    algorithm = Algorithm.parse(algorithm)
    if n_slots < 1:
        raise ModelParameterError("n_slots must be at least 1")
    if not 0 <= initial_bootstrapped <= params.n_users:
        raise ModelParameterError(
            "initial_bootstrapped must lie in [0, n_users]")
    z = float(initial_bootstrapped)
    n = params.n_users
    rows: List[Dict[str, float]] = []
    for slot in range(1, n_slots + 1):
        p = bootstrap_probability(
            algorithm, params.with_bootstrapped(int(round(z))))
        z = min(float(n), z + (n - z) * p)
        rows.append({"slot": float(slot), "bootstrapped": z,
                     "fraction": z / n})
    return rows


def proposition4_ordering(params: BootstrapParameters) -> List[Algorithm]:
    """Algorithms ordered fastest-bootstrapping first under ``params``.

    With the paper's example parameters this reproduces Proposition 4:
    altruism first; T-Chain and FairTorrent close behind (and tied with
    altruism when ``pi_DR = omega = 0``); then BitTorrent, reputation,
    and reciprocity last.
    """
    probs = table2(params)
    return sorted(probs, key=lambda a: (-probs[a], a.value))


def fairtorrent_altruism_condition(params: BootstrapParameters) -> bool:
    """Proposition 4's condition (Eq. 14) for altruism to beat FairTorrent::

        (1 - omega) (N - 1)/(n_FT - 1) <= (1 - 1/(N - 1))^(K - 1)

    When ``omega`` is large enough that this holds, FairTorrent cannot
    bootstrap faster than altruism.
    """
    lhs = (1.0 - params.omega) * (params.n_users - 1) / (params.n_ft - 1)
    rhs = (1.0 - 1.0 / (params.n_users - 1)) ** (params.pieces_per_slot - 1)
    return lhs <= rhs
