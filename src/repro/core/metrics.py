"""Fairness and efficiency metrics (Section IV-A, Eqs. 1-3, Lemma 1).

The paper measures system performance with two headline metrics:

* **Efficiency** ``E`` — the average download time over all users for a
  unit-size file, approximated from equilibrium download rates ``d_i``
  (Eq. 2)::

      E = sum_i 1 / (N * d_i)

  Lower is better (it is a *time*). Some helpers in this module also
  expose the reciprocal convention (rates) where noted.

* **Fairness** ``F`` — the mean absolute log download/upload ratio
  (Eq. 3)::

      F = (1/N) * sum_i | log(d_i / u_i) |

  ``F = 0`` iff every user downloads exactly as much as it uploads.

Lemma 1 states the fundamental tension: perfect fairness requires
``u_i = d_i`` per user, while maximum efficiency requires everyone to
upload at full capacity *and* all users to share one equal download
rate ``d_i = (sum_k U_k + u_S) / N`` — the two coincide only for
homogeneous capacities.

The module also implements the **average fairness** statistic
``(1/N) * sum_i u_i / d_i`` used in the paper's experiments
(Section V), and Jain's index as a conventional cross-check.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ModelParameterError

__all__ = [
    "validate_rates",
    "validate_capacities",
    "efficiency",
    "average_download_time",
    "per_user_fairness",
    "fairness",
    "average_fairness",
    "jain_index",
    "alpha_fair_utility",
    "optimal_download_rates",
    "optimal_efficiency",
    "check_conservation",
    "is_perfectly_fair",
]

#: Tolerance used for floating-point feasibility checks.
_EPS = 1e-9


def _as_float_array(values: Iterable[float], name: str) -> np.ndarray:
    """Convert ``values`` to a 1-D float array, validating shape."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                     dtype=float)
    if arr.ndim != 1:
        raise ModelParameterError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ModelParameterError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ModelParameterError(f"{name} must contain only finite values")
    return arr


def validate_rates(rates: Iterable[float], name: str = "rates",
                   strictly_positive: bool = False) -> np.ndarray:
    """Validate a vector of bandwidth rates and return it as an array.

    Parameters
    ----------
    rates:
        Upload or download rates, one per user.
    name:
        Used in error messages.
    strictly_positive:
        If true, zeros are rejected (needed e.g. when dividing by the
        rates to compute download times).
    """
    arr = _as_float_array(rates, name)
    if strictly_positive:
        if np.any(arr <= 0):
            raise ModelParameterError(f"{name} must be strictly positive")
    elif np.any(arr < 0):
        raise ModelParameterError(f"{name} must be non-negative")
    return arr


def validate_capacities(capacities: Iterable[float],
                        enforce_balance: bool = False) -> np.ndarray:
    """Validate an upload-capacity vector ``U`` and sort it descending.

    The paper indexes users so that ``U_1 >= U_2 >= ... >= U_N`` and
    assumes no single user owns a disproportionate share of capacity:
    ``U_i <= sum_{j != i} U_j`` for every ``i``.

    Parameters
    ----------
    capacities:
        Upload capacities, any order; returned sorted descending.
    enforce_balance:
        If true, raise :class:`ModelParameterError` when the balance
        assumption ``U_i <= sum_{j != i} U_j`` fails (it can only fail
        for the largest user).
    """
    arr = validate_rates(capacities, "capacities")
    arr = np.sort(arr)[::-1]
    if enforce_balance and arr.size > 1:
        if arr[0] > arr[1:].sum() + _EPS:
            raise ModelParameterError(
                "capacity balance violated: U_1 = %g > sum of others = %g"
                % (arr[0], arr[1:].sum())
            )
    return arr


def efficiency(download_rates: Iterable[float]) -> float:
    """Average download time ``E`` for a unit file (Eq. 2).

    ``E = sum_i 1 / (N d_i)``. A user with a zero download rate never
    finishes, so the result is ``inf`` if any rate is zero — this is
    exactly the paper's verdict on pure reciprocity.
    """
    d = validate_rates(download_rates, "download_rates")
    if np.any(d == 0):
        return math.inf
    return float(np.mean(1.0 / d))


def average_download_time(download_rates: Iterable[float],
                          file_size: float = 1.0) -> float:
    """Average time to download a file of ``file_size`` at rates ``d_i``."""
    if file_size <= 0:
        raise ModelParameterError("file_size must be positive")
    return file_size * efficiency(download_rates)


def per_user_fairness(download_rates: Iterable[float],
                      upload_rates: Iterable[float]) -> np.ndarray:
    """Per-user fairness ratios ``f_i = d_i / u_i``.

    A ratio of 1 means the user received exactly what it contributed.
    Users with ``u_i = 0`` get ``inf`` (pure consumers) unless
    ``d_i = 0`` too, in which case the ratio is defined as 1 (the user
    neither gave nor received — vacuously fair, as for reciprocity
    users in equilibrium).
    """
    d = validate_rates(download_rates, "download_rates")
    u = validate_rates(upload_rates, "upload_rates")
    if d.shape != u.shape:
        raise ModelParameterError("download and upload vectors must have equal length")
    out = np.empty_like(d)
    both_zero = (u == 0) & (d == 0)
    consumer = (u == 0) & (d > 0)
    normal = u > 0
    out[both_zero] = 1.0
    out[consumer] = math.inf
    out[normal] = d[normal] / u[normal]
    return out


def fairness(download_rates: Iterable[float],
             upload_rates: Iterable[float]) -> float:
    """System fairness ``F`` (Eq. 3): mean of ``|log(d_i/u_i)|``.

    ``F = 0`` iff ``d_i = u_i`` for all users; larger is less fair.
    Returns ``inf`` when some user is a pure consumer or pure producer
    (one of the rates is zero while the other is not).
    """
    ratios = per_user_fairness(download_rates, upload_rates)
    if np.any(np.isinf(ratios)) or np.any(ratios == 0):
        return math.inf
    return float(np.mean(np.abs(np.log(ratios))))


def average_fairness(download_rates: Iterable[float],
                     upload_rates: Iterable[float]) -> float:
    """Experimental fairness statistic ``(1/N) sum_i u_i / d_i``.

    This is the convenience measure used in Section V's experiments in
    place of ``F``; it approaches 1 as the system becomes fair. Users
    with ``d_i = 0`` and ``u_i = 0`` contribute a ratio of 1; a user
    that uploads without downloading makes the statistic ``inf``.
    """
    d = validate_rates(download_rates, "download_rates")
    u = validate_rates(upload_rates, "upload_rates")
    if d.shape != u.shape:
        raise ModelParameterError("download and upload vectors must have equal length")
    ratios = np.empty_like(d)
    both_zero = (d == 0) & (u == 0)
    producer = (d == 0) & (u > 0)
    normal = d > 0
    ratios[both_zero] = 1.0
    ratios[producer] = math.inf
    ratios[normal] = u[normal] / d[normal]
    return float(np.mean(ratios))


def alpha_fair_utility(rates: Iterable[float], alpha: float) -> float:
    """The alpha-fairness utility of an allocation (Lan et al. [35]).

    ``sum_i x_i^(1-alpha) / (1-alpha)`` for ``alpha != 1``, and
    ``sum_i log(x_i)`` at ``alpha = 1``. Corollary 1's proof uses the
    fact that Eq. 2's average download time is (up to sign and scale)
    alpha-fairness with ``alpha = 2``: maximising this utility at
    ``alpha = 2`` is exactly minimising ``sum 1/d_i``.
    """
    x = validate_rates(rates, "rates", strictly_positive=True)
    if alpha < 0:
        raise ModelParameterError("alpha must be non-negative")
    if abs(alpha - 1.0) < 1e-12:
        return float(np.sum(np.log(x)))
    return float(np.sum(np.power(x, 1.0 - alpha)) / (1.0 - alpha))


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index of a non-negative allocation vector.

    ``J = (sum x)^2 / (N * sum x^2)`` ranges from ``1/N`` (one user
    gets everything) to 1 (perfectly equal). Included as a conventional
    cross-check metric; the paper's own statistic is :func:`fairness`.
    """
    x = validate_rates(values, "values")
    total_sq = float(x.sum()) ** 2
    denom = float(x.size * np.square(x).sum())
    if denom == 0:
        return 1.0
    return total_sq / denom


def optimal_download_rates(capacities: Iterable[float],
                           seeder_rate: float = 0.0) -> np.ndarray:
    """Efficiency-optimal download rates from Lemma 1.

    Maximising efficiency subject to the conservation constraint
    (Eq. 1) gives every user the *same* rate
    ``d_i = (sum_k U_k + u_S) / N`` — the KKT solution derived in the
    appendix. No algorithm in the paper achieves this exactly.
    """
    if seeder_rate < 0:
        raise ModelParameterError("seeder_rate must be non-negative")
    caps = validate_rates(capacities, "capacities")
    rate = (float(caps.sum()) + seeder_rate) / caps.size
    return np.full(caps.size, rate)


def optimal_efficiency(capacities: Iterable[float],
                       seeder_rate: float = 0.0) -> float:
    """The minimum achievable average download time (Lemma 1)."""
    return efficiency(optimal_download_rates(capacities, seeder_rate))


def check_conservation(upload_rates: Sequence[float],
                       download_rates: Sequence[float],
                       seeder_rate: float = 0.0,
                       tol: float = 1e-6) -> bool:
    """Check the flow-conservation constraint (Eq. 1).

    Total upload (including the seeder) must equal total download:
    ``u_S + sum_i u_i == sum_i d_i``.
    """
    u = validate_rates(upload_rates, "upload_rates")
    d = validate_rates(download_rates, "download_rates")
    return bool(abs(seeder_rate + float(u.sum()) - float(d.sum())) <= tol)


def is_perfectly_fair(download_rates: Iterable[float],
                      upload_rates: Iterable[float],
                      tol: float = 1e-9) -> bool:
    """True iff ``d_i == u_i`` for every user (so ``F == 0``)."""
    d = validate_rates(download_rates, "download_rates")
    u = validate_rates(upload_rates, "upload_rates")
    if d.shape != u.shape:
        raise ModelParameterError("download and upload vectors must have equal length")
    return bool(np.all(np.abs(d - u) <= tol))
