"""Piece-availability model (Section IV-A2, Eqs. 4-8, Prop. 2, Cor. 2).

Perfect piece availability never holds in real swarms: whether user
``j`` *can* upload to user ``i`` depends on whether ``i`` still needs a
piece that ``j`` holds. Following the paper (and the file-sharing
effectiveness analysis of Qiu & Srikant [27]), we assume each user's
pieces are a uniformly random subset of the ``M`` file pieces — the
regime achieved by local-rarest-first selection — and compute, for each
algorithm, the probability that an exchange between two users is
*feasible*.

Notation: user ``i`` holds ``m_i`` pieces, user ``j`` holds ``m_j``
pieces, out of ``M`` total; ``p_l`` is the probability that a random
user holds exactly ``l`` pieces.

A note on Eq. 5: the paper prints the "needs at least one piece"
probability as ``1 - C(M - m_j, m_i - m_j) / C(M, m_j)``. With
uniformly random piece sets the subset probability is
``C(m_i, m_j) / C(M, m_j)`` (equivalently
``C(M - m_j, m_i - m_j) / C(M, m_i)``) — the printed denominator is a
typo. We implement the corrected form; it is the unique choice
consistent with the closed form of Eq. 4, which we verified reduces to
``1 - C(M - min, max - min) / C(M, max)`` exactly.

Eq. 4's product ``q(i,j) q(j,i)`` treats the two "needs" events as
independent, which fails only when ``m_i == m_j`` (the events then
coincide). The closed form on the right-hand side of Eq. 4 is the exact
joint probability in every case, so :func:`pi_direct_reciprocity` uses
it directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelParameterError

__all__ = [
    "needs_piece_probability",
    "pi_direct_reciprocity",
    "indirect_redirect_probability",
    "pi_indirect_reciprocity",
    "pi_tchain",
    "pi_bittorrent",
    "pi_altruism",
    "tchain_dominates_bittorrent_alpha_bound",
    "PieceCountDistribution",
]


def _validate_counts(M: int, *counts: int) -> None:
    if M < 1:
        raise ModelParameterError(f"M must be a positive integer, got {M}")
    for m in counts:
        if not 0 <= m <= M:
            raise ModelParameterError(
                f"piece count must lie in [0, {M}], got {m}")


def needs_piece_probability(m_needer: int, m_holder: int, M: int) -> float:
    """Probability ``q`` that one user needs at least one piece of another.

    This is Eq. 5 (with the denominator typo corrected): the
    probability that a user holding ``m_needer`` uniformly random
    pieces lacks at least one of the ``m_holder`` uniformly random
    pieces held by the other user::

        q = 1 - C(m_needer, m_holder) / C(M, m_holder)

    Edge cases fall out naturally: ``q = 0`` when the holder has no
    pieces or the needer has everything, and ``q = 1`` when
    ``m_needer < m_holder`` (pigeonhole).
    """
    _validate_counts(M, m_needer, m_holder)
    if m_holder == 0:
        return 0.0
    if m_needer < m_holder:
        return 1.0
    # math.comb(m_needer, m_holder) can be astronomically large for big
    # M; compute the ratio in log space for numerical robustness.
    log_ratio = (_log_comb(m_needer, m_holder) - _log_comb(M, m_holder))
    return float(1.0 - math.exp(log_ratio))


def _log_comb(n: int, k: int) -> float:
    """``log C(n, k)`` computed via lgamma; ``-inf`` when ``k > n``."""
    if k < 0 or k > n:
        return -math.inf
    return (math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1))


def pi_direct_reciprocity(m_i: int, m_j: int, M: int) -> float:
    """Exact probability that users ``i`` and ``j`` can exchange pieces
    with direct reciprocation (Eq. 4, closed form)::

        pi_DR = 1 - C(M - min, max - min) / C(M, max)

    Both users must need at least one of the other's pieces. The
    result is 0 whenever either user holds no pieces — a flash-crowd
    newcomer cannot engage in direct reciprocity at all.
    """
    _validate_counts(M, m_i, m_j)
    lo, hi = min(m_i, m_j), max(m_i, m_j)
    if lo == 0 or hi == 0:
        return 0.0
    log_ratio = _log_comb(M - lo, hi - lo) - _log_comb(M, hi)
    return float(1.0 - math.exp(log_ratio))


@dataclass(frozen=True)
class PieceCountDistribution:
    """Distribution ``p_l`` of per-user piece counts, ``l = 0 .. M``.

    The T-Chain exchange probability (Eq. 6) needs the distribution of
    piece counts across the swarm to evaluate the chance that a
    suitable third user exists for indirect reciprocity.
    """

    M: int
    probabilities: Sequence[float]

    def __post_init__(self) -> None:
        if self.M < 1:
            raise ModelParameterError("M must be positive")
        p = np.asarray(self.probabilities, dtype=float)
        if p.ndim != 1 or p.size != self.M + 1:
            raise ModelParameterError(
                f"probabilities must have length M + 1 = {self.M + 1}, got {p.size}")
        if np.any(p < -1e-12) or abs(float(p.sum()) - 1.0) > 1e-9:
            raise ModelParameterError("probabilities must be a distribution")
        object.__setattr__(self, "probabilities", tuple(float(x) for x in np.clip(p, 0.0, 1.0)))

    @classmethod
    def uniform(cls, M: int, include_zero: bool = True) -> "PieceCountDistribution":
        """Uniform over piece counts (0..M or 1..M)."""
        start = 0 if include_zero else 1
        p = np.zeros(M + 1)
        p[start:] = 1.0 / (M + 1 - start)
        return cls(M, p)

    @classmethod
    def degenerate(cls, M: int, count: int) -> "PieceCountDistribution":
        """Every user holds exactly ``count`` pieces."""
        p = np.zeros(M + 1)
        p[count] = 1.0
        return cls(M, p)

    @classmethod
    def binomial(cls, M: int, completion: float) -> "PieceCountDistribution":
        """Each piece held independently with probability ``completion``.

        Models a steady-state swarm whose average progress is
        ``completion``; the count distribution is Binomial(M, c).
        """
        if not 0.0 <= completion <= 1.0:
            raise ModelParameterError("completion must lie in [0, 1]")
        counts = np.arange(M + 1)
        log_p = np.array([
            _log_comb(M, int(k))
            + (k * math.log(completion) if completion > 0 else (0.0 if k == 0 else -math.inf))
            + ((M - k) * math.log1p(-completion) if completion < 1 else (0.0 if k == M else -math.inf))
            for k in counts
        ])
        p = np.exp(log_p)
        p /= p.sum()
        return cls(M, p)

    @classmethod
    def flash_crowd(cls, M: int, bootstrapped_fraction: float,
                    pieces_if_bootstrapped: int = 1) -> "PieceCountDistribution":
        """Right after a flash crowd: most users hold 0 or a few pieces."""
        if not 0.0 <= bootstrapped_fraction <= 1.0:
            raise ModelParameterError("bootstrapped_fraction must lie in [0, 1]")
        p = np.zeros(M + 1)
        p[0] = 1.0 - bootstrapped_fraction
        p[min(pieces_if_bootstrapped, M)] += bootstrapped_fraction
        return cls(M, p)

    def as_array(self) -> np.ndarray:
        return np.asarray(self.probabilities, dtype=float)

    def mean(self) -> float:
        return float(np.dot(np.arange(self.M + 1), self.as_array()))


def indirect_redirect_probability(m_j: int, distribution: PieceCountDistribution,
                                  n_users: int) -> float:
    """Probability that at least one third user can trigger indirect
    reciprocity for uploader ``j`` (the trailing factor of Eq. 6)::

        1 - (1 - sum_l p_l q(j, l) (1 - q(l, j)))^(N - 2)

    A third user ``l`` qualifies when ``j`` needs a piece from ``l``
    (``q(j, l)``) but ``l`` needs nothing from ``j`` (``1 - q(l, j)``),
    so ``l`` redirects ``j``'s reciprocation to the original receiver.
    """
    if n_users < 2:
        raise ModelParameterError("n_users must be at least 2")
    M = distribution.M
    _validate_counts(M, m_j)
    p = distribution.as_array()
    per_user = 0.0
    for l, p_l in enumerate(p):
        if p_l == 0.0:
            continue
        per_user += p_l * needs_piece_probability(m_j, l, M) * (
            1.0 - needs_piece_probability(l, m_j, M))
    per_user = min(max(per_user, 0.0), 1.0)
    return float(1.0 - (1.0 - per_user) ** (n_users - 2))


def pi_indirect_reciprocity(m_i: int, m_j: int, M: int,
                            distribution: PieceCountDistribution,
                            n_users: int) -> float:
    """Probability ``pi_IR`` that ``j`` uploads to ``i`` via *indirect*
    reciprocity (Section IV-C): ``i`` needs a piece from ``j``, ``j``
    needs nothing from ``i``, and a third user exists to redirect."""
    q_ij = needs_piece_probability(m_i, m_j, M)
    q_ji = needs_piece_probability(m_j, m_i, M)
    return q_ij * (1.0 - q_ji) * indirect_redirect_probability(
        m_j, distribution, n_users)


def pi_tchain(m_i: int, m_j: int, M: int,
              distribution: PieceCountDistribution, n_users: int) -> float:
    """T-Chain exchange feasibility (Eq. 6): direct plus indirect."""
    q_ij = needs_piece_probability(m_i, m_j, M)
    q_ji = needs_piece_probability(m_j, m_i, M)
    direct = q_ij * q_ji
    indirect = q_ij * (1.0 - q_ji) * indirect_redirect_probability(
        m_j, distribution, n_users)
    return float(min(direct + indirect, 1.0))


def pi_bittorrent(m_i: int, m_j: int, M: int, alpha_bt: float) -> float:
    """BitTorrent exchange feasibility (Eq. 7)::

        pi_BT = q(i,j) * ((1 - alpha_BT) q(j,i) + alpha_BT)

    Tit-for-tat needs mutual interest; optimistic unchoking (fraction
    ``alpha_BT``) only needs ``i`` to want something from ``j``.
    """
    if not 0.0 <= alpha_bt <= 1.0:
        raise ModelParameterError("alpha_bt must lie in [0, 1]")
    q_ij = needs_piece_probability(m_i, m_j, M)
    q_ji = needs_piece_probability(m_j, m_i, M)
    return q_ij * ((1.0 - alpha_bt) * q_ji + alpha_bt)


def pi_altruism(m_i: int, m_j: int, M: int) -> float:
    """Altruism exchange feasibility: ``i`` merely needs a piece of ``j``."""
    return needs_piece_probability(m_i, m_j, M)


def tchain_dominates_bittorrent_alpha_bound(
        m_j: int, distribution: PieceCountDistribution, n_users: int) -> float:
    """The Eq. 8 threshold on ``alpha_BT``.

    For any ``alpha_BT`` below this bound, ``pi_TC >= pi_BT``: T-Chain's
    indirect-reciprocity channel reaches more peers than BitTorrent's
    optimistic unchoking. The bound tends to 1 as ``N`` grows, so for
    large swarms T-Chain dominates for every practical ``alpha_BT``.
    """
    return indirect_redirect_probability(m_j, distribution, n_users)
