"""Re-run a crash bundle's scenario to its failure point.

The simulator is deterministic for a fixed config+seed, so the bundle's
embedded config is enough to reproduce the failure — no state snapshot
restore needed. :func:`replay` rebuilds the simulation, runs it (a few
rounds past the recorded failure round, in case the original raise
landed mid-round), and reports whether the same failure recurred.

Corruption injected *from outside* the simulation (the targeted guard
tests) obviously cannot replay from config alone; pass the same
injection via ``setup`` to reproduce those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import InvariantViolationError, SimulationStalled
from repro.guards.bundle import load_bundle

__all__ = ["ReplayResult", "replay"]


@dataclass
class ReplayResult:
    """Outcome of re-running one bundle.

    ``reproduced`` is True when the replay ended the same way the
    original run did: same failure kind, and — for violations — the
    same guard codes at the same round.
    """

    bundle_path: str
    kind: str
    reproduced: bool
    outcome: str
    round_index: Optional[int] = None
    codes: List[str] = field(default_factory=list)
    detail: Optional[str] = None
    new_bundle_path: Optional[str] = None


def replay(path: str, setup: Optional[Callable[[Any], None]] = None,
           extra_rounds: int = 2,
           bundle_dir: Optional[str] = None) -> ReplayResult:
    """Reload ``path`` and re-run its scenario to the failure point.

    Parameters
    ----------
    path:
        A bundle written by :func:`repro.guards.bundle.write_bundle`.
    setup:
        Optional hook called with the rebuilt ``Simulation`` before it
        runs — the place to re-apply an external corruption injection.
    extra_rounds:
        Slack past the recorded failure round before the replay is cut
        off (the run is capped there so a *fixed* bug terminates fast
        instead of running the original config to completion).
    bundle_dir:
        Where the replay's own bundle (if it fails again) is written;
        defaults to the original bundle's configured directory.
    """
    # Imported lazily: repro.sim.config imports repro.sim.guards, which
    # reaches back into this package for the bundle writer.
    from repro.sim.config import SimulationConfig

    payload = load_bundle(path)
    kind = payload["kind"]
    fail_round = payload.get("round_index") or 0

    config_data: Dict[str, Any] = dict(payload["config"])
    original_rounds = int(config_data.get("max_rounds", fail_round))
    # Cap the replay just past the failure point — but never below the
    # config-validation floors (the flash crowd must fully arrive, at
    # least one sample must land), and never by touching the arrival
    # parameters themselves: those feed the RNG, and changing them
    # would replay a different run.
    floor = max(1, int(config_data.get("sample_interval", 1)))
    if config_data.get("arrival_process", "flash") == "flash":
        floor = max(floor, -int(-float(
            config_data.get("flash_crowd_duration", 0.0)) // 1))
    config_data["max_rounds"] = min(original_rounds,
                                    max(fail_round + extra_rounds, floor))
    if bundle_dir is not None:
        guards = dict(config_data.get("guards") or {})
        guards["bundle_dir"] = bundle_dir
        config_data["guards"] = guards
    config = SimulationConfig.from_dict(config_data)

    from repro.sim.runner import Simulation
    sim = Simulation(config)
    if setup is not None:
        setup(sim)

    expected_codes = sorted({v["code"] for v in payload["violations"]})
    try:
        result = sim.run()
    except InvariantViolationError as exc:
        codes = sorted({v.code for v in exc.violations})
        round_index = exc.violations[0].round_index if exc.violations else None
        return ReplayResult(
            bundle_path=path, kind=kind, outcome="violation",
            reproduced=(kind == "violation" and codes == expected_codes
                        and round_index == fail_round),
            round_index=round_index, codes=codes, detail=str(exc),
            new_bundle_path=exc.bundle_path)
    except SimulationStalled as exc:
        stalled_round = (exc.stall or {}).get("round_index")
        return ReplayResult(
            bundle_path=path, kind=kind, outcome="stall",
            reproduced=(kind == "stall"), round_index=stalled_round,
            detail=str(exc), new_bundle_path=exc.bundle_path)
    except Exception as exc:
        recorded = payload.get("error") or {}
        return ReplayResult(
            bundle_path=path, kind=kind, outcome="exception",
            reproduced=(kind == "exception"
                        and type(exc).__name__ == recorded.get("type")),
            detail=f"{type(exc).__name__}: {exc}",
            new_bundle_path=getattr(exc, "bundle_path", None))

    if result.metrics.degraded:
        stalled_round = (result.metrics.stall or {}).get("round_index")
        return ReplayResult(
            bundle_path=path, kind=kind, outcome="stall",
            reproduced=(kind == "stall"), round_index=stalled_round,
            detail="watchdog degraded the replay",
            new_bundle_path=result.metrics.bundle_path)
    return ReplayResult(bundle_path=path, kind=kind, outcome="clean",
                        reproduced=False,
                        round_index=result.metrics.rounds_run,
                        detail="replay completed without failing")
