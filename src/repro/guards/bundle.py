"""Crash-forensics bundles: self-contained snapshots of a failing run.

A bundle is one JSON file written atomically (tmp file + ``os.replace``)
the moment a guard fires — invariant violation, watchdog stall, or an
unhandled exception escaping the runner. It carries everything needed
to understand *and re-run* the failure on another machine: the full
config (plus its fingerprint), the seed, the engine clock and upcoming
event queue, per-peer state summaries, the recent transfer log, and
the violation/stall/error report itself. :mod:`repro.guards.replay`
turns a bundle back into a simulation.
"""

from __future__ import annotations

import json
import os
import traceback as _traceback
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.guards import GuardRuntime, InvariantViolation
    from repro.sim.runner import Simulation

__all__ = ["BUNDLE_VERSION", "write_bundle", "load_bundle",
           "config_fingerprint"]

BUNDLE_VERSION = 1

#: Default directory (under the working directory) when the guard
#: config does not name one.
DEFAULT_BUNDLE_DIR = "crash-bundles"


def config_fingerprint(config) -> str:
    """A stable human-diffable fingerprint of a simulation config.

    ``repr`` of the frozen dataclass tree: byte-identical for equal
    configs, and readable enough to eyeball what differs between two
    bundles. (The sweep journal uses the same convention.)
    """
    return repr(config)


def _peer_summary(peer) -> Dict[str, Any]:
    return {
        "peer_id": peer.peer_id,
        "lineage_id": peer.lineage_id,
        "capacity": peer.capacity,
        "is_seeder": peer.is_seeder,
        "is_freerider": peer.is_freerider,
        "departed": peer.departed,
        "arrival_time": peer.arrival_time,
        "bootstrap_time": peer.bootstrap_time,
        "completion_time": peer.completion_time,
        "pieces_held": len(peer.pieces),
        "pending": sorted(peer.pending),
        "total_uploaded": peer.total_uploaded,
        "total_downloaded": peer.total_downloaded,
        "total_received_raw": peer.total_received_raw,
        "offline_until": peer.offline_until,
    }


def _build_payload(sim: "Simulation", kind: str,
                   guards: Optional["GuardRuntime"],
                   violations: Optional[List["InvariantViolation"]],
                   stall: Optional[Dict[str, Any]],
                   error: Optional[BaseException]) -> Dict[str, Any]:
    config = sim.config
    engine = sim.engine
    peers = [_peer_summary(p) for p in sim._seeders]
    peers += [_peer_summary(p) for p in sim._all_peers]
    payload: Dict[str, Any] = {
        "bundle_version": BUNDLE_VERSION,
        "kind": kind,
        "algorithm": config.algorithm.value,
        "seed": config.seed,
        "config_fingerprint": config_fingerprint(config),
        "config": config.to_dict(),
        "engine": {
            "now": engine.now,
            "events_fired": engine.events_fired,
            "pending_events": engine.pending,
            "queue_tail": [list(entry) for entry in engine.upcoming(16)],
        },
        "round_index": sim.round_index,
        "violations": [v.to_dict() for v in violations or []],
        "stall": stall,
        "error": None,
        "peers": peers,
        "recent_transfers": list(guards.recent_transfers) if guards else [],
        "metrics": {
            "total_uploaded": sim.collector.total_uploaded_so_far,
            "peer_uploaded": sim.collector.peer_uploaded_so_far,
            "freerider_received": sim.collector.freerider_received_so_far,
            "samples_taken": len(sim.collector.metrics.samples),
        },
    }
    if error is not None:
        payload["error"] = {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": "".join(_traceback.format_exception(
                type(error), error, error.__traceback__)),
        }
    return payload


def write_bundle(sim: "Simulation", kind: str,
                 guards: Optional["GuardRuntime"] = None,
                 violations: Optional[List["InvariantViolation"]] = None,
                 stall: Optional[Dict[str, Any]] = None,
                 error: Optional[BaseException] = None) -> str:
    """Atomically write one crash bundle; returns its path.

    ``kind`` is ``"violation"``, ``"stall"``, or ``"exception"``. The
    write goes to a temp file in the target directory first and is
    published with ``os.replace``, so a bundle either exists complete
    or not at all — a crash mid-dump never leaves a half-written JSON
    for the replay tooling to choke on.
    """
    bundle_dir = None
    if guards is not None:
        bundle_dir = guards.config.bundle_dir
    if bundle_dir is None:
        bundle_dir = DEFAULT_BUNDLE_DIR
    os.makedirs(bundle_dir, exist_ok=True)

    payload = _build_payload(sim, kind, guards, violations, stall, error)
    stem = (f"bundle-{kind}-{sim.config.algorithm.value}"
            f"-seed{sim.config.seed}-r{sim.round_index}")
    path = os.path.join(bundle_dir, f"{stem}.json")
    counter = 1
    while os.path.exists(path):
        path = os.path.join(bundle_dir, f"{stem}-{counter}.json")
        counter += 1

    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=repr)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def load_bundle(path: str) -> Dict[str, Any]:
    """Load a bundle written by :func:`write_bundle`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("bundle_version")
    if version != BUNDLE_VERSION:
        raise ValueError(
            f"unsupported bundle version {version!r} in {path} "
            f"(this build reads version {BUNDLE_VERSION})")
    return payload
