"""Crash forensics: bundle writer/loader and the replay helper.

The runtime checks themselves live in :mod:`repro.sim.guards`; this
package owns what happens *after* one fires — persisting a
self-contained crash bundle and re-running it to the failure point.
"""

from repro.guards.bundle import (  # noqa: F401
    BUNDLE_VERSION,
    config_fingerprint,
    load_bundle,
    write_bundle,
)
from repro.guards.replay import ReplayResult, replay  # noqa: F401

__all__ = [
    "BUNDLE_VERSION",
    "ReplayResult",
    "config_fingerprint",
    "load_bundle",
    "replay",
    "write_bundle",
]
