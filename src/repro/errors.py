"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class. Subclasses distinguish the three
broad failure modes: invalid model parameters (analytical layer),
invalid simulation configuration, and runtime protocol violations
inside a running simulation.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelParameterError",
    "ConfigurationError",
    "BackendFallbackError",
    "SimulationError",
    "ProtocolViolationError",
    "InvariantViolationError",
    "SimulationStalled",
    "UnknownAlgorithmError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelParameterError(ReproError, ValueError):
    """An analytical-model function received an invalid parameter.

    Examples: a negative user count, a probability outside ``[0, 1]``,
    or an upload-capacity vector violating the paper's standing
    assumption ``U_i <= sum_{j != i} U_j``.
    """


class ConfigurationError(ReproError, ValueError):
    """A simulation or experiment configuration is inconsistent."""


class BackendFallbackError(ConfigurationError):
    """A vector-backend run would fall back to the object engine.

    Raised by :func:`repro.sim.runner.run_simulation` when the
    requested backend does not support the configuration *and* the
    config's ``backend_fallback`` policy is ``"error"``: the caller
    asked for vector speed, would not get it, and chose to be told
    loudly instead of silently paying the slow path.
    """


class SimulationError(ReproError, RuntimeError):
    """A running simulation entered an invalid state."""


class ProtocolViolationError(SimulationError):
    """A peer attempted an action its exchange protocol forbids.

    Raised, for instance, when a transfer is recorded for a piece the
    uploader does not hold, or a T-Chain key is released for an
    exchange that was never initiated.
    """


class InvariantViolationError(SimulationError):
    """A runtime invariant guard detected corrupted simulation state.

    Raised by :class:`repro.sim.guards.GuardRuntime` when one of its
    read-only checks fails. ``violations`` holds the structured
    :class:`repro.sim.guards.InvariantViolation` records (code,
    sim-time, peers involved, evidence); ``bundle_path`` points at the
    crash-forensics bundle written before raising, and is embedded in
    the message as ``[bundle: <path>]`` so the path survives
    stringification across process boundaries (sweep workers ship
    errors as strings).
    """

    def __init__(self, message: str, violations: tuple = (),
                 bundle_path=None) -> None:
        if bundle_path:
            message = f"{message} [bundle: {bundle_path}]"
        super().__init__(message)
        self.violations = tuple(violations)
        self.bundle_path = bundle_path


class SimulationStalled(SimulationError):
    """The progress watchdog detected a livelocked swarm.

    No piece completed across the configured sim-time window while
    downloaders remained active. Raised only under
    ``watchdog_action="raise"``; the default ``"degrade"`` mode
    finalizes the run with partial metrics flagged ``degraded=True``
    instead. ``stall`` is the watchdog's evidence dict and
    ``bundle_path`` the forensics bundle (also embedded in the message
    as ``[bundle: <path>]``).
    """

    def __init__(self, message: str, stall=None, bundle_path=None) -> None:
        if bundle_path:
            message = f"{message} [bundle: {bundle_path}]"
        super().__init__(message)
        self.stall = stall
        self.bundle_path = bundle_path


class UnknownAlgorithmError(ReproError, KeyError):
    """An algorithm name was not found in the strategy registry."""
