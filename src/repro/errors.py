"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class. Subclasses distinguish the three
broad failure modes: invalid model parameters (analytical layer),
invalid simulation configuration, and runtime protocol violations
inside a running simulation.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelParameterError",
    "ConfigurationError",
    "SimulationError",
    "ProtocolViolationError",
    "UnknownAlgorithmError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelParameterError(ReproError, ValueError):
    """An analytical-model function received an invalid parameter.

    Examples: a negative user count, a probability outside ``[0, 1]``,
    or an upload-capacity vector violating the paper's standing
    assumption ``U_i <= sum_{j != i} U_j``.
    """


class ConfigurationError(ReproError, ValueError):
    """A simulation or experiment configuration is inconsistent."""


class SimulationError(ReproError, RuntimeError):
    """A running simulation entered an invalid state."""


class ProtocolViolationError(SimulationError):
    """A peer attempted an action its exchange protocol forbids.

    Raised, for instance, when a transfer is recorded for a piece the
    uploader does not hold, or a T-Chain key is released for an
    exchange that was never initiated.
    """


class UnknownAlgorithmError(ReproError, KeyError):
    """An algorithm name was not found in the strategy registry."""
