"""Parent-side fabric dispatcher: remote hosts as failure domains.

:class:`FabricBackend` is a drop-in dispatch backend for
:func:`repro.experiments.replicates.run_resilient_sweep` (the same
``run(specs, *, timeout, on_result)`` contract as
:class:`repro.experiments.executor.LocalPoolBackend`) that fans a task
batch out over runner agents (:mod:`repro.dist.agent`) instead of local
worker processes. Its failure model treats every agent as a domain
that can vanish whole:

* **liveness by deadline**: every message (heartbeats included)
  refreshes a per-host ``last_seen``; a host silent for
  ``heartbeat_interval * liveness_misses`` seconds is declared dead
  even if the TCP connection still looks open;
* **re-dispatch without attempt loss**: tasks in flight on a dead host
  re-enter the queue *at the same attempt number* — a host failure is
  not the task's fault, and charging it an attempt would change the
  retry seed (and therefore the canonical digest) based on which host
  happened to die. Task-level failures reported by a live agent
  (exception, slot-worker death, timeout) consume attempts exactly as
  the local pool does;
* **reconnect with exponential backoff and bounded deterministic
  jitter**: connection attempts to a flaky host spread out up to
  ``reconnect_cap`` seconds (jitter keyed on host and failure count,
  so two dispatchers never need a shared RNG), and a host that fails
  ``max_reconnects`` consecutive attempts is abandoned for the run;
* **graceful degradation**: if fewer than ``min_agents`` hosts answer
  the initial handshake — or every host is eventually abandoned
  mid-sweep — the remaining work runs on the local persistent worker
  pool (``local_fallback``), preserving attempt numbering so the
  result digest is unchanged. Passing ``local_fallback=None`` turns
  degradation into :class:`AgentUnreachableError` instead.

Results are delivered in submission order (``on_result`` fires as the
finished prefix grows), so the sweep journal stays a single-writer,
canonical-order artifact no matter how many hosts, disconnects, or
fallbacks the run saw.
"""

from __future__ import annotations

import os
import re
import select
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dist import protocol
from repro.experiments.executor import (ExecutionReport, LocalPoolBackend,
                                        PoolStats, TaskResult, TaskSpec,
                                        TaskTelemetry)

__all__ = ["HostSpec", "parse_hosts", "FabricStats", "FabricBackend",
           "AgentUnreachableError", "run_distributed_tasks"]

#: Idle poll ceiling (seconds) of the dispatch loop.
_POLL_CEILING_S = 0.25


class AgentUnreachableError(RuntimeError):
    """Too few agents answered and local fallback was disabled."""

    def __init__(self, message: str, *, hosts: Sequence[str],
                 reachable: int) -> None:
        super().__init__(message)
        self.hosts = tuple(hosts)
        self.reachable = reachable


@dataclass(frozen=True)
class HostSpec:
    """One agent endpoint."""

    host: str
    port: int

    @property
    def label(self) -> str:
        return f"{self.host}:{self.port}"

    @staticmethod
    def parse(text: str) -> "HostSpec":
        host, sep, port = text.strip().rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"host spec {text!r} is not of the form host:port")
        try:
            return HostSpec(host=host, port=int(port))
        except ValueError as exc:
            raise ValueError(
                f"host spec {text!r} has a non-integer port") from exc


def parse_hosts(spec) -> Tuple[HostSpec, ...]:
    """``"h1:7071,h2:7071"`` (or any iterable of such strings /
    :class:`HostSpec`) -> tuple of :class:`HostSpec`."""
    if isinstance(spec, (str, HostSpec)):
        spec = [spec]
    hosts: List[HostSpec] = []
    for item in spec:
        if isinstance(item, HostSpec):
            hosts.append(item)
            continue
        for part in str(item).split(","):
            part = part.strip()
            if part:
                hosts.append(HostSpec.parse(part))
    if not hosts:
        raise ValueError("need at least one agent host")
    return tuple(hosts)


@dataclass
class FabricStats(PoolStats):
    """Engine telemetry of a distributed batch.

    Extends the local pool's counters with fabric-level gauges: the
    ``hosts`` mapping carries one counter dict per agent (dispatched /
    ok / errors / redispatched / disconnects / reconnects /
    connect_failures / backoff_s / heartbeats / bundles / slots) — the
    per-host view the obs dashboards and the sweep journal's summary
    record surface.
    """

    agents_connected: int = 0
    agents_lost: int = 0
    agents_abandoned: int = 0
    reconnects: int = 0
    connect_failures: int = 0
    redispatches: int = 0
    fallback_tasks: int = 0
    connect_backoff_s: float = 0.0
    bundles_shipped: int = 0
    hosts: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        payload = super().as_dict()
        payload.update({
            "agents_connected": self.agents_connected,
            "agents_lost": self.agents_lost,
            "agents_abandoned": self.agents_abandoned,
            "reconnects": self.reconnects,
            "connect_failures": self.connect_failures,
            "redispatches": self.redispatches,
            "fallback_tasks": self.fallback_tasks,
            "connect_backoff_s": self.connect_backoff_s,
            "bundles_shipped": self.bundles_shipped,
            "hosts": {label: dict(counters)
                      for label, counters in self.hosts.items()},
        })
        return payload


@dataclass
class _InFlight:
    index: int
    attempt: int
    enqueued_at: float
    dispatched_at: float
    deadline: Optional[float]


class _Link:
    """Dispatcher-side state of one agent endpoint."""

    def __init__(self, spec: HostSpec) -> None:
        self.spec = spec
        self.label = spec.label
        self.sock: Optional[socket.socket] = None
        self.slots = 0
        self.inflight: Dict[int, _InFlight] = {}
        self.last_seen = 0.0
        self.failures = 0          # consecutive failed connect attempts
        self.next_connect_at = 0.0
        self.abandoned = False
        self.last_error: Optional[str] = None

    @property
    def connected(self) -> bool:
        return self.sock is not None

    @property
    def free_slots(self) -> int:
        return self.slots - len(self.inflight)


class _FabricEngine:
    def __init__(self, specs: Sequence[TaskSpec], hosts: Sequence[HostSpec],
                 *, timeout: Optional[float],
                 on_result: Optional[Callable[[TaskResult], None]],
                 local_fallback: Optional[LocalPoolBackend],
                 min_agents: int, heartbeat_interval: float,
                 liveness_misses: float, connect_timeout: float,
                 reconnect_base: float, reconnect_cap: float,
                 max_reconnects: int, recv_timeout: float,
                 bundle_dir: str) -> None:
        self.specs = list(specs)
        self.links = [_Link(spec) for spec in hosts]
        self.timeout = timeout
        self.on_result = on_result
        self.local_fallback = local_fallback
        self.min_agents = min_agents
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = heartbeat_interval * liveness_misses
        self.connect_timeout = connect_timeout
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        self.max_reconnects = max_reconnects
        self.recv_timeout = recv_timeout
        self.bundle_dir = bundle_dir
        #: Dispatcher-side task deadline slack over the agent's own
        #: enforcement: covers network latency plus one heartbeat gap.
        self.deadline_grace = max(2.0 * heartbeat_interval, 2.0)
        self.stats = FabricStats(jobs=0)
        self.clock = time.monotonic
        now = self.clock()
        self.results: List[Optional[TaskResult]] = [None] * len(self.specs)
        #: Runnable queue: ``(index, attempt, enqueued_at)``.
        self.pending = [(i, 1, now) for i in range(len(self.specs))]
        #: Backoff-delayed retries: ``(ready_at, index, attempt)``.
        self.delayed: List[Tuple[float, int, int]] = []
        self.last_error: Dict[int, str] = {}
        self.n_done = 0
        self.emit_cursor = 0
        self.next_task_id = 0

    # -- host bookkeeping ------------------------------------------------

    def _host(self, label: str) -> Dict[str, Any]:
        return self.stats.hosts.setdefault(label, {
            "dispatched": 0, "ok": 0, "errors": 0, "redispatched": 0,
            "disconnects": 0, "reconnects": 0, "connect_failures": 0,
            "backoff_s": 0.0, "heartbeats": 0, "bundles": 0, "slots": 0})

    # -- connection management -------------------------------------------

    def _try_connect(self, link: _Link) -> bool:
        """One connect + handshake attempt; schedules backoff on failure."""
        try:
            sock = socket.create_connection(
                (link.spec.host, link.spec.port),
                timeout=self.connect_timeout)
        except OSError as exc:
            link.last_error = f"{type(exc).__name__}: {exc}"
            self._connect_failed(link)
            return False
        try:
            sock.settimeout(self.connect_timeout)
            protocol.send_msg(sock, protocol.hello())
            welcome = protocol.recv_msg(sock)
            if welcome.get("t") == "error":
                raise protocol.ProtocolError(welcome.get("error"))
            protocol.expect(welcome, "welcome")
            if welcome.get("version") != protocol.PROTOCOL_VERSION:
                raise protocol.ProtocolError(
                    f"protocol version mismatch: dispatcher "
                    f"{protocol.PROTOCOL_VERSION}, agent "
                    f"{welcome.get('version')}")
            protocol.send_msg(sock, {"t": "getready"})
            while True:
                reply = protocol.recv_msg(sock)
                if reply.get("t") == "heartbeat":
                    continue  # the agent heartbeats from session start
                ready = protocol.expect(reply, "ready")
                break
        except (protocol.ProtocolError, OSError) as exc:
            link.last_error = f"{type(exc).__name__}: {exc}"
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            self._connect_failed(link)
            return False
        sock.settimeout(self.recv_timeout)
        was_lost = link.failures > 0
        link.sock = sock
        link.slots = max(1, int(ready.get("slots", 1)))
        link.failures = 0
        link.last_seen = self.clock()
        host = self._host(link.label)
        host["slots"] = link.slots
        self.stats.agents_connected += 1
        if was_lost:
            self.stats.reconnects += 1
            host["reconnects"] += 1
        total_slots = sum(lk.slots for lk in self.links if lk.connected)
        self.stats.jobs = max(self.stats.jobs, total_slots)
        return True

    def _connect_failed(self, link: _Link) -> None:
        link.failures += 1
        self.stats.connect_failures += 1
        self._host(link.label)["connect_failures"] += 1
        if link.failures > self.max_reconnects:
            link.abandoned = True
            self.stats.agents_abandoned += 1
            return
        delay = protocol.backoff_delay(
            link.failures, base=self.reconnect_base, cap=self.reconnect_cap,
            token=f"{link.label}|{link.failures}")
        link.next_connect_at = self.clock() + delay
        self.stats.connect_backoff_s += delay
        self._host(link.label)["backoff_s"] += delay

    def _link_lost(self, link: _Link, reason: str) -> None:
        """Declare a host dead: close it, requeue its in-flight tasks
        at their *current* attempt, schedule a reconnect."""
        if link.sock is not None:
            try:
                link.sock.close()
            except OSError:  # pragma: no cover
                pass
        link.sock = None
        link.last_error = reason
        self.stats.agents_lost += 1
        host = self._host(link.label)
        host["disconnects"] += 1
        if link.inflight:
            now = self.clock()
            requeued = sorted(link.inflight.values(), key=lambda r: r.index)
            # Front of the queue: these tasks already waited their turn.
            self.pending[:0] = [(r.index, r.attempt, now) for r in requeued]
            self.stats.redispatches += len(requeued)
            host["redispatched"] += len(requeued)
            link.inflight.clear()
        self._connect_failed(link)

    def _ensure_connections(self) -> None:
        now = self.clock()
        for link in self.links:
            if (link.connected or link.abandoned
                    or now < link.next_connect_at):
                continue
            self._try_connect(link)

    # -- task flow -------------------------------------------------------

    def _promote_delayed(self) -> None:
        now = self.clock()
        matured = [entry for entry in self.delayed if entry[0] <= now]
        if matured:
            self.delayed = [e for e in self.delayed if e[0] > now]
            self.pending.extend((index, attempt, now)
                                for _, index, attempt in sorted(matured))

    def _dispatch(self) -> None:
        self._promote_delayed()
        if not self.pending:
            return
        for link in self.links:
            if not link.connected:
                continue
            while link.free_slots > 0 and self.pending:
                index, attempt, enqueued_at = self.pending.pop(0)
                spec = self.specs[index]
                task_id = self.next_task_id
                self.next_task_id += 1
                now = self.clock()
                try:
                    protocol.send_msg(link.sock, {
                        "t": "start", "task_id": task_id,
                        "fn": spec.fn, "args": spec.args_for(attempt),
                        "timeout": self.timeout})
                except Exception as exc:
                    # Put the task back first so _link_lost requeues a
                    # consistent picture, then declare the host dead.
                    self.pending.insert(0, (index, attempt, enqueued_at))
                    self._link_lost(
                        link, f"send failed: {type(exc).__name__}: {exc}")
                    break
                deadline = (None if self.timeout is None
                            else now + self.timeout + self.deadline_grace)
                link.inflight[task_id] = _InFlight(
                    index=index, attempt=attempt, enqueued_at=enqueued_at,
                    dispatched_at=now, deadline=deadline)
                self._host(link.label)["dispatched"] += 1
            if not self.pending:
                return

    def _attempt_failed(self, index: int, attempt: int, host: Optional[str],
                        error: str, wall_s: float,
                        queue_wait_s: float) -> None:
        self.last_error[index] = error
        spec = self.specs[index]
        if attempt < spec.max_attempts:
            self.stats.retries += 1
            now = self.clock()
            delay = spec.delay_for(attempt + 1)
            if delay > 0.0:
                self.stats.retry_backoff_s += delay
                self.delayed.append((now + delay, index, attempt + 1))
            else:
                self.pending.append((index, attempt + 1, now))
            return
        self._finalize(index, TaskResult(
            key=spec.key, status="failed", value=None, error=error,
            attempts=attempt,
            telemetry=TaskTelemetry(worker=None, wall_s=wall_s,
                                    queue_wait_s=queue_wait_s,
                                    attempts=attempt, last_error=error,
                                    host=host)))

    def _finalize(self, index: int, result: TaskResult) -> None:
        self.results[index] = result
        self.n_done += 1
        if result.ok:
            self.stats.tasks_ok += 1
        else:
            self.stats.tasks_failed += 1
        if self.on_result is not None:
            while (self.emit_cursor < len(self.results)
                   and self.results[self.emit_cursor] is not None):
                self.on_result(self.results[self.emit_cursor])
                self.emit_cursor += 1

    # -- incoming messages -----------------------------------------------

    def _handle_message(self, link: _Link, message: Dict[str, Any]) -> None:
        link.last_seen = self.clock()
        kind = message.get("t")
        if kind == "heartbeat":
            self._host(link.label)["heartbeats"] += 1
            return
        if kind != "result":
            return  # unknown chatter: liveness signal only
        running = link.inflight.pop(message["task_id"], None)
        if running is None:
            return  # task already re-dispatched or deadline-expired
        wall_s = float(message.get("wall_s", 0.0))
        self.stats.busy_s += wall_s
        queue_wait = running.dispatched_at - running.enqueued_at
        host = self._host(link.label)
        bundle_path = self._store_bundle(link, message.get("bundle"))
        if message["status"] == "ok":
            host["ok"] += 1
            spec = self.specs[running.index]
            value = message.get("value")
            if bundle_path is not None:
                _rehome_value_bundle(value, bundle_path)
            self._finalize(running.index, TaskResult(
                key=spec.key, status="ok", value=value, error=None,
                attempts=running.attempt,
                telemetry=TaskTelemetry(
                    worker=None, wall_s=wall_s, queue_wait_s=queue_wait,
                    result_bytes=message.get("result_bytes"),
                    attempts=running.attempt,
                    last_error=self.last_error.get(running.index),
                    host=link.label)))
            return
        error = message.get("error") or "agent reported failure"
        if bundle_path is not None:
            error = _rehome_error_bundle(error, bundle_path)
        host["errors"] += 1
        if error.startswith("timeout after "):
            self.stats.timeouts += 1
        elif "worker process died" in error:
            self.stats.worker_crashes += 1
        self._attempt_failed(running.index, running.attempt, link.label,
                             error, wall_s=wall_s, queue_wait_s=queue_wait)

    def _store_bundle(self, link: _Link,
                      bundle: Optional[Dict[str, Any]]) -> Optional[str]:
        """Persist a shipped crash bundle under the local bundle dir."""
        if not bundle or not bundle.get("data"):
            return None
        try:
            os.makedirs(self.bundle_dir, exist_ok=True)
            safe_host = link.label.replace(":", "-").replace("/", "-")
            base = f"{safe_host}-{os.path.basename(bundle['name'])}"
            path = os.path.join(self.bundle_dir, base)
            counter = 1
            while os.path.exists(path):
                path = os.path.join(self.bundle_dir,
                                    f"{counter}-{base}")
                counter += 1
            with open(path, "wb") as handle:
                handle.write(bundle["data"])
        except OSError:
            return None
        self.stats.bundles_shipped += 1
        self._host(link.label)["bundles"] += 1
        return path

    # -- deadlines -------------------------------------------------------

    def _enforce_deadlines(self) -> None:
        now = self.clock()
        for link in self.links:
            if not link.connected:
                continue
            if now - link.last_seen > self.liveness_timeout:
                self._link_lost(
                    link, f"liveness deadline missed "
                          f"(silent for {now - link.last_seen:.1f}s)")
                continue
            expired = [task_id for task_id, run in link.inflight.items()
                       if run.deadline is not None and now > run.deadline]
            for task_id in expired:
                running = link.inflight.pop(task_id)
                self.stats.timeouts += 1
                self._attempt_failed(
                    running.index, running.attempt, link.label,
                    f"timeout after {self.timeout}s",
                    wall_s=now - running.dispatched_at,
                    queue_wait_s=(running.dispatched_at
                                  - running.enqueued_at))

    def _poll_interval(self) -> float:
        now = self.clock()
        wakeups = [now + _POLL_CEILING_S]
        for link in self.links:
            if link.connected:
                wakeups.append(link.last_seen + self.liveness_timeout)
                wakeups.extend(r.deadline for r in link.inflight.values()
                               if r.deadline is not None)
            elif not link.abandoned:
                wakeups.append(link.next_connect_at)
        if self.delayed:
            wakeups.append(min(e[0] for e in self.delayed))
        return max(0.0, min(wakeups) - now)

    # -- degradation -----------------------------------------------------

    def _usable_links(self) -> int:
        return sum(1 for link in self.links if not link.abandoned)

    def _fallback_remaining(self) -> None:
        """Run every unfinished task on the local pool, preserving the
        attempt numbers already consumed on the fabric."""
        self._promote_delayed()
        self.pending.extend((index, attempt, self.clock())
                            for _, index, attempt in self.delayed)
        self.delayed = []
        remaining = sorted(self.pending)
        self.pending = []
        if not remaining:
            return
        self.stats.fallback_tasks += len(remaining)
        local_specs = []
        offsets: Dict[int, int] = {}
        for index, attempt, _enqueued in remaining:
            spec = self.specs[index]
            consumed = attempt - 1
            offsets[index] = consumed
            retry_delay = None
            if spec.retry_delay is not None and consumed:
                retry_delay = (lambda a, spec=spec, consumed=consumed:
                               spec.retry_delay(a + consumed))
            else:
                retry_delay = spec.retry_delay
            local_specs.append(TaskSpec(
                key=index, fn=spec.fn,
                args=(lambda a, spec=spec, consumed=consumed:
                      spec.args_for(a + consumed)),
                max_attempts=spec.max_attempts - consumed,
                retry_delay=retry_delay))

        def _on_local(result: TaskResult) -> None:
            index = result.key
            consumed = offsets[index]
            spec = self.specs[index]
            attempts = consumed + result.attempts
            telemetry = result.telemetry
            self._finalize(index, TaskResult(
                key=spec.key, status=result.status, value=result.value,
                error=result.error, attempts=attempts,
                telemetry=TaskTelemetry(
                    worker=telemetry.worker, wall_s=telemetry.wall_s,
                    queue_wait_s=telemetry.queue_wait_s,
                    result_bytes=telemetry.result_bytes,
                    attempts=attempts,
                    last_error=(telemetry.last_error
                                or self.last_error.get(index)),
                    host=None)))

        backend = self.local_fallback or LocalPoolBackend()
        report = backend.run(local_specs, timeout=self.timeout,
                             on_result=_on_local)
        pool = report.stats
        self.stats.jobs = max(self.stats.jobs, pool.jobs)
        self.stats.busy_s += pool.busy_s
        self.stats.retries += pool.retries
        self.stats.retry_backoff_s += pool.retry_backoff_s
        self.stats.workers_spawned += pool.workers_spawned
        self.stats.workers_recycled += pool.workers_recycled
        self.stats.worker_crashes += pool.worker_crashes
        self.stats.timeouts += pool.timeouts

    # -- main loop -------------------------------------------------------

    def run(self) -> ExecutionReport:
        start = self.clock()
        try:
            for link in self.links:
                self._try_connect(link)
            reachable = sum(1 for link in self.links if link.connected)
            if reachable < self.min_agents:
                labels = [link.label for link in self.links]
                errors = "; ".join(
                    f"{link.label}: {link.last_error}"
                    for link in self.links if link.last_error)
                if self.local_fallback is None:
                    raise AgentUnreachableError(
                        f"only {reachable} of {len(self.links)} agents "
                        f"reachable (need {self.min_agents}) and local "
                        f"fallback is disabled — {errors or 'no detail'}",
                        hosts=labels, reachable=reachable)
                self._close_links()
                self._fallback_remaining()
                return self._report(start)
            while self.n_done < len(self.specs):
                self._ensure_connections()
                if self._usable_links() == 0:
                    # Every host abandoned mid-sweep: degrade.
                    if self.local_fallback is None:
                        labels = [link.label for link in self.links]
                        raise AgentUnreachableError(
                            "every agent was abandoned mid-sweep and "
                            "local fallback is disabled",
                            hosts=labels, reachable=0)
                    self._fallback_remaining()
                    break
                self._dispatch()
                socks = {link.sock: link for link in self.links
                         if link.connected}
                if socks:
                    readable, _, _ = select.select(
                        list(socks), [], [], self._poll_interval())
                    for sock in readable:
                        link = socks[sock]
                        if link.sock is not sock:
                            continue  # lost earlier in this iteration
                        try:
                            message = protocol.recv_msg(sock)
                        except (protocol.ProtocolError, OSError) as exc:
                            self._link_lost(
                                link,
                                f"recv failed: {type(exc).__name__}: {exc}")
                            continue
                        self._handle_message(link, message)
                else:
                    time.sleep(min(_POLL_CEILING_S,
                                   max(0.01, self._poll_interval())))
                self._enforce_deadlines()
        finally:
            self._close_links()
            self.stats.wall_s = self.clock() - start
        return self._report(start)

    def _report(self, start: float) -> ExecutionReport:
        self.stats.wall_s = self.clock() - start
        self.stats.jobs = max(self.stats.jobs, 1)
        return ExecutionReport(results=tuple(self.results),
                               stats=self.stats)

    def _close_links(self) -> None:
        for link in self.links:
            if link.sock is None:
                continue
            try:
                protocol.send_msg(link.sock, {"t": "stop"})
            except (protocol.ProtocolError, OSError):
                pass
            try:
                link.sock.close()
            except OSError:  # pragma: no cover
                pass
            link.sock = None


def _rehome_value_bundle(value: Any, local_path: str) -> None:
    """Point a shipped result's ``bundle_path`` at the local copy."""
    try:
        value.bundle_path = local_path
    except Exception:
        try:
            object.__setattr__(value, "bundle_path", local_path)
        except Exception:
            pass


def _rehome_error_bundle(error: str, local_path: str) -> str:
    """Rewrite ``[bundle: remote-path]`` to the locally shipped copy.

    Worker tracebacks repeat the exception message (head line plus the
    traceback's final line), so every occurrence of the shipped path is
    rewritten — keyed on the first match, which is what the agent read.
    """
    match = re.search(r"\[bundle: ([^\]]+)\]", error)
    if match is None:
        return error
    remote = match.group(1)
    return error.replace(f"[bundle: {remote}]",
                         f"[bundle: {local_path}]")


class FabricBackend:
    """Dispatch backend over remote agents, with local degradation.

    Same ``run`` contract as :class:`LocalPoolBackend`; construct with
    the host list and failure-model knobs documented on the module.
    """

    def __init__(self, hosts, *, min_agents: int = 1,
                 local_fallback: Optional[LocalPoolBackend] = ...,
                 heartbeat_interval: float = 1.0,
                 liveness_misses: float = 3.0,
                 connect_timeout: float = 3.0,
                 reconnect_base: float = 0.25,
                 reconnect_cap: float = 10.0,
                 max_reconnects: int = 3,
                 recv_timeout: float = 30.0,
                 bundle_dir: str = "crash-bundles") -> None:
        self.hosts = parse_hosts(hosts)
        if min_agents < 1:
            raise ValueError("min_agents must be >= 1")
        self.min_agents = min_agents
        self.local_fallback = (LocalPoolBackend()
                               if local_fallback is ... else local_fallback)
        self.heartbeat_interval = heartbeat_interval
        self.liveness_misses = liveness_misses
        self.connect_timeout = connect_timeout
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        self.max_reconnects = max_reconnects
        self.recv_timeout = recv_timeout
        self.bundle_dir = bundle_dir

    def run(self, specs: Sequence[TaskSpec], *,
            timeout: Optional[float] = None,
            on_result: Optional[Callable[[TaskResult], None]] = None,
            ) -> ExecutionReport:
        for spec in specs:
            if spec.max_attempts < 1:
                raise ValueError("max_attempts must be >= 1")
        if not specs:
            return ExecutionReport(results=(), stats=FabricStats(jobs=0))
        engine = _FabricEngine(
            specs, self.hosts, timeout=timeout, on_result=on_result,
            local_fallback=self.local_fallback, min_agents=self.min_agents,
            heartbeat_interval=self.heartbeat_interval,
            liveness_misses=self.liveness_misses,
            connect_timeout=self.connect_timeout,
            reconnect_base=self.reconnect_base,
            reconnect_cap=self.reconnect_cap,
            max_reconnects=self.max_reconnects,
            recv_timeout=self.recv_timeout,
            bundle_dir=self.bundle_dir)
        return engine.run()


def run_distributed_tasks(specs: Sequence[TaskSpec], hosts, *,
                          timeout: Optional[float] = None,
                          on_result: Optional[
                              Callable[[TaskResult], None]] = None,
                          **options) -> ExecutionReport:
    """Convenience wrapper: ``FabricBackend(hosts, **options).run(...)``."""
    return FabricBackend(hosts, **options).run(
        specs, timeout=timeout, on_result=on_result)
