"""Content-addressed result store for resilient sweeps.

Completed replicate outcomes are persisted keyed by
``sha256(config_fingerprint | seed)`` — the same identity that derives
retry seeds — so an overlapping re-run (same config, same seed)
fetches the finished outcome instead of recomputing it. Because the
cache stores the *canonical* outcome dict (the digest-bearing fields:
status, seed, used seed, attempts, metric values, error), a warm-cache
sweep journals byte-identical records and reports the same
``SweepResult.canonical_digest`` as a cold recomputation. The store
doubles as partial-result salvage: after a fabric-wide failure, every
outcome that finished anywhere survives in the cache even if the run's
journal was lost.

Entries are single JSON files (two-level fan-out directories keyed by
the hash prefix) with an embedded checksum over their payload. A
corrupt entry — truncated write, bit rot, hand edit — is counted and
treated as a miss by default; ``strict=True`` escalates it to
:class:`CacheCorruptionError` for pipelines that treat the cache as a
source of truth. Writes are atomic (temp file + ``os.replace``), so a
crash mid-store never leaves a torn entry. Only ``ok`` outcomes are
stored: failures must re-run, not haunt future sweeps.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["ResultCache", "CacheStats", "CacheCorruptionError"]

_CACHE_VERSION = 1


class CacheCorruptionError(RuntimeError):
    """A cache entry failed checksum or schema validation (strict mode)."""

    def __init__(self, message: str, *, path: str) -> None:
        super().__init__(message)
        self.path = path


@dataclass
class CacheStats:
    """Hit/miss accounting for one sweep's cache traffic."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt}


def _entry_key(fingerprint: str, seed: int) -> str:
    return hashlib.sha256(
        f"{fingerprint}|{seed}".encode("utf-8")).hexdigest()


def _canonical_json(payload: Dict[str, Any]) -> str:
    # sort_keys + no whitespace variance => a stable checksum surface.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Dict[str, Any]) -> str:
    body = {k: v for k, v in payload.items() if k != "checksum"}
    return hashlib.sha256(
        _canonical_json(body).encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of finished replicate outcomes.

    ``get``/``put`` speak plain dicts (the journal's canonical outcome
    records), keeping this module free of any import cycle with
    :mod:`repro.experiments.replicates`.
    """

    def __init__(self, root: str, *, strict: bool = False) -> None:
        self.root = os.fspath(root)
        self.strict = strict
        self.stats = CacheStats()

    # -- paths -----------------------------------------------------------

    def path_for(self, fingerprint: str, seed: int) -> str:
        key = _entry_key(fingerprint, seed)
        return os.path.join(self.root, key[:2], key[2:4], f"{key}.json")

    # -- read ------------------------------------------------------------

    def get(self, fingerprint: str, seed: int) -> Optional[Dict[str, Any]]:
        """The stored canonical outcome dict, or ``None`` on a miss.

        Corruption counts as a miss unless ``strict``, in which case it
        raises :class:`CacheCorruptionError`.
        """
        path = self.path_for(fingerprint, seed)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError) as exc:
            return self._corrupt(path, f"unreadable entry: {exc}")
        problem = self._validate(entry, fingerprint, seed)
        if problem is not None:
            return self._corrupt(path, problem)
        self.stats.hits += 1
        return entry["outcome"]

    def _validate(self, entry: Any, fingerprint: str,
                  seed: int) -> Optional[str]:
        if not isinstance(entry, dict):
            return f"entry is {type(entry).__name__}, not an object"
        for field in ("version", "fingerprint", "seed", "outcome",
                      "checksum"):
            if field not in entry:
                return f"entry is missing {field!r}"
        if entry["version"] != _CACHE_VERSION:
            return (f"entry version {entry['version']!r} != "
                    f"{_CACHE_VERSION}")
        if entry["checksum"] != _checksum(entry):
            return "checksum mismatch"
        # A key collision is astronomically unlikely; an entry that
        # *passes* its checksum but names a different identity means
        # the tree was moved or hand-edited — corruption either way.
        if entry["fingerprint"] != fingerprint or entry["seed"] != seed:
            return ("entry identity mismatch "
                    f"(stored seed {entry['seed']!r})")
        if not isinstance(entry["outcome"], dict):
            return "outcome payload is not an object"
        return None

    def _corrupt(self, path: str, problem: str) -> None:
        self.stats.corrupt += 1
        if self.strict:
            raise CacheCorruptionError(
                f"corrupt cache entry {path}: {problem}", path=path)
        self.stats.misses += 1
        return None

    # -- write -----------------------------------------------------------

    def put(self, fingerprint: str, seed: int,
            outcome: Dict[str, Any]) -> str:
        """Persist an ``ok`` outcome's canonical dict; returns the path.

        Non-ok outcomes are rejected — a cached failure would mask a
        transient-vs-systematic distinction the retry ladder exists to
        probe.
        """
        if outcome.get("status") != "ok":
            raise ValueError(
                f"only ok outcomes are cacheable, got "
                f"{outcome.get('status')!r}")
        path = self.path_for(fingerprint, seed)
        entry = {"version": _CACHE_VERSION, "fingerprint": fingerprint,
                 "seed": seed, "outcome": outcome}
        entry["checksum"] = _checksum(entry)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path
