"""Wire protocol of the distributed sweep fabric.

Agents (:mod:`repro.dist.agent`) and the dispatcher
(:mod:`repro.dist.dispatcher`) speak length-prefixed pickle frames over
a plain TCP socket: a 4-byte big-endian payload length followed by the
pickled message. Messages are small dicts tagged by a ``"t"`` field:

===============  =========  =====================================
type             direction  payload
===============  =========  =====================================
``hello``        d -> a     ``version``
``welcome``      a -> d     ``version``, ``slots``, ``pid``
``getready``     d -> a     —
``ready``        a -> d     ``slots``
``start``        d -> a     ``task_id``, ``fn``, ``args``,
                            ``timeout``
``result``       a -> d     ``task_id``, ``status`` (ok/error),
                            ``value`` | ``error``, ``wall_s``,
                            ``result_bytes``, optional ``bundle``
                            (``{"name", "data"}`` forensics blob)
``heartbeat``    a -> d     ``busy``, ``done``
``stop``         d -> a     —
===============  =========  =====================================

The handshake is ``hello -> welcome -> getready -> ready``; after it
the dispatcher streams ``start`` messages up to the agent's advertised
slot count and the agent streams ``result``\\ s home, interleaved with
periodic ``heartbeat``\\ s that the dispatcher's liveness tracker feeds
on. Either side closing the socket mid-frame surfaces as
:class:`ConnectionClosed` — never as a torn half-message, because
frames are only acted on once fully received.

Pickle requires both ends to run the same codebase (the task ``fn``
travels by module reference, exactly like the local worker pool's
pipes); the fabric is a trusted-cluster tool, not a public service.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import socket
import struct
from typing import Any, Dict

__all__ = ["PROTOCOL_VERSION", "MAX_FRAME_BYTES", "ProtocolError",
           "ConnectionClosed", "send_msg", "recv_msg", "hello",
           "welcome", "expect", "deterministic_jitter", "backoff_delay"]

#: Bumped on any incompatible message-shape change; the handshake
#: rejects mismatched peers instead of failing obscurely mid-sweep.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame. Results carry pickled simulation
#: metrics plus optional observability payloads and forensics bundles;
#: anything beyond this is a protocol violation, not a workload.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer violated the fabric protocol (bad frame, bad type)."""


class ConnectionClosed(ProtocolError):
    """The peer went away — cleanly between frames or mid-message."""


def send_msg(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Pickle ``message`` and write it as one length-prefixed frame."""
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send {len(data)} byte frame "
            f"(limit {MAX_FRAME_BYTES})")
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            got = n - remaining
            if got:
                raise ConnectionClosed(
                    f"connection closed mid-message ({got}/{n} bytes)")
            raise ConnectionClosed("connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Dict[str, Any]:
    """Read one frame and unpickle it.

    Raises :class:`ConnectionClosed` on EOF (including EOF mid-frame —
    the chaos-testing surface) and :class:`ProtocolError` on oversized
    or unparseable frames.
    """
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}")
    data = _recv_exact(sock, length)
    try:
        message = pickle.loads(data)
    except Exception as exc:
        raise ProtocolError(
            f"undecodable frame: {type(exc).__name__}: {exc}") from exc
    if not isinstance(message, dict) or "t" not in message:
        raise ProtocolError(f"malformed message: {message!r}")
    return message


def expect(message: Dict[str, Any], expected_type: str) -> Dict[str, Any]:
    """Assert a message's ``"t"`` tag; returns the message unchanged."""
    if message.get("t") != expected_type:
        raise ProtocolError(
            f"expected {expected_type!r}, got {message.get('t')!r}")
    return message


def hello() -> Dict[str, Any]:
    return {"t": "hello", "version": PROTOCOL_VERSION}


def welcome(slots: int) -> Dict[str, Any]:
    return {"t": "welcome", "version": PROTOCOL_VERSION,
            "slots": slots, "pid": os.getpid()}


# ----------------------------------------------------------------------
# Deterministic backoff
# ----------------------------------------------------------------------

def deterministic_jitter(token: str) -> float:
    """A reproducible pseudo-uniform draw in ``[0, 1)`` from ``token``.

    Both retry backoff (jitter keyed by the retry seed) and reconnect
    backoff (jitter keyed by host and failure count) need spread
    without a shared RNG whose consumption order would depend on
    scheduling — a hash of a stable token gives exactly that.
    """
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def backoff_delay(failures: int, *, base: float, cap: float,
                  token: str) -> float:
    """Exponential backoff with bounded deterministic jitter.

    ``base * 2**(failures-1)`` capped at ``cap``, then stretched by up
    to +100% by :func:`deterministic_jitter` of ``token`` — bounded
    above by ``2 * cap``, never below ``base`` (for ``failures >= 1``).
    """
    if failures < 1:
        return 0.0
    raw = min(cap, base * (2.0 ** (failures - 1)))
    return raw * (1.0 + deterministic_jitter(token))
