"""Runner agent: executes sweep tasks shipped over the fabric socket.

``python -m repro agent`` starts one of these on each machine of a
cluster; the dispatcher (:mod:`repro.dist.dispatcher`) connects,
handshakes, and streams tasks at it. The agent is deliberately dumb —
all scheduling, retry, and determinism decisions stay parent-side — but
it owns three responsibilities:

* **crash isolation**, reusing the local pool's worker loop
  (:func:`repro.experiments.executor._worker_main`): every slot is a
  warm spawned process, so a task that segfaults or OOMs kills one slot
  worker, which the agent reaps and respawns, reporting the death home
  with the *same error string the local pool would produce* — error
  text is part of a sweep's canonical digest, so a worker death must
  read identically whether it happened locally or on an agent;
* **agent-side timeout enforcement**: each ``start`` carries the
  task's wall-clock budget, and the agent kills the slot at the
  deadline rather than trusting the dispatcher's (network-delayed) view
  of time — again with the local pool's exact error phrasing;
* **forensics shipping**: when a failed task names a crash bundle
  (``[bundle: path]`` in its error, the guards-layer convention) or a
  finished run carries ``metrics.bundle_path``, the agent reads the
  bundle file — local to *its* filesystem — and ships the bytes home in
  the result frame so the operator never has to log into the box.

An agent outlives dispatcher sessions: when a sweep finishes (``stop``)
or the dispatcher dies mid-run (socket EOF — in-flight slot workers are
killed, since their tasks will be re-dispatched elsewhere), it returns
to accepting the next connection. Heartbeats flow every
``heartbeat_interval`` seconds whether or not tasks are running; the
dispatcher's liveness deadline feeds on them.
"""

from __future__ import annotations

import os
import re
import socket
import threading
import time
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from queue import Empty, Queue
from typing import Any, Dict, List, Optional

from repro.dist import protocol
from repro.experiments.executor import _worker_main

__all__ = ["Agent", "DEFAULT_HEARTBEAT_INTERVAL", "MAX_BUNDLE_BYTES"]

#: Seconds between agent -> dispatcher heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Largest crash-forensics bundle shipped home inline (bundles are
#: bounded JSON snapshots; anything larger is suspicious).
MAX_BUNDLE_BYTES = 16 * 1024 * 1024

#: Seconds a reaped slot worker gets to ``join()`` before ``kill()``.
_JOIN_GRACE_S = 2.0

#: Slot/inbox multiplexing poll (seconds).
_POLL_S = 0.05

_BUNDLE_RE = re.compile(r"\[bundle: ([^\]]+)\]")


class _Slot:
    """One warm worker process; lazily spawned, killed on misbehaviour."""

    def __init__(self, sid: int, ctx) -> None:
        self.sid = sid
        self.ctx = ctx
        self.proc = None
        self.conn = None
        #: In-flight task: {"task_id", "timeout", "deadline", "started"}.
        self.task: Optional[Dict[str, Any]] = None

    @property
    def busy(self) -> bool:
        return self.task is not None

    def ensure(self) -> None:
        if self.proc is not None and self.proc.is_alive():
            return
        self.close()
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        self.proc = self.ctx.Process(
            target=_worker_main, args=(child_conn,),
            name=f"repro-agent-slot-{self.sid}", daemon=True)
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn

    def kill(self) -> None:
        """Hard-stop the worker (timeout, dispatcher loss): terminate,
        ``join(grace)``, ``kill()`` — the executor's reap discipline."""
        if self.proc is not None:
            try:
                self.proc.terminate()
            except Exception:  # pragma: no cover
                pass
            self.proc.join(_JOIN_GRACE_S)
            if self.proc.is_alive():
                try:
                    self.proc.kill()
                except Exception:  # pragma: no cover
                    pass
                self.proc.join(_JOIN_GRACE_S)
        self.close()

    def close(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except Exception:  # pragma: no cover
                pass
        self.proc = None
        self.conn = None
        self.task = None


class Agent:
    """A fabric runner: ``bind()`` then ``serve_forever()`` (or
    ``start()`` for a background thread — the test harness path)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 slots: int = 1,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 start_method: str = "spawn",
                 max_sessions: Optional[int] = None) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.host = host
        self.port = port
        self.slots = slots
        self.heartbeat_interval = heartbeat_interval
        self.ctx = get_context(start_method)
        self.max_sessions = max_sessions
        self.tasks_done = 0
        self._listener: Optional[socket.socket] = None
        self._session_sock: Optional[socket.socket] = None
        self._slots: List[_Slot] = []
        self._closing = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def bind(self) -> int:
        """Bind and listen; returns the (possibly OS-assigned) port."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(1)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._slots = [_Slot(i, self.ctx) for i in range(self.slots)]
        return self.port

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        port = self.bind()
        self._thread = threading.Thread(target=self.serve_forever,
                                        name=f"repro-agent-{port}",
                                        daemon=True)
        self._thread.start()
        return port

    def serve_forever(self) -> None:
        """Accept dispatcher sessions until :meth:`stop` (one at a
        time — a sweep has exactly one dispatcher)."""
        if self._listener is None:
            self.bind()
        sessions = 0
        try:
            while not self._closing:
                if (self.max_sessions is not None
                        and sessions >= self.max_sessions):
                    break
                try:
                    conn, _addr = self._listener.accept()
                except OSError:  # listener closed by stop()
                    break
                sessions += 1
                self._session_sock = conn
                try:
                    self._serve_session(conn)
                except (protocol.ProtocolError, OSError):
                    pass  # dispatcher vanished; wait for the next one
                finally:
                    self._session_sock = None
                    self._abandon_inflight()
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover
                        pass
        finally:
            self._shutdown_slots()

    def stop(self) -> None:
        """Tear the agent down: listener, live session, slot workers.

        Closing the session socket mid-sweep is exactly how the chaos
        tests simulate a host failure — the dispatcher sees a dead
        connection and re-dispatches the agent's in-flight tasks.
        """
        self._closing = True
        for sock in (self._session_sock, self._listener):
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
        self._listener = None
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None
        self._shutdown_slots()

    def _shutdown_slots(self) -> None:
        for slot in self._slots:
            slot.kill()

    def _abandon_inflight(self) -> None:
        """Dispatcher gone: kill busy slots (their tasks will be
        re-dispatched elsewhere; finishing them here wastes a core)."""
        for slot in self._slots:
            if slot.busy:
                slot.kill()

    # -- one dispatcher session -----------------------------------------

    def _serve_session(self, sock: socket.socket) -> None:
        sock.settimeout(30.0)
        hello = protocol.expect(protocol.recv_msg(sock), "hello")
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            protocol.send_msg(sock, {
                "t": "error",
                "error": f"protocol version mismatch: agent "
                         f"{protocol.PROTOCOL_VERSION}, dispatcher "
                         f"{hello.get('version')}"})
            return
        sock.settimeout(None)
        protocol.send_msg(sock, protocol.welcome(self.slots))

        inbox: Queue = Queue()

        def _reader() -> None:
            try:
                while True:
                    inbox.put(protocol.recv_msg(sock))
            except (protocol.ProtocolError, OSError):
                inbox.put(None)  # sentinel: session over

        reader = threading.Thread(target=_reader, daemon=True,
                                  name=f"repro-agent-reader-{self.port}")
        reader.start()

        last_heartbeat = 0.0
        while True:
            now = time.monotonic()
            if now - last_heartbeat >= self.heartbeat_interval:
                busy = sum(1 for s in self._slots if s.busy)
                protocol.send_msg(sock, {"t": "heartbeat", "busy": busy,
                                         "done": self.tasks_done})
                last_heartbeat = now
            while True:  # drain every queued control message
                try:
                    message = inbox.get_nowait()
                except Empty:
                    break
                if message is None or message["t"] == "stop":
                    return
                if message["t"] == "getready":
                    protocol.send_msg(sock, {"t": "ready",
                                             "slots": self.slots})
                elif message["t"] == "start":
                    self._start_task(sock, message)
            self._pump_slots(sock)
            self._enforce_deadlines(sock)

    def _start_task(self, sock: socket.socket,
                    message: Dict[str, Any]) -> None:
        task_id = message["task_id"]
        slot = next((s for s in self._slots if not s.busy), None)
        if slot is None:  # dispatcher overcommitted: protocol breach
            protocol.send_msg(sock, {
                "t": "result", "task_id": task_id, "status": "error",
                "error": f"agent has no free slot for task {task_id}",
                "wall_s": 0.0})
            return
        try:
            slot.ensure()
            slot.conn.send((message["fn"], tuple(message["args"])))
        except Exception as exc:
            slot.kill()
            protocol.send_msg(sock, {
                "t": "result", "task_id": task_id, "status": "error",
                "error": f"could not dispatch task: "
                         f"{type(exc).__name__}: {exc}",
                "wall_s": 0.0})
            return
        timeout = message.get("timeout")
        now = time.monotonic()
        slot.task = {"task_id": task_id, "timeout": timeout,
                     "deadline": None if timeout is None else now + timeout,
                     "started": now}

    def _pump_slots(self, sock: socket.socket) -> None:
        conn_to_slot = {s.conn: s for s in self._slots if s.busy}
        if not conn_to_slot:
            time.sleep(_POLL_S)
            return
        for conn in _connection_wait(list(conn_to_slot), _POLL_S):
            slot = conn_to_slot[conn]
            task_id = slot.task["task_id"]
            started = slot.task["started"]
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                # Matches the local engine's phrasing exactly: error
                # strings are canonical-digest material — so reap
                # (join) before reading the exit code, as it does.
                exitcode = None
                if slot.proc is not None:
                    slot.proc.join(_JOIN_GRACE_S)
                    exitcode = slot.proc.exitcode
                slot.kill()
                self.tasks_done += 1
                protocol.send_msg(sock, self._error_result(
                    task_id, f"worker process died (exit code {exitcode})",
                    time.monotonic() - started))
                continue
            slot.task = None
            self.tasks_done += 1
            status, value_or_error, wall_s = payload[:3]
            if status == "ok":
                result_bytes = payload[3] if len(payload) > 3 else None
                protocol.send_msg(sock, self._ok_result(
                    task_id, value_or_error, wall_s, result_bytes))
            else:
                protocol.send_msg(sock, self._error_result(
                    task_id, value_or_error, wall_s))

    def _enforce_deadlines(self, sock: socket.socket) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if not slot.busy or slot.task["deadline"] is None:
                continue
            if now <= slot.task["deadline"]:
                continue
            task_id = slot.task["task_id"]
            timeout = slot.task["timeout"]
            started = slot.task["started"]
            slot.kill()
            self.tasks_done += 1
            protocol.send_msg(sock, self._error_result(
                task_id, f"timeout after {timeout}s", now - started))

    # -- result assembly -------------------------------------------------

    def _ok_result(self, task_id: Any, value: Any, wall_s: float,
                   result_bytes: Optional[int]) -> Dict[str, Any]:
        message = {"t": "result", "task_id": task_id, "status": "ok",
                   "value": value, "wall_s": wall_s,
                   "result_bytes": result_bytes}
        bundle = self._read_bundle(getattr(value, "bundle_path", None))
        if bundle is not None:
            message["bundle"] = bundle
        return message

    def _error_result(self, task_id: Any, error: str,
                      wall_s: float) -> Dict[str, Any]:
        message = {"t": "result", "task_id": task_id, "status": "error",
                   "error": error, "wall_s": wall_s}
        match = _BUNDLE_RE.search(error or "")
        bundle = self._read_bundle(match.group(1) if match else None)
        if bundle is not None:
            message["bundle"] = bundle
        return message

    @staticmethod
    def _read_bundle(path: Optional[str]) -> Optional[Dict[str, Any]]:
        """Load a crash bundle for inline shipping; never fatal."""
        if not path:
            return None
        try:
            if os.path.getsize(path) > MAX_BUNDLE_BYTES:
                return None
            with open(path, "rb") as handle:
                return {"name": os.path.basename(path),
                        "data": handle.read()}
        except OSError:
            return None
