"""Fault-tolerant distributed sweep fabric.

``repro.dist`` turns the single-host persistent worker pool
(:mod:`repro.experiments.executor`) into a multi-host fabric without
changing what a sweep *means*: runner agents (:class:`Agent`) execute
tasks in warm worker processes and stream results home over a socket
control channel, a dispatcher (:class:`FabricBackend`) treats each
host as a failure domain (heartbeat liveness, end-to-end deadlines,
re-dispatch on host death, reconnect backoff, local-pool degradation),
and a content-addressed store (:class:`ResultCache`) lets overlapping
re-runs fetch finished outcomes instead of recomputing them. All of it
preserves the sweep contract: ``SweepResult.canonical_digest`` is
byte-identical across one host, N hosts, any agent-crash schedule, and
warm-cache re-runs.
"""

from repro.dist.agent import Agent
from repro.dist.cache import CacheCorruptionError, CacheStats, ResultCache
from repro.dist.dispatcher import (AgentUnreachableError, FabricBackend,
                                   FabricStats, HostSpec, parse_hosts,
                                   run_distributed_tasks)
from repro.dist.protocol import (PROTOCOL_VERSION, ConnectionClosed,
                                 ProtocolError, backoff_delay,
                                 deterministic_jitter)

__all__ = [
    "Agent",
    "AgentUnreachableError",
    "CacheCorruptionError",
    "CacheStats",
    "ConnectionClosed",
    "FabricBackend",
    "FabricStats",
    "HostSpec",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResultCache",
    "backoff_delay",
    "deterministic_jitter",
    "parse_hosts",
    "run_distributed_tasks",
]
