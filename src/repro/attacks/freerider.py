"""Free-rider behaviour (Section IV-C, V-B2).

A free-rider requests and accepts pieces like everyone else but never
uploads — the *simple* (non-collusive) attack. The targeted attack
flags of :class:`~repro.sim.config.AttackConfig` layer the stronger
attacks on top:

* **false praise** (reputation systems): each round, each colluder
  injects a fake upload report crediting a fellow colluder, inflating
  the coalition's reputations so legitimate users prefer them;
* **collusion** (T-Chain): colluders falsely confirm indirect
  reciprocations for each other — handled in the runner's key-release
  path, since it is the *uploader's* protocol being subverted;
* **whitewashing** (FairTorrent): periodic identity resets — executed
  by the runner via :meth:`repro.sim.swarm.Swarm.reset_identity`;
* **large view**: a wider neighbor view — applied when the peer is
  created (see :mod:`repro.sim.swarm`).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.algorithms.base import Strategy
from repro.sim.config import AttackConfig
from repro.sim.context import StrategyContext

__all__ = ["FreeRiderStrategy"]


class FreeRiderStrategy(Strategy):
    """Never uploads; optionally performs false-praise collusion."""

    algorithm = None

    def __init__(self, params, rng: random.Random,
                 attack: Optional[AttackConfig] = None) -> None:
        super().__init__(params, rng)
        self.attack = attack or AttackConfig()

    def on_round(self, ctx: StrategyContext) -> None:
        if not self.attack.false_praise:
            return
        # Credit a fellow colluder with fictitious uploads. Reports are
        # unattributed on the global board, so legitimate users cannot
        # tell them from genuine ones (footnote 6 of the paper).
        # Sorted before drawing: iterating the colluder *set* would tie
        # the beneficiary pick to set order, which varies across Python
        # versions and would break seed reproducibility.
        colluders = [pid for pid in sorted(ctx.peer.colluders)
                     if ctx.is_active(pid)]
        if not colluders:
            return
        beneficiary = self.rng.choice(colluders)
        ctx.report_fake_upload(beneficiary, self.attack.fake_praise_amount)
