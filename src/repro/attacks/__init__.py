"""Free-riding attack behaviours (Section IV-C / V-B2).

The attack *configuration* lives in
:class:`repro.sim.config.AttackConfig`; this package provides the
free-rider strategy and documents how each attack is wired into the
simulator:

==============  ====================================================
Attack          Where it acts
==============  ====================================================
simple          :class:`FreeRiderStrategy` (uploads nothing)
false praise    :class:`FreeRiderStrategy` (fake reputation reports)
collusion       runner's T-Chain key-release path
whitewashing    runner round hook -> ``Swarm.reset_identity``
large view      ``Swarm._build_view`` (peer flag ``large_view``)
==============  ====================================================
"""

from repro.attacks.freerider import FreeRiderStrategy  # noqa: F401

__all__ = ["FreeRiderStrategy"]
