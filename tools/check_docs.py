#!/usr/bin/env python3
"""Docs health checker: do the documents still match the repo?

Two mechanical checks over the curated markdown set (README + the
top-level reference documents + everything in ``docs/``):

* **Links resolve.** Every relative markdown link must point at a file
  that exists, and a ``file.md#anchor`` link must name a real heading
  of the target (GitHub slug rules). External links are not fetched.
* **Doctests pass.** Any fenced ``python`` block containing ``>>>``
  prompts is executed as a doctest against the installed ``repro``
  package, so documented behaviour cannot silently drift from code.

Run directly (``python tools/check_docs.py``) for a report and a
non-zero exit on problems; ``tests/test_docs_health.py`` wraps the
same functions so tier-1 CI enforces both checks.
"""

from __future__ import annotations

import doctest
import pathlib
import re
import sys
from typing import Dict, Iterable, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The documents whose health we guarantee. Deliberately a curated
#: list, not a glob over the repo: scratch/driver files are exempt.
DOC_PATHS: Tuple[str, ...] = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/SIMULATOR.md",
    "docs/OBSERVABILITY.md",
    "docs/ANALYSIS.md",
    "docs/SCALING.md",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```.*?^```[ \t]*$", re.M | re.S)
_PYTHON_FENCE_RE = re.compile(r"^```python[^\n]*\n(.*?)^```[ \t]*$",
                              re.M | re.S)
_HEADING_RE = re.compile(r"^#{1,6}[ \t]+(.+?)[ \t]*$", re.M)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> List[pathlib.Path]:
    """The curated documents that actually exist (missing ones fail)."""
    return [REPO_ROOT / rel for rel in DOC_PATHS]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, punctuation
    stripped, spaces to hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> List[str]:
    """All anchor slugs a markdown document exposes (in order)."""
    without_code = _FENCE_RE.sub("", markdown)
    slugs: List[str] = []
    seen: Dict[str, int] = {}
    for match in _HEADING_RE.finditer(without_code):
        slug = github_slug(match.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.append(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(path: pathlib.Path, markdown: str) -> List[str]:
    """Problems with the relative links of one document."""
    problems: List[str] = []
    rel = path.relative_to(REPO_ROOT)
    without_code = _FENCE_RE.sub("", markdown)
    for match in _LINK_RE.finditer(without_code):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{rel}: broken link -> {target}")
                continue
        else:
            resolved = path  # pure-anchor link into this document
        if anchor:
            if resolved.suffix != ".md" or resolved.is_dir():
                continue  # anchors into non-markdown: not ours to judge
            slugs = heading_slugs(resolved.read_text(encoding="utf-8"))
            if anchor not in slugs:
                problems.append(
                    f"{rel}: link -> {target} names no heading of "
                    f"{resolved.relative_to(REPO_ROOT)}")
    return problems


def doctest_blocks(markdown: str) -> List[str]:
    """Fenced python blocks containing ``>>>`` prompts."""
    return [match.group(1)
            for match in _PYTHON_FENCE_RE.finditer(markdown)
            if ">>>" in match.group(1)]


def check_doctests(path: pathlib.Path, markdown: str) -> List[str]:
    """Doctest failures in one document's fenced python blocks."""
    problems: List[str] = []
    rel = path.relative_to(REPO_ROOT)
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(verbose=False,
                                   optionflags=doctest.ELLIPSIS)
    for i, block in enumerate(doctest_blocks(markdown)):
        test = parser.get_doctest(block, {}, f"{rel}[block {i}]",
                                  str(rel), 0)
        output: List[str] = []
        result = runner.run(test, out=output.append)
        if result.failed:
            problems.append(
                f"{rel}: doctest block {i} failed:\n" + "".join(output))
    return problems


def run_checks(paths: Iterable[pathlib.Path] = ()) -> List[str]:
    """All problems across the curated (or given) documents."""
    problems: List[str] = []
    for path in paths or doc_files():
        if not path.exists():
            problems.append(
                f"{path.relative_to(REPO_ROOT)}: document missing")
            continue
        markdown = path.read_text(encoding="utf-8")
        problems.extend(check_links(path, markdown))
        problems.extend(check_doctests(path, markdown))
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    problems = run_checks()
    files = doc_files()
    blocks = sum(len(doctest_blocks(p.read_text(encoding="utf-8")))
                 for p in files if p.exists())
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"docs health: {len(problems)} problem(s) across "
              f"{len(files)} documents", file=sys.stderr)
        return 1
    print(f"docs health: {len(files)} documents OK "
          f"({blocks} fenced doctest block(s) executed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
