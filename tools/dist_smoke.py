"""Loopback two-agent smoke for the distributed sweep fabric.

Spawns two ``python -m repro agent`` subprocesses on the loopback
interface, runs the same sweep three ways — local pool only, two
agents, two agents with one SIGKILLed mid-run — and asserts the
canonical aggregate digest and journal digest are byte-identical
across all three. This is the CI-facing end-to-end check that host
failover does not leak into anything deterministic.

Usage::

    PYTHONPATH=src python tools/dist_smoke.py --artifacts dist-smoke
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.replicates import (  # noqa: E402
    journal_digest,
    run_resilient_sweep,
)
from repro.experiments.scenarios import smoke_scale  # noqa: E402
from repro.names import Algorithm  # noqa: E402

_LISTENING_RE = re.compile(r"agent: listening on \S+:(\d+)")
_AGENT_SPAWN_TIMEOUT_S = 30.0


def _spawn_agent(slots: int) -> tuple[subprocess.Popen, int]:
    """Start an agent subprocess and parse its bound port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "agent",
         "--bind", "127.0.0.1", "--port", "0",
         "--slots", str(slots), "--heartbeat", "0.5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    deadline = time.monotonic() + _AGENT_SPAWN_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _LISTENING_RE.search(line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise RuntimeError("agent subprocess never reported a listening port")


def _stop_agent(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=8,
                        help="replicates per sweep (default 8)")
    parser.add_argument("--artifacts", default="dist-smoke",
                        help="directory for journals and bundles")
    args = parser.parse_args()

    os.makedirs(args.artifacts, exist_ok=True)
    config = smoke_scale(Algorithm.ALTRUISM)
    seeds = range(1, args.seeds + 1)
    fabric = {"heartbeat_interval": 0.5, "connect_timeout": 5.0,
              "reconnect_base": 0.1, "reconnect_cap": 0.5,
              "max_reconnects": 2,
              "bundle_dir": os.path.join(args.artifacts, "crash-bundles")}

    def sweep(label, **overrides):
        journal = os.path.join(args.artifacts, f"{label}.jsonl")
        if os.path.exists(journal):
            os.remove(journal)
        start = time.perf_counter()
        result = run_resilient_sweep(
            config, seeds, jobs=2, timeout=120.0, max_attempts=2,
            journal_path=journal, **overrides)
        wall = time.perf_counter() - start
        print(f"{label}: digest={result.canonical_digest()[:16]} "
              f"failed={result.n_failed} wall={wall:.1f}s")
        return result, journal_digest(journal), wall

    print("== baseline: local pool only ==", flush=True)
    local, local_journal, local_wall = sweep("local")

    agents = []
    try:
        for _ in range(2):
            agents.append(_spawn_agent(slots=2))
        hosts = ",".join(f"127.0.0.1:{port}" for _proc, port in agents)
        print(f"== two agents: {hosts} ==", flush=True)
        remote, remote_journal, _ = sweep(
            "two-agents", hosts=hosts, fabric_options=dict(fabric))

        print("== two agents, one SIGKILLed mid-sweep ==", flush=True)
        victim = agents[0][0]
        kill_delay = max(0.2, local_wall * 0.4)
        killer = threading.Timer(
            kill_delay, lambda: victim.send_signal(signal.SIGKILL))
        killer.start()
        try:
            chaos, chaos_journal, _ = sweep(
                "agent-killed", hosts=hosts, fabric_options=dict(fabric))
        finally:
            killer.cancel()
        print(f"failover stats: "
              f"redispatches={chaos.telemetry.get('redispatches')} "
              f"agents_lost={chaos.telemetry.get('agents_lost')} "
              f"fallback={chaos.telemetry.get('fallback_tasks')}")
    finally:
        for proc, _port in agents:
            _stop_agent(proc)

    failures = []
    if remote.canonical_digest() != local.canonical_digest():
        failures.append("two-agent digest != local digest")
    if chaos.canonical_digest() != local.canonical_digest():
        failures.append("agent-killed digest != local digest")
    if remote_journal != local_journal:
        failures.append("two-agent journal digest != local journal digest")
    if chaos_journal != local_journal:
        failures.append("agent-killed journal digest != local journal "
                        "digest")
    if local.n_failed:
        failures.append(f"baseline sweep had {local.n_failed} failed "
                        f"replicates")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    # Keep the default bundle dir out of artifacts unless populated.
    bundles = os.path.join(args.artifacts, "crash-bundles")
    if os.path.isdir(bundles) and not os.listdir(bundles):
        shutil.rmtree(bundles)
    print("OK: digests identical across local / two agents / "
          "agent-killed runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
