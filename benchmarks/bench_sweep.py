"""Sweep-engine benchmark: persistent worker pool vs. throwaway pools.

Times the same replicated sweep three ways:

* ``legacy`` — the pre-engine architecture: one fresh single-worker
  ``spawn``-context process pool per replicate, torn down after each
  result (what ``run_resilient_sweep`` did before the persistent
  engine). Every replicate pays a full interpreter start plus package
  import.
* ``engine_jobs1`` — the persistent engine serialized to one worker:
  the pool is warmed once, so the spawn cost is paid once per sweep
  instead of once per replicate.
* ``engine_jobsN`` — the engine fanned out over N workers (default 4).
  On multi-core hosts this adds true parallelism on top; the host's
  usable CPU count is recorded in the JSON so single-core CI numbers
  are read for what they are.

The sweep aggregates are digest-checked across the two engine modes
(``digests_match`` in the output) — the jobs count must be invisible
in everything deterministic.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py           # full scale
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick   # CI smoke

Not a pytest benchmark on purpose: CI runs it as a plain script (quick
mode) and archives ``BENCH_sweep.json``, so the file can never rot.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import multiprocessing
import os
import platform
import sys
import time

from repro.experiments.replicates import _replicate_task, run_resilient_sweep
from repro.experiments.scenarios import default_scale, smoke_scale
from repro.names import Algorithm

__all__ = ["run_bench", "main"]


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _time_legacy(config, seeds) -> float:
    """The old architecture: a throwaway one-worker pool per replicate."""
    context = multiprocessing.get_context("spawn")
    start = time.perf_counter()
    for seed in seeds:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=1, mp_context=context) as pool:
            pool.submit(_replicate_task, config, seed).result()
    return time.perf_counter() - start


def _time_engine(config, seeds, jobs: int):
    start = time.perf_counter()
    sweep = run_resilient_sweep(config, seeds, jobs=jobs)
    return time.perf_counter() - start, sweep


def run_bench(scale: str, replicates: int, jobs: int, seed: int) -> dict:
    builder = smoke_scale if scale == "smoke" else default_scale
    config = builder(Algorithm.TCHAIN, seed=seed)
    seeds = tuple(range(seed, seed + replicates))

    result = {
        "benchmark": "sweep_execution_engine",
        "scale": scale,
        "replicates": replicates,
        "jobs": jobs,
        "seed": seed,
        "cpu_count": _usable_cpus(),
        "python": platform.python_version(),
        "modes": {},
    }

    legacy_s = _time_legacy(config, seeds)
    result["modes"]["legacy"] = {
        "seconds": legacy_s,
        "seconds_per_replicate": legacy_s / replicates,
        "description": "fresh spawn-context pool per replicate",
    }
    print(f"{'legacy':14s} {legacy_s:8.3f}s "
          f"({legacy_s / replicates:.3f}s/replicate)", flush=True)

    serial_s, serial = _time_engine(config, seeds, jobs=1)
    result["modes"]["engine_jobs1"] = {
        "seconds": serial_s,
        "seconds_per_replicate": serial_s / replicates,
        "utilization": serial.telemetry.get("utilization"),
    }
    print(f"{'engine_jobs1':14s} {serial_s:8.3f}s "
          f"({serial_s / replicates:.3f}s/replicate)", flush=True)

    fanned_s, fanned = _time_engine(config, seeds, jobs=jobs)
    result["modes"][f"engine_jobs{jobs}"] = {
        "seconds": fanned_s,
        "seconds_per_replicate": fanned_s / replicates,
        "utilization": fanned.telemetry.get("utilization"),
    }
    print(f"{f'engine_jobs{jobs}':14s} {fanned_s:8.3f}s "
          f"({fanned_s / replicates:.3f}s/replicate)", flush=True)

    result["digests_match"] = (
        serial.canonical_digest() == fanned.canonical_digest())
    result["speedup"] = {
        "engine_jobs1_vs_legacy": legacy_s / serial_s,
        f"engine_jobs{jobs}_vs_legacy": legacy_s / fanned_s,
    }
    best = max(result["speedup"].values())
    print(f"{'speedup':14s} {best:7.2f}x vs legacy "
          f"(digests match: {result['digests_match']})")
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale (smoke config, 8 replicates)")
    parser.add_argument("--scale", choices=("smoke", "default"),
                        default="default")
    parser.add_argument("--replicates", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the fanned-out engine mode")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--output", type=str, default="BENCH_sweep.json")
    args = parser.parse_args(argv)

    if args.quick:
        args.scale, args.replicates = "smoke", 8

    result = run_bench(args.scale, args.replicates, args.jobs, args.seed)
    with open(args.output, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
