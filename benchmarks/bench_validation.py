"""Cross-layer validation bench: Section IV's model vs. Section V's sim.

The paper's central methodological claim is that its analytical models
*predict* the simulator's outcomes. This bench makes the claim
checkable in one shot: it measures each mechanism's empirical
bootstrap probability from a simulation sweep and compares the
ordering against Table II's predictions, requiring strong pairwise
agreement.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.experiments.scenarios import default_scale
from repro.experiments.validation import (
    bootstrap_model_vs_simulation,
    ranking_agreement,
)
from repro.names import Algorithm
from repro.utils import format_table


def test_bootstrap_model_predicts_simulation(benchmark):
    rows = run_once(benchmark, bootstrap_model_vs_simulation,
                    default_scale(seed=19))

    print()
    print(format_table(
        ["Algorithm", "measured p_B", "Table II p_B"],
        [[r["algorithm"].display_name, r["measured_p_b"],
          r["predicted_p_b"]] for r in rows],
        title="Bootstrap probability: simulator vs. analytical model",
        float_format=".3f"))

    measured = {r["algorithm"]: r["measured_p_b"] for r in rows}
    predicted = {r["algorithm"]: r["predicted_p_b"] for r in rows}

    agreement = ranking_agreement(
        [measured[r["algorithm"]] for r in rows],
        [predicted[r["algorithm"]] for r in rows])
    print(f"pairwise ranking agreement: {agreement:.2f}")
    assert agreement >= 0.7

    # The hard orderings must hold exactly in both layers.
    for scores in (measured, predicted):
        assert scores[Algorithm.RECIPROCITY] == min(scores.values())
        assert scores[Algorithm.ALTRUISM] > scores[Algorithm.BITTORRENT]
        assert scores[Algorithm.BITTORRENT] > scores[Algorithm.RECIPROCITY]
        assert scores[Algorithm.REPUTATION] < scores[Algorithm.TCHAIN]


def test_reputation_collusion_realises_prop3(benchmark):
    """Proposition 3 + Table III's collusion row, in the simulator.

    False praise skews the reputation vector away from capacity
    (colluders hold reputation they never earned), which Prop. 3
    predicts costs the system fairness — and Table III's collusion
    probability of 1 predicts the coalition can redirect the
    reputation-weighted bandwidth to itself. Compare against simple
    free-riding at the same population.
    """
    from repro.experiments.scenarios import default_scale, with_freeriders
    from repro.sim import AttackConfig, run_simulation

    def sweep():
        out = {}
        for label, attack in (
                ("simple", AttackConfig()),
                ("false_praise", AttackConfig(false_praise=True,
                                              fake_praise_amount=3.0))):
            metrics = []
            for seed in (19, 23):
                config = with_freeriders(
                    default_scale(Algorithm.REPUTATION, seed=seed),
                    fraction=0.2, attack=attack)
                metrics.append(run_simulation(config).metrics)
            out[label] = metrics
        return out

    results = run_once(benchmark, sweep)

    def mean(label, fn):
        values = [fn(m) for m in results[label]]
        return sum(values) / len(values)

    simple_susc = mean("simple", lambda m: m.susceptibility())
    praised_susc = mean("false_praise", lambda m: m.susceptibility())
    simple_dev = abs(mean("simple", lambda m: m.final_fairness()) - 1.0)
    praised_dev = abs(mean("false_praise",
                           lambda m: m.final_fairness()) - 1.0)
    print(f"\nsimple FR:    susceptibility {simple_susc:.3f}, "
          f"|fairness - 1| {simple_dev:.3f}")
    print(f"false praise: susceptibility {praised_susc:.3f}, "
          f"|fairness - 1| {praised_dev:.3f}")

    # Collusion multiplies what the coalition extracts...
    assert praised_susc > 2.0 * simple_susc
    # ...and the skewed reputation vector costs compliant fairness.
    assert praised_dev > simple_dev + 0.05


def test_fairtorrent_deficit_bound(benchmark):
    """Sherman et al.'s O(log N) pairwise-deficit bound [7], measured.

    Section IV-C caps a FairTorrent free-rider's per-victim take with
    this bound; here we trace a default-scale run and verify the worst
    pairwise imbalance any two users ever reach stays within a small
    multiple of log N — and strictly below altruism's, whose gifting
    has no deficit discipline at all.
    """
    import math
    from dataclasses import replace

    from repro.experiments.scenarios import default_scale
    from repro.experiments.trace_analysis import worst_pairwise_deficit
    from repro.sim import run_simulation

    def sweep():
        out = {}
        for algorithm in (Algorithm.FAIRTORRENT, Algorithm.ALTRUISM):
            config = replace(default_scale(algorithm, seed=19),
                             record_transfers=True)
            result = run_simulation(config)
            out[algorithm] = worst_pairwise_deficit(
                result.metrics.transfers,
                exclude=set(range(config.n_seeders)))
        return out

    worst = run_once(benchmark, sweep)
    bound = 3.5 * math.log(200)
    print(f"\nworst pairwise deficit: FairTorrent "
          f"{worst[Algorithm.FAIRTORRENT]}, altruism "
          f"{worst[Algorithm.ALTRUISM]}; 3.5 log N = {bound:.1f}")
    assert worst[Algorithm.FAIRTORRENT] <= bound
    assert worst[Algorithm.FAIRTORRENT] < worst[Algorithm.ALTRUISM]


def test_table1_rate_shapes_in_simulation(benchmark):
    """Table I's download-rate shapes, measured as per-class durations.

    Proposition 1 predicts: altruism equalises download rates across
    capacity classes (everyone waits the same); T-Chain and FairTorrent
    return each user its own capacity (durations inverse in U_i); and
    BitTorrent sits between them — its capacity-group mixing plus the
    alpha_BT altruistic share flatten the spread relative to the
    perfectly reciprocal hybrids.
    """
    from collections import defaultdict

    from repro.experiments.scenarios import default_scale
    from repro.sim import run_simulation

    def sweep():
        durations = {}
        for algorithm in (Algorithm.ALTRUISM, Algorithm.TCHAIN,
                          Algorithm.FAIRTORRENT, Algorithm.BITTORRENT):
            by_class = defaultdict(list)
            for seed in (33, 34):
                metrics = run_simulation(
                    default_scale(algorithm, seed=seed)).metrics
                for peer in metrics.peers:
                    if peer.download_duration is not None:
                        by_class[peer.capacity].append(peer.download_duration)
            durations[algorithm] = {
                capacity: sum(values) / len(values)
                for capacity, values in by_class.items()}
        return durations

    durations = run_once(benchmark, sweep)

    print()
    print(format_table(
        ["Algorithm"] + [f"class U={c}" for c in (6.0, 3.0, 1.0, 0.5)],
        [[a.display_name] + [durations[a][c] for c in (6.0, 3.0, 1.0, 0.5)]
         for a in durations],
        title="Mean completion duration by capacity class (Table I shapes)",
        float_format=".3g"))

    def spread(algorithm):
        values = durations[algorithm]
        return values[0.5] / values[6.0]

    # Altruism: equal rates -> every class waits about the same.
    assert spread(Algorithm.ALTRUISM) < 1.35
    # Perfect-return hybrids: duration strongly inverse in capacity.
    for algorithm in (Algorithm.TCHAIN, Algorithm.FAIRTORRENT):
        classes = durations[algorithm]
        assert classes[6.0] < classes[3.0] < classes[1.0] < classes[0.5]
        assert spread(algorithm) > 3.0
    # BitTorrent: mixing flattens the spread below T-Chain's.
    assert 1.5 < spread(Algorithm.BITTORRENT) < spread(Algorithm.TCHAIN)
