"""Fault tolerance — graceful degradation as transfer loss rises.

Runs every incentive mechanism at smoke scale across transfer-loss
rates 0%..30% and checks that the simulator degrades *gracefully*:

* a faultless run and a ``loss_rate=0`` run produce identical metrics
  (fault injection is free when disabled);
* mean completion time never improves as the loss rate rises;
* the observed loss rate tracks the configured one;
* every swarm still completes the download at 30% loss.

Run pytest with ``-s`` to see the degradation-vs-loss-rate table.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from benchmarks.conftest import run_once
from repro.experiments.scenarios import smoke_scale
from repro.names import EXTENDED_ALGORITHMS, Algorithm
from repro.sim import FaultConfig, SimulationConfig, run_simulation
from repro.sim.metrics import SimulationMetrics, degradation_rows

LOSS_RATES = (0.0, 0.1, 0.2, 0.3)
SEED = 404


def _config(algorithm: Algorithm, rate: float) -> SimulationConfig:
    base = smoke_scale(algorithm, seed=SEED)
    return base.with_faults(FaultConfig(transfer_loss_rate=rate))


def _degradation_sweep() -> Dict[Algorithm, Dict[float, SimulationMetrics]]:
    return {
        algorithm: {
            rate: run_simulation(_config(algorithm, rate)).metrics
            for rate in LOSS_RATES
        }
        for algorithm in EXTENDED_ALGORITHMS
    }


@pytest.fixture(scope="module")
def degradation() -> Dict[Algorithm, Dict[float, SimulationMetrics]]:
    return _degradation_sweep()


def _table(degradation) -> List[str]:
    lines = [f"{'algorithm':12s} {'loss':>5s} {'obs':>6s} {'meanT':>8s} "
             f"{'done':>5s} {'fair':>6s} {'slow':>6s} {'lost':>6s}"]
    for algorithm, runs in degradation.items():
        for row in degradation_rows(runs):
            lines.append(
                f"{algorithm.value:12s} {row['loss_rate']:5.2f} "
                f"{row['observed_loss_rate']:6.3f} "
                f"{row['mean_completion_time']:8.2f} "
                f"{row['completion_fraction']:5.2f} "
                f"{row['final_fairness']:6.3f} {row['slowdown']:6.3f} "
                f"{row['transfers_lost']:6.0f}")
    return lines


def check_zero_loss_identical(degradation) -> None:
    for algorithm in EXTENDED_ALGORITHMS:
        faultless = run_simulation(smoke_scale(algorithm, seed=SEED)).metrics
        assert degradation[algorithm][0.0] == faultless, algorithm


def check_monotone_degradation(degradation) -> None:
    for algorithm, runs in degradation.items():
        if algorithm is Algorithm.RECIPROCITY:
            # Never bootstraps at smoke scale even without faults
            # (mean completion time is inf at every loss rate), so
            # degradation shows up in lost transfers instead.
            lost = [runs[r].faults.transfers_lost for r in LOSS_RATES]
            assert lost == sorted(lost) and lost[-1] > 0, lost
            continue
        times = [runs[r].mean_completion_time() for r in LOSS_RATES]
        # Weak monotonicity with a small tolerance: losing transfers
        # can only slow a swarm down, never speed it up.
        for lo, hi in zip(times, times[1:]):
            assert hi >= lo * 0.98, (algorithm, times)
        assert times[-1] > times[0], (algorithm, times)


def check_observed_loss_tracks_configured(degradation) -> None:
    for algorithm, runs in degradation.items():
        for rate in LOSS_RATES:
            observed = runs[rate].observed_loss_rate()
            assert abs(observed - rate) < 0.06, (algorithm, rate, observed)


def check_still_completes(degradation) -> None:
    for algorithm, runs in degradation.items():
        if algorithm is Algorithm.RECIPROCITY:
            continue  # never completes at smoke scale, faults or not
        assert runs[0.3].completion_fraction() == 1.0, algorithm


def test_fault_tolerance_sweep(benchmark, degradation):
    result = run_once(benchmark, _degradation_sweep)
    print()
    print("\n".join(_table(result)))
    check_zero_loss_identical(degradation)
    check_monotone_degradation(degradation)
    check_observed_loss_tracks_configured(degradation)
    check_still_completes(degradation)


def test_zero_loss_identical_to_faultless(degradation):
    check_zero_loss_identical(degradation)


def test_completion_time_degrades_monotonically(degradation):
    check_monotone_degradation(degradation)


def test_observed_loss_rate_tracks_configured(degradation):
    check_observed_loss_tracks_configured(degradation)


def test_swarm_completes_at_thirty_percent_loss(degradation):
    check_still_completes(degradation)
