"""E6 — Table III: resources available for free-riding.

Regenerates the exploitable-resource and collusion-probability columns
for a 1000-user population and asserts the paper's entries: zero
exposure for reciprocity and T-Chain, the alpha shares for BitTorrent
and reputation, the (1 - omega) share for FairTorrent, everything for
altruism, collusion probability 1 for reputation, and T-Chain's
vanishing m(m-1)/N(N-1) collusion term.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core import freeriding as fr
from repro.experiments.tables import table3_text
from repro.names import Algorithm

CAPACITIES = [6.0] * 100 + [3.0] * 300 + [1.0] * 400 + [0.5] * 200


@pytest.fixture(scope="module")
def params():
    return fr.FreeRidingParameters(
        CAPACITIES, alpha_bt=0.2, alpha_r=0.1, omega=0.75, pi_ir=0.05,
        n_colluders=200)


def test_table3_regeneration(benchmark, params):
    table = run_once(benchmark, fr.table3, params)

    print()
    print(table3_text(params))

    total = params.total_capacity
    assert table[Algorithm.RECIPROCITY]["exploitable"] == 0.0
    assert table[Algorithm.TCHAIN]["exploitable"] == 0.0
    assert table[Algorithm.BITTORRENT]["exploitable"] == pytest.approx(
        0.2 * total)
    assert table[Algorithm.REPUTATION]["exploitable"] == pytest.approx(
        0.1 * total)
    assert table[Algorithm.FAIRTORRENT]["exploitable"] == pytest.approx(
        0.25 * total)
    assert table[Algorithm.ALTRUISM]["exploitable"] == pytest.approx(total)

    assert table[Algorithm.REPUTATION]["collusion"] == 1.0
    assert table[Algorithm.ALTRUISM]["collusion"] is None
    tchain_collusion = table[Algorithm.TCHAIN]["collusion"]
    assert 0.0 < tchain_collusion < 0.01  # << 1, as the paper notes


def test_susceptibility_ranking(benchmark, params):
    ranking = run_once(benchmark, fr.susceptibility_ranking, params)
    print()
    print("Table III ranking (safest first):",
          " > ".join(a.value for a in ranking))
    assert ranking[0] is Algorithm.RECIPROCITY
    assert ranking[1] is Algorithm.TCHAIN
    assert ranking[-1] is Algorithm.ALTRUISM
