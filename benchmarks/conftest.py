"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures,
prints the regenerated rows (run pytest with ``-s`` to see them), and
asserts the paper's qualitative shape before timing the regeneration.
Simulation-backed figures run once per benchmark (``pedantic`` with a
single round) since a sweep takes seconds, not microseconds.

Figure assertions average over :data:`FIGURE_SEEDS` (one simulation
sweep per seed, cached for the whole session) so a single unlucky seed
cannot flip an ordering; the timed run uses the first seed only.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import pytest

from repro.experiments.figures import FigureResult
from repro.names import Algorithm

#: Seeds used for the averaged figure assertions.
FIGURE_SEEDS = (101, 202, 303)


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a seconds-scale callable with a single execution."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def mean_stat(figs: Sequence[FigureResult], algorithm: Algorithm,
              attr: str) -> float:
    """Average one scalar series attribute across seeds."""
    values = [getattr(fig.series[algorithm], attr) for fig in figs]
    if any(v is None for v in values):
        raise AssertionError(f"{algorithm}: {attr} missing in some run")
    if any(math.isinf(v) for v in values):
        return math.inf
    return sum(values) / len(values)


def _sweep_cache() -> Dict[str, List[FigureResult]]:
    from concurrent.futures import ProcessPoolExecutor

    from repro.experiments.figures import figure4, figure5, figure6
    from repro.experiments.scenarios import default_scale

    runners = (("fig4", figure4), ("fig5", figure5), ("fig6", figure6))
    # The 9 (figure, seed) sweeps are independent: fan them out.
    with ProcessPoolExecutor(max_workers=4) as pool:
        futures = {
            (name, seed): pool.submit(runner, default_scale(seed=seed))
            for name, runner in runners for seed in FIGURE_SEEDS
        }
        cache: Dict[str, List[FigureResult]] = {name: [] for name, _ in runners}
        for name, _ in runners:
            for seed in FIGURE_SEEDS:
                cache[name].append(futures[(name, seed)].result())
    return cache


@pytest.fixture(scope="session")
def figure_sweeps() -> Dict[str, List[FigureResult]]:
    """All three figure sweeps at every assertion seed (built once)."""
    return _sweep_cache()
