"""E1/E2 — Table I and Figure 2: idealized equilibrium (Corollary 1).

Regenerates the equilibrium download rates of all six mechanisms for a
1000-user heterogeneous population and checks Corollary 1's claims:
only T-Chain and FairTorrent reach optimal fairness, altruism is the
most efficient, BitTorrent/reputation beat the perfectly fair hybrids,
and reciprocity transfers nothing.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import run_once
from repro.core import metrics
from repro.core.equilibrium import EquilibriumParameters, table1
from repro.core.tradeoff import (
    figure2_efficiency_ranking,
    figure2_fairness_ranking,
)
from repro.experiments.tables import table1_text
from repro.names import Algorithm

#: Paper-scale population: 1000 users in the default four capacity
#: classes (10% at 6, 30% at 3, 40% at 1, 20% at 0.5 pieces/round).
CAPACITIES = [6.0] * 100 + [3.0] * 300 + [1.0] * 400 + [0.5] * 200


@pytest.fixture(scope="module")
def params():
    # seeder_rate = 0: Corollary 1 compares peer-to-peer utilisation;
    # a seeder share u_S/N would shift every d_i equally off u_i.
    return EquilibriumParameters(CAPACITIES)


def test_table1_regeneration(benchmark, params):
    results = run_once(benchmark, table1, params)

    print()
    print(table1_text(params))

    # Corollary 1, checked on the regenerated rows.
    assert results[Algorithm.TCHAIN].fairness == pytest.approx(0.0, abs=1e-9)
    assert results[Algorithm.FAIRTORRENT].fairness == pytest.approx(
        0.0, abs=1e-9)
    assert results[Algorithm.ALTRUISM].fairness > 0.1
    assert results[Algorithm.RECIPROCITY].upload_rates.sum() == 0.0

    efficiencies = {a: r.efficiency for a, r in results.items()}
    assert min(efficiencies, key=efficiencies.get) is Algorithm.ALTRUISM
    assert efficiencies[Algorithm.RECIPROCITY] == math.inf
    for fast in (Algorithm.BITTORRENT, Algorithm.REPUTATION):
        for slow in (Algorithm.TCHAIN, Algorithm.FAIRTORRENT):
            assert efficiencies[fast] < efficiencies[slow]

    # Lemma 1: nobody beats the equal-rate optimum.
    optimum = metrics.optimal_efficiency(CAPACITIES)
    for result in results.values():
        assert result.efficiency >= optimum - 1e-9


def test_figure2_rankings(benchmark, params):
    def rankings():
        return (figure2_efficiency_ranking(params),
                figure2_fairness_ranking(params))

    efficiency, fairness = run_once(benchmark, rankings)
    print()
    print("Figure 2 efficiency:", " > ".join(a.value for a in efficiency))
    print("Figure 2 fairness:  ", " > ".join(a.value for a in fairness))

    assert efficiency[0] is Algorithm.ALTRUISM
    assert efficiency[-1] is Algorithm.RECIPROCITY
    assert set(fairness[:2]) == {Algorithm.TCHAIN, Algorithm.FAIRTORRENT}
    assert fairness[-2] is Algorithm.ALTRUISM  # least fair defined
    assert fairness[-1] is Algorithm.RECIPROCITY  # undefined -> last
