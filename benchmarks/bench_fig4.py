"""E7-E9 — Figure 4: simulation sweep with all users compliant.

Runs the six-mechanism sweep at the default 200-user scale and checks
the paper's Figure 4 claims (averaged over three seeds so one unlucky
draw cannot flip an ordering):

* 4a (efficiency): altruism fastest; reciprocity stalls; the three
  hybrids finish within a comparable band;
* 4b (fairness): T-Chain, FairTorrent and BitTorrent stabilise near
  u/d = 1;
* 4c (bootstrapping): altruism ~ FairTorrent ~ T-Chain, then
  BitTorrent, then reputation, then reciprocity.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import pytest

from benchmarks.conftest import FIGURE_SEEDS, mean_stat, run_once
from repro.experiments.figures import FigureResult, figure4
from repro.experiments.scenarios import default_scale
from repro.names import Algorithm


def check_fig4a_efficiency(figs: Sequence[FigureResult]) -> None:
    times = {a: mean_stat(figs, a, "mean_completion_time")
             for a in figs[0].series}
    finite = {a: t for a, t in times.items() if math.isfinite(t)}
    assert min(finite, key=finite.get) is Algorithm.ALTRUISM
    assert mean_stat(figs, Algorithm.RECIPROCITY,
                     "completion_fraction") < 0.05

    hybrids = [times[Algorithm.TCHAIN], times[Algorithm.BITTORRENT],
               times[Algorithm.FAIRTORRENT]]
    assert max(hybrids) / min(hybrids) < 1.5  # comparable band

    for algorithm in figs[0].series:
        if algorithm is not Algorithm.RECIPROCITY:
            assert mean_stat(figs, algorithm,
                             "completion_fraction") > 0.97, algorithm


def check_fig4b_fairness(figs: Sequence[FigureResult]) -> None:
    for algorithm in (Algorithm.TCHAIN, Algorithm.FAIRTORRENT,
                      Algorithm.BITTORRENT):
        fairness = mean_stat(figs, algorithm, "final_fairness")
        assert fairness == pytest.approx(1.0, abs=0.08), algorithm


def check_fig4c_bootstrapping(figs: Sequence[FigureResult]) -> None:
    boot = {a: mean_stat(figs, a, "mean_bootstrap_time")
            for a in figs[0].series}
    for fast in (Algorithm.ALTRUISM, Algorithm.FAIRTORRENT,
                 Algorithm.TCHAIN):
        assert boot[fast] < boot[Algorithm.BITTORRENT], fast
    assert boot[Algorithm.BITTORRENT] < boot[Algorithm.REPUTATION]
    assert boot[Algorithm.REPUTATION] < boot[Algorithm.RECIPROCITY]


def test_figure4_sweep(benchmark, figure_sweeps):
    result = run_once(benchmark, figure4,
                      default_scale(seed=FIGURE_SEEDS[0]))
    print()
    print(result.to_text())
    figs: List[FigureResult] = figure_sweeps["fig4"]
    check_fig4a_efficiency(figs)
    check_fig4b_fairness(figs)
    check_fig4c_bootstrapping(figs)


def test_fig4a_efficiency(figure_sweeps):
    check_fig4a_efficiency(figure_sweeps["fig4"])


def test_fig4b_fairness(figure_sweeps):
    check_fig4b_fairness(figure_sweeps["fig4"])


def test_fig4c_bootstrapping(figure_sweeps):
    check_fig4c_bootstrapping(figure_sweeps["fig4"])
