"""E4/E5 — Table II and Proposition 4: flash-crowd bootstrapping.

Regenerates Table II's bootstrap-probability column at the paper's
exact example parameters (asserting the printed percentages), the
Proposition 4 speed ordering, and Lemma 3's expected bootstrap times
for a 500-user flash crowd.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core import bootstrapping as boot
from repro.experiments.tables import table2_text
from repro.names import Algorithm
from repro.utils import format_table


@pytest.fixture(scope="module")
def params():
    return boot.BootstrapParameters(
        n_users=1000, n_seeder=1, pieces_per_slot=5, bootstrapped=500,
        pi_dr=0.5, n_bt=4, omega=0.75, n_ft=500)


def test_table2_regeneration(benchmark, params):
    probabilities = run_once(benchmark, boot.table2, params)

    print()
    print(table2_text(params))

    expected = {
        Algorithm.RECIPROCITY: 0.1,
        Algorithm.TCHAIN: 71.4,
        Algorithm.BITTORRENT: 39.6,
        Algorithm.FAIRTORRENT: 71.4,
        Algorithm.REPUTATION: 22.2,
        Algorithm.ALTRUISM: 91.8,
    }
    for algorithm, percent in expected.items():
        assert 100.0 * probabilities[algorithm] == pytest.approx(
            percent, abs=0.15), algorithm


def test_proposition4_ordering(benchmark, params):
    order = run_once(benchmark, boot.proposition4_ordering, params)
    print()
    print("Prop. 4 ordering:", " > ".join(a.value for a in order))
    assert order[0] is Algorithm.ALTRUISM
    assert order[-1] is Algorithm.RECIPROCITY
    assert order.index(Algorithm.TCHAIN) < order.index(Algorithm.BITTORRENT)
    assert order.index(Algorithm.FAIRTORRENT) < order.index(
        Algorithm.BITTORRENT)
    assert order.index(Algorithm.BITTORRENT) < order.index(
        Algorithm.REPUTATION)


def test_lemma3_expected_times(benchmark, params):
    """E[T_B(P)] for a 500-newcomer crowd, per algorithm."""
    def expected_times():
        times = {}
        for algorithm, p in boot.table2(params).items():
            times[algorithm] = boot.expected_bootstrap_time(
                p, newcomers=500, max_slots=200_000)
        return times

    times = run_once(benchmark, expected_times)
    print()
    print(format_table(
        ["Algorithm", "E[T_B(500)] (slots)"],
        [[a.display_name, t] for a, t in times.items()],
        title="Lemma 3 expected flash-crowd bootstrap times",
        float_format=".1f"))

    # Faster bootstrap probability => smaller expected time.
    assert times[Algorithm.ALTRUISM] < times[Algorithm.BITTORRENT]
    assert times[Algorithm.BITTORRENT] < times[Algorithm.REPUTATION]
    assert times[Algorithm.REPUTATION] < times[Algorithm.RECIPROCITY]
    # Reciprocity: seeder-only at 0.1%/slot; the slowest by far.
    assert times[Algorithm.RECIPROCITY] > 1000.0
