"""Ablation benches over the design parameters DESIGN.md calls out.

These go beyond the paper's figures: each sweep varies one design knob
in the simulator and checks that the *direction* of the effect matches
what the analytical model (Tables II-III) predicts.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.experiments import ablations
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm
from repro.utils import format_table

BASE = smoke_scale(seed=6)


def _print(rows, key):
    print()
    print(format_table(
        [key, "susceptibility", "mean boot T", "mean T", "fairness"],
        [[r[key], r["susceptibility"], r["mean_bootstrap_time"],
          r["mean_completion_time"], r["final_fairness"]] for r in rows],
        float_format=".3g"))


def test_alpha_bt_tradeoff(benchmark):
    """Table II/III in the simulator: BitTorrent's optimistic share
    buys bootstrap speed and sells exposure, monotonically."""
    rows = run_once(benchmark, ablations.alpha_bt_sweep, BASE,
                    [0.05, 0.2, 0.5])
    _print(rows, "alpha_bt")
    susceptibilities = [r["susceptibility"] for r in rows]
    bootstrap_times = [r["mean_bootstrap_time"] for r in rows]
    assert susceptibilities == sorted(susceptibilities)
    assert bootstrap_times == sorted(bootstrap_times, reverse=True)


def test_alpha_r_tradeoff(benchmark):
    """The reputation system's altruism reserve plays the same double
    role: more reserve, faster bootstrap, more leakage."""
    rows = run_once(benchmark, ablations.alpha_r_sweep, BASE,
                    [0.05, 0.2, 0.5])
    _print(rows, "alpha_r")
    susceptibilities = [r["susceptibility"] for r in rows]
    bootstrap_times = [r["mean_bootstrap_time"] for r in rows]
    assert susceptibilities == sorted(susceptibilities)
    assert bootstrap_times == sorted(bootstrap_times, reverse=True)


def test_freerider_fraction_scaling(benchmark):
    """Altruism's leak scales with the attacker population; T-Chain's
    stays pinned near zero."""
    def sweep():
        return (ablations.freerider_fraction_sweep(
                    BASE, Algorithm.ALTRUISM, [0.1, 0.2, 0.3]),
                ablations.freerider_fraction_sweep(
                    BASE, Algorithm.TCHAIN, [0.1, 0.2, 0.3]))

    altruism, tchain = run_once(benchmark, sweep)
    _print(altruism, "freerider_fraction")
    _print(tchain, "freerider_fraction")
    alt_susc = [r["susceptibility"] for r in altruism]
    assert alt_susc == sorted(alt_susc)
    assert alt_susc[-1] > 0.2
    assert all(r["susceptibility"] < 0.06 for r in tchain)


def test_seeder_capacity_accelerates_reciprocity_only_channel(benchmark):
    """Reciprocity's throughput is exactly the seeder's bandwidth."""
    rows = run_once(benchmark, ablations.seeder_capacity_sweep, BASE,
                    Algorithm.RECIPROCITY, [1.0, 4.0, 16.0])
    _print(rows, "seeder_capacity")
    fractions = [r["completion_fraction"] for r in rows]
    boots = [r["mean_bootstrap_time"] for r in rows]
    assert fractions == sorted(fractions)
    assert boots == sorted(boots, reverse=True)


def test_whitewashing_never_helps_the_defender(benchmark):
    """Identity resets can only maintain or increase what FairTorrent
    free-riders extract (at small scale the completion ceiling masks
    most of the effect; the direction must still never invert)."""
    rows = run_once(benchmark, ablations.whitewash_interval_sweep, BASE,
                    [10, 40, None])
    _print(rows, "whitewash_interval")
    with_frequent = rows[0]["susceptibility"]
    without = rows[-1]["susceptibility"]
    assert with_frequent >= without - 0.02


def test_tchain_patience_insensitive(benchmark):
    """T-Chain's defence is the key escrow itself, not blacklist
    tuning: susceptibility stays near zero across patience settings."""
    rows = run_once(benchmark, ablations.tchain_patience_sweep, BASE,
                    [1, 3, 8])
    _print(rows, "patience")
    assert all(r["susceptibility"] < 0.05 for r in rows)
    assert all(r["completion_fraction"] > 0.95 for r in rows)
