"""E10-E12 — Figure 5: 20% free-riders with targeted attacks.

Runs the sweep with each mechanism facing its most effective attack
(simple free-riding; plus collusion for T-Chain, whitewashing for
FairTorrent) and checks the paper's Figure 5 claims, averaged over
three seeds:

* 5a (susceptibility): altruism > FairTorrent > BitTorrent >
  reputation > T-Chain ~ reciprocity ~ 0;
* 5b (efficiency): every susceptible mechanism slows down relative to
  Figure 4; T-Chain degrades the least among the hybrids;
* 5c (fairness): T-Chain and BitTorrent stay the most fair;
  FairTorrent's fairness is visibly hurt.
"""

from __future__ import annotations

from typing import Sequence

from benchmarks.conftest import FIGURE_SEEDS, mean_stat, run_once
from repro.experiments.figures import FigureResult, figure5
from repro.experiments.scenarios import default_scale
from repro.names import Algorithm


def check_fig5a_susceptibility(figs: Sequence[FigureResult]) -> None:
    susc = {a: mean_stat(figs, a, "susceptibility") for a in figs[0].series}
    assert susc[Algorithm.RECIPROCITY] == 0.0
    assert susc[Algorithm.TCHAIN] < 0.04
    assert susc[Algorithm.ALTRUISM] > susc[Algorithm.FAIRTORRENT]
    assert susc[Algorithm.FAIRTORRENT] > susc[Algorithm.BITTORRENT]
    assert susc[Algorithm.BITTORRENT] > susc[Algorithm.REPUTATION]
    assert susc[Algorithm.REPUTATION] > susc[Algorithm.TCHAIN]


def check_fig5b_efficiency(clean: Sequence[FigureResult],
                           figs: Sequence[FigureResult]) -> None:
    def slowdown(algorithm: Algorithm) -> float:
        return (mean_stat(figs, algorithm, "mean_completion_time")
                / mean_stat(clean, algorithm, "mean_completion_time"))

    for algorithm in (Algorithm.ALTRUISM, Algorithm.FAIRTORRENT,
                      Algorithm.BITTORRENT):
        assert slowdown(algorithm) > 1.0, algorithm

    # T-Chain, nearly immune to free-riding, degrades least.
    assert slowdown(Algorithm.TCHAIN) < slowdown(Algorithm.FAIRTORRENT)
    assert slowdown(Algorithm.TCHAIN) < slowdown(Algorithm.BITTORRENT) + 0.02


def check_fig5c_fairness(figs: Sequence[FigureResult]) -> None:
    def deviation(algorithm: Algorithm) -> float:
        return abs(mean_stat(figs, algorithm, "final_fairness") - 1.0)

    assert deviation(Algorithm.TCHAIN) < deviation(Algorithm.FAIRTORRENT)
    assert deviation(Algorithm.TCHAIN) < deviation(Algorithm.ALTRUISM)
    assert deviation(Algorithm.BITTORRENT) < deviation(Algorithm.ALTRUISM)


def test_figure5_sweep(benchmark, figure_sweeps):
    result = run_once(benchmark, figure5,
                      default_scale(seed=FIGURE_SEEDS[0]))
    print()
    print(result.to_text())
    check_fig5a_susceptibility(figure_sweeps["fig5"])
    check_fig5b_efficiency(figure_sweeps["fig4"], figure_sweeps["fig5"])
    check_fig5c_fairness(figure_sweeps["fig5"])


def test_fig5a_susceptibility(figure_sweeps):
    check_fig5a_susceptibility(figure_sweeps["fig5"])


def test_fig5b_efficiency_degrades(figure_sweeps):
    check_fig5b_efficiency(figure_sweeps["fig4"], figure_sweeps["fig5"])


def test_fig5c_fairness(figure_sweeps):
    check_fig5c_fairness(figure_sweeps["fig5"])
