"""E3 — Figure 3 / Proposition 2 / Corollary 2: piece availability.

Regenerates the exchange-feasibility probabilities under a
mixed-progress swarm (uniform piece counts, the post-flash-crowd
regime) at the paper's file scale (512 pieces) and checks:

* the Figure 3 efficiency ordering
  altruism > T-Chain > FairTorrent > BitTorrent > reciprocity;
* Corollary 2's limits: pi_A bounds pi_TC, and pi_TC approaches pi_A
  as the swarm grows;
* Eq. 8's threshold behaviour for pi_TC vs pi_BT.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core import piece_availability as pa
from repro.core.tradeoff import (
    figure3_efficiency_ranking,
    mean_exchange_probability,
)
from repro.names import Algorithm
from repro.utils import format_table

M = 512
N_USERS = 1000


@pytest.fixture(scope="module")
def distribution():
    # Uniform over 64 evenly spaced piece counts: mixed progress while
    # keeping the probability sweep tractable at M = 512.
    import numpy as np
    p = np.zeros(M + 1)
    support = np.linspace(0, M, 64, dtype=int)
    p[support] = 1.0 / len(support)
    return pa.PieceCountDistribution(M, p)


def test_figure3_ranking(benchmark, distribution):
    ranking = run_once(benchmark, figure3_efficiency_ranking,
                       distribution, N_USERS)

    probabilities = {
        a: mean_exchange_probability(a, distribution, N_USERS)
        for a in ranking if a is not Algorithm.FAIRTORRENT
    }
    print()
    print(format_table(
        ["Algorithm", "mean pi(j, i)"],
        [[a.display_name, probabilities.get(a)] for a in ranking],
        title="Figure 3 - exchange feasibility (uniform piece counts)",
        float_format=".4f"))

    assert ranking == [Algorithm.ALTRUISM, Algorithm.TCHAIN,
                       Algorithm.FAIRTORRENT, Algorithm.BITTORRENT,
                       Algorithm.RECIPROCITY]


def test_corollary2_limits(benchmark, distribution):
    def limits():
        alt = mean_exchange_probability(Algorithm.ALTRUISM, distribution, 20)
        tc_small = mean_exchange_probability(Algorithm.TCHAIN, distribution,
                                             20)
        tc_large = mean_exchange_probability(Algorithm.TCHAIN, distribution,
                                             N_USERS)
        return alt, tc_small, tc_large

    alt, tc_small, tc_large = run_once(benchmark, limits)
    print(f"\npi_A = {alt:.4f}; pi_TC(N=20) = {tc_small:.4f}; "
          f"pi_TC(N={N_USERS}) = {tc_large:.4f}")
    assert alt >= tc_small - 1e-12
    assert tc_small <= tc_large <= alt + 1e-12
    assert tc_large == pytest.approx(alt, rel=0.02)  # Cor. 2 limit


def test_eq8_threshold(benchmark):
    """pi_TC >= pi_BT exactly below the Eq. 8 alpha bound."""
    dist = pa.PieceCountDistribution.uniform(64)
    m_i, m_j, n = 6, 40, 200
    bound = run_once(benchmark, pa.tchain_dominates_bittorrent_alpha_bound,
                     m_j, dist, n)
    tc = pa.pi_tchain(m_i, m_j, 64, dist, n)
    assert tc >= pa.pi_bittorrent(m_i, m_j, 64, min(bound, 1.0) * 0.99) - 1e-12
