"""Hybrid-engine benchmark: population-scale flash crowds.

Times :func:`repro.sim.hybrid.run_hybrid_simulation` at 100k and 1M
populations — the regime the per-peer engines cannot reach — and
derives *peers per second of simulated wall clock* (population over
elapsed seconds). For context it also times one *full* event-driven
run at the subswarm scale and extrapolates its per-peer-round cost to
the same populations: the counterfactual price of simulating every
peer, a deliberate lower bound (the big-swarm engines scale worse
than linearly in memory traffic), recorded as
``extrapolated_full_seconds`` per backend.

The committed ``BENCH_hybrid.json`` at the repo root is this script's
output on the reference box and is the acceptance evidence for the
"1M peers in under 10 minutes" criterion (docs/SCALING.md walks
through the same run).

Usage::

    PYTHONPATH=src python benchmarks/bench_hybrid.py            # 100k + 1M
    PYTHONPATH=src python benchmarks/bench_hybrid.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_hybrid.py --out BENCH_hybrid.json

Not a pytest benchmark on purpose, like ``bench_hotpath.py``: CI runs
the quick mode as a plain script and archives the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, Optional

from repro.experiments.executor import default_jobs
from repro.names import Algorithm
from repro.sim.config import SimulationConfig
from repro.sim.hybrid import run_hybrid_simulation, shard_plan
from repro.sim.runner import run_simulation

__all__ = ["hybrid_bench_config", "time_hybrid", "run_bench", "main"]

#: Mechanisms timed at each scale: the headline mechanism (T-Chain)
#: plus the cheapest (altruism) to bracket the cost range.
BENCH_ALGORITHMS = (Algorithm.TCHAIN, Algorithm.ALTRUISM)

#: (label, population, subswarms, subswarm size).
SCALES = (
    ("100k", 100_000, 8, 1_000),
    ("1M", 1_000_000, 16, 1_000),
)
QUICK_SCALES = (
    ("10k", 10_000, 4, 500),
)


def hybrid_bench_config(algorithm: Algorithm, population: int,
                        n_subswarms: int, subswarm_size: int,
                        seed: int = 0,
                        backend: str = "vector-fast") -> SimulationConfig:
    """Paper-shaped flash crowd at hybrid scale.

    Per-capita infrastructure seed bandwidth is held at the validation
    suite's ``8 / 250`` pieces/round/user so the benchmarked system is
    the one the shape contract covers (docs/SCALING.md).
    """
    return SimulationConfig(
        algorithm, n_users=subswarm_size, n_pieces=64, neighbor_count=40,
        max_rounds=600, flash_crowd_duration=10.0,
        seeder_capacity=8.0 * (subswarm_size / 250.0), seed=seed,
        backend=backend,
    ).with_population(population, n_subswarms=n_subswarms,
                      coupling_interval=25)


def time_hybrid(config: SimulationConfig, jobs: Optional[int],
                ) -> Dict[str, float]:
    """Run one hybrid simulation and report throughput."""
    start = time.perf_counter()
    result = run_hybrid_simulation(config, jobs=jobs,
                                   start_method="spawn")
    elapsed = time.perf_counter() - start
    metrics = result.metrics
    return {
        "seconds": elapsed,
        "rounds": metrics.rounds_run,
        "population_peers_per_second": (config.population / elapsed
                                        if elapsed > 0 else float("inf")),
        "sampled_peers": metrics.n_subswarms * metrics.subswarm_size,
        "completion_fraction": metrics.completion_fraction(),
        "fluid_residual": metrics.fluid_residual,
    }


def _extrapolate_full_cost(subswarm_size: int, populations,
                           seed: int) -> Dict[str, Dict[str, float]]:
    """Per-backend cost of one full run at shard scale, extrapolated.

    Linear in ``users * rounds`` — a lower bound on what a real
    population-size swarm would cost per-peer.
    """
    out: Dict[str, Dict[str, float]] = {}
    for backend in ("object", "vector-fast"):
        config = SimulationConfig(
            Algorithm.TCHAIN, n_users=subswarm_size, n_pieces=64,
            neighbor_count=40, max_rounds=600, flash_crowd_duration=10.0,
            seeder_capacity=8.0 * (subswarm_size / 250.0), seed=seed,
            backend=backend)
        start = time.perf_counter()
        metrics = run_simulation(config).metrics
        elapsed = time.perf_counter() - start
        per_peer_round = elapsed / (subswarm_size * max(metrics.rounds_run, 1))
        out[backend] = {
            "measured_users": subswarm_size,
            "measured_seconds": elapsed,
            "seconds_per_peer_round": per_peer_round,
            "extrapolated_full_seconds": {
                label: per_peer_round * population * metrics.rounds_run
                for label, population in populations.items()},
        }
        print(f"  full {backend:12s} {subswarm_size} users: "
              f"{elapsed:.2f}s", flush=True)
    return out


def run_bench(scales, seed: int, jobs: Optional[int]) -> dict:
    # Resolve once so the recorded worker count is the one actually
    # used; on a single-core box this degrades to the inline path.
    jobs = jobs if jobs is not None else default_jobs()
    result = {
        "benchmark": "hybrid_flash_crowd",
        "python": platform.python_version(),
        "jobs": jobs,
        "seed": seed,
        "scales": {},
    }
    for label, population, n_subswarms, subswarm_size in scales:
        plan = shard_plan(hybrid_bench_config(
            Algorithm.TCHAIN, population, n_subswarms, subswarm_size,
            seed=seed))
        entry = {
            "population": population,
            "n_subswarms": n_subswarms,
            "subswarm_size": subswarm_size,
            "shard_weight": plan.weight,
            "algorithms": {},
        }
        print(f"{label}: population {population:,} as {n_subswarms} x "
              f"{subswarm_size} (weight {plan.weight:g})", flush=True)
        for algorithm in BENCH_ALGORITHMS:
            timing = time_hybrid(
                hybrid_bench_config(algorithm, population, n_subswarms,
                                    subswarm_size, seed=seed), jobs)
            entry["algorithms"][algorithm.value] = timing
            print(f"  {algorithm.value:12s} {timing['seconds']:8.2f}s "
                  f"({timing['population_peers_per_second']:,.0f} "
                  "peers/s)", flush=True)
        result["scales"][label] = entry
    populations = {label: population
                   for label, population, _, _ in scales}
    smallest = min(s[3] for s in scales)
    result["full_run_extrapolation"] = _extrapolate_full_cost(
        smallest, populations, seed)
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: one 10k-population scale")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None,
                        help="subswarm workers (default: cores minus one)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the JSON result here")
    args = parser.parse_args(argv)
    scales = QUICK_SCALES if args.quick else SCALES
    result = run_bench(scales, seed=args.seed, jobs=args.jobs)
    payload = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
