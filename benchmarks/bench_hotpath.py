"""Hot-path benchmark: the flash-crowd round loop, per algorithm.

Times ``Simulation.run()`` for a 1000-peer, 256-piece flash crowd —
the paper's validation scale (Section V-A) — capped at a fixed number
of rounds so successive runs of the simulator are directly comparable
across code revisions. This is the first entry in the repository's
performance trajectory: every hot-path change should re-run it and
record the result in ``BENCH_hotpath.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py             # full scale
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick     # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --baseline BENCH_hotpath.baseline.json                    # + speedups
    PYTHONPATH=src python benchmarks/bench_hotpath.py --faults    # fault layer

The output JSON records, per algorithm, the wall-clock seconds for the
timed window, the rounds executed, and the derived rounds/second. When
``--baseline`` points at an earlier output file the per-algorithm and
aggregate speedups are computed and embedded, which is how the >= 3x
acceptance gate of the bitset/cached-neighbor rewrite is checked.

``--faults`` switches to the fault-layer overhead variant: the same
flash crowd with every fault axis active at representative rates,
timed once per backend (object, vector, vector-fast) in a single
invocation and written to ``BENCH_hotpath.faults.json``. Divided by
the matching entries in the clean per-backend files (same scale, same
seed) this gives the per-engine cost of the five fault processes.

Not a pytest benchmark on purpose: CI runs it as a plain script (quick
mode) and archives the JSON artifact, so the file can never rot.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import sys
import time
from typing import Dict, Optional

from repro.names import ALL_ALGORITHMS
from repro.sim.config import SimulationConfig
from repro.sim.faults import FaultConfig
from repro.sim.runner import Simulation
from repro.sim.vector import VectorFastSimulation, VectorSimulation

__all__ = ["hotpath_config", "run_bench", "run_faults_bench", "main",
           "FAULT_SCENARIO"]

#: The representative all-axes scenario the ``--faults`` variant
#: times: every fault process active at rates that demonstrably fire
#: at bench scale without collapsing the swarm mid-window.
FAULT_SCENARIO = FaultConfig(
    transfer_loss_rate=0.1,
    crash_hazard=0.002,
    seeder_outage_rate=0.05,
    seeder_outage_duration=3,
    report_delay_rounds=2,
    obligation_expiry_rounds=12,
)


def hotpath_config(algorithm: str, n_users: int, n_pieces: int,
                   rounds: int, seed: int,
                   guards: str = "off",
                   obs: str = "off",
                   backend: str = "object",
                   faults: Optional[FaultConfig] = None) -> SimulationConfig:
    """The timed scenario: a pure flash crowd at the given scale."""
    config = SimulationConfig(
        algorithm=algorithm,
        n_users=n_users,
        n_pieces=n_pieces,
        max_rounds=rounds,
        neighbor_count=40,
        seed=seed,
        backend=backend,
    )
    if faults is not None:
        config = config.with_faults(faults)
    if guards != "off":
        # A wide window: the timed run is capped mid-download, which a
        # short-windowed watchdog would misread as a stall.
        config = config.with_guards(guards, watchdog_window=10 * rounds)
    if obs == "trace":
        # Full-bore observability: every event traced (no sampling-out),
        # every round sampled, every span profiled. Compared against an
        # obs=off run of the same scale this measures the layer's
        # worst-case overhead; disabled-mode overhead is just the
        # `if self._obs is not None` checks, asserted within noise by
        # tests/obs (and visible here as obs=off before/after the PR).
        config = config.with_obs(trace=True, sample_every=1, profile=True)
    return config


_ENGINES = {
    "object": Simulation,
    "vector": VectorSimulation,
    "vector-fast": VectorFastSimulation,
}


def _time_round_loop(config: SimulationConfig) -> Dict[str, float]:
    """Build one simulation (untimed) and time its event/round loop."""
    sim = _ENGINES[config.backend](config)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    rounds = max(sim.round_index, 1)
    return {
        "seconds": elapsed,
        "rounds": sim.round_index,
        "rounds_per_second": rounds / elapsed if elapsed > 0 else float("inf"),
    }


def run_bench(n_users: int, n_pieces: int, rounds: int, seed: int,
              baseline: Optional[dict] = None, guards: str = "off",
              obs: str = "off", backend: str = "object",
              faults: Optional[FaultConfig] = None) -> dict:
    """Time every algorithm once; attach speedups vs. ``baseline``."""
    result = {
        "benchmark": "hotpath_round_loop",
        "n_users": n_users,
        "n_pieces": n_pieces,
        "rounds_cap": rounds,
        "seed": seed,
        "guards": guards,
        "obs": obs,
        "backend": backend,
        "python": platform.python_version(),
        "algorithms": {},
    }
    total = 0.0
    for algorithm in ALL_ALGORITHMS:
        entry = _time_round_loop(
            hotpath_config(algorithm, n_users, n_pieces, rounds, seed,
                           guards=guards, obs=obs, backend=backend,
                           faults=faults))
        total += entry["seconds"]
        result["algorithms"][algorithm.value] = entry
        print(f"{algorithm.value:12s} {entry['seconds']:8.3f}s "
              f"({entry['rounds']} rounds, "
              f"{entry['rounds_per_second']:.1f} rounds/s)", flush=True)
    result["total_seconds"] = total
    if baseline is not None:
        _attach_speedups(result, baseline)
    return result


def _attach_speedups(result: dict, baseline: dict) -> None:
    """Embed per-algorithm and aggregate speedups vs. an earlier run."""
    comparable = (baseline.get("n_users") == result["n_users"]
                  and baseline.get("n_pieces") == result["n_pieces"]
                  and baseline.get("rounds_cap") == result["rounds_cap"])
    speedups = {}
    for name, entry in result["algorithms"].items():
        base = baseline.get("algorithms", {}).get(name)
        if base and entry["seconds"] > 0:
            speedups[name] = base["seconds"] / entry["seconds"]
    result["baseline"] = {
        "comparable_scale": comparable,
        "total_seconds": baseline.get("total_seconds"),
        "python": baseline.get("python"),
        "algorithms": {name: entry["seconds"] for name, entry
                       in baseline.get("algorithms", {}).items()},
    }
    result["speedup"] = speedups
    if speedups and baseline.get("total_seconds"):
        result["speedup_total"] = (
            baseline["total_seconds"] / result["total_seconds"])
        print(f"{'TOTAL':12s} {result['total_seconds']:8.3f}s "
              f"(speedup vs baseline: {result['speedup_total']:.2f}x)")


def run_faults_bench(n_users: int, n_pieces: int, rounds: int,
                     seed: int) -> dict:
    """The ``--faults`` variant: every backend, all fault axes on.

    One document with a per-backend section keeps the three engines'
    timings side by side — the fault layer costs different things on
    each (per-transfer coin flips on the draw-exact engines, batched
    geometric gaps on vector-fast), so the overhead is per backend by
    construction.
    """
    doc = {
        "benchmark": "hotpath_round_loop_faults",
        "n_users": n_users,
        "n_pieces": n_pieces,
        "rounds_cap": rounds,
        "seed": seed,
        "python": platform.python_version(),
        "faults": dataclasses.asdict(FAULT_SCENARIO),
        "backends": {},
    }
    for backend in ("object", "vector", "vector-fast"):
        print(f"--- backend: {backend} (faults on) ---", flush=True)
        doc["backends"][backend] = run_bench(
            n_users, n_pieces, rounds, seed, backend=backend,
            faults=FAULT_SCENARIO)
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale (60 users, 32 pieces, 15 rounds)")
    parser.add_argument("--users", type=int, default=1000)
    parser.add_argument("--pieces", type=int, default=256)
    parser.add_argument("--rounds", type=int, default=40,
                        help="round cap for the timed window")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--baseline", type=str, default=None,
                        help="earlier output JSON to compute speedups against")
    parser.add_argument("--guards", choices=["off", "cheap", "full"],
                        default="off",
                        help="run with runtime invariant guards enabled "
                             "(measures their overhead vs an --guards off "
                             "baseline)")
    parser.add_argument("--trace", dest="obs", action="store_const",
                        const="trace", default="off",
                        help="run with the observability layer fully on "
                             "(trace + every-round sampling + profiling); "
                             "compare against an un-traced run to measure "
                             "its overhead")
    parser.add_argument("--backend",
                        choices=["object", "vector", "vector-fast"],
                        default="object",
                        help="round-loop engine to time; 'vector' is the "
                             "struct-of-arrays fast path (digest-identical "
                             "to 'object'), 'vector-fast' the batched-"
                             "sampling fast-v1 lineage (distributionally "
                             "equivalent only); both are incompatible with "
                             "--guards/--trace")
    parser.add_argument("--faults", action="store_true",
                        help="time the fault-layer overhead variant: all "
                             "five fault axes active at representative "
                             "rates, run once per backend (object, vector, "
                             "vector-fast) into a single per-backend JSON; "
                             "ignores --backend and is incompatible with "
                             "--guards/--trace/--baseline")
    parser.add_argument("--output", type=str, default=None,
                        help="output JSON path (default BENCH_hotpath.json, "
                             "or BENCH_hotpath.faults.json with --faults)")
    args = parser.parse_args(argv)

    if args.quick:
        args.users, args.pieces, args.rounds = 60, 32, 15
    if args.backend != "object" and (args.guards != "off"
                                     or args.obs != "off"):
        parser.error("--backend vector/vector-fast does not support "
                     "--guards/--trace "
                     "(the vector engine has no guard or observability "
                     "hooks; benchmark those on the object backend)")
    if args.faults and (args.guards != "off" or args.obs != "off"
                        or args.baseline):
        parser.error("--faults times the bare fault layer on every "
                     "backend; combine it with --guards/--trace/--baseline "
                     "on the object backend via separate runs instead")
    if args.output is None:
        args.output = ("BENCH_hotpath.faults.json" if args.faults
                       else "BENCH_hotpath.json")

    if args.faults:
        result = run_faults_bench(args.users, args.pieces, args.rounds,
                                  args.seed)
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
        return 0

    baseline = None
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)

    result = run_bench(args.users, args.pieces, args.rounds, args.seed,
                       baseline=baseline, guards=args.guards, obs=args.obs,
                       backend=args.backend)
    with open(args.output, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
