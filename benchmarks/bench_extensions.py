"""Extension benches: PropShare and Poisson arrivals.

Beyond the paper's six mechanisms and flash-crowd workload:

* **PropShare** [5] (cited in Corollary 2's proof) — BitTorrent with
  contribution-proportional reciprocity. Expected: efficiency and
  exposure comparable to BitTorrent, fairness at least as good.
* **Poisson arrivals** — the orderings of Figure 4 are not an artifact
  of the flash crowd: with a steady arrival stream, altruism is still
  the fastest and the fair hybrids still converge to u/d ~ 1.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import run_once
from repro.experiments.scenarios import run_all_algorithms, smoke_scale
from repro.names import Algorithm
from repro.sim import run_simulation, targeted_attack_for
from repro.utils import format_table

SEED = 41


def test_propshare_vs_bittorrent(benchmark):
    """PropShare matches BitTorrent's profile with equal-or-better
    fairness (proportional repayment) at the same optimistic exposure."""
    def sweep():
        out = {}
        for algorithm in (Algorithm.BITTORRENT, Algorithm.PROPSHARE):
            config = smoke_scale(algorithm, seed=SEED).with_attack(
                targeted_attack_for(algorithm), freerider_fraction=0.2)
            out[algorithm] = run_simulation(config).metrics
        return out

    metrics = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["Algorithm", "mean T", "fairness", "boot T", "susceptibility"],
        [[a.display_name, m.mean_completion_time(), m.final_fairness(),
          m.mean_bootstrap_time(), m.susceptibility()]
         for a, m in metrics.items()],
        title="PropShare vs BitTorrent (20% free-riders)",
        float_format=".3g"))

    bt = metrics[Algorithm.BITTORRENT]
    ps = metrics[Algorithm.PROPSHARE]
    assert ps.completion_fraction() > 0.95
    # Comparable efficiency (within 40% either way at smoke scale).
    assert 0.6 < ps.mean_completion_time() / bt.mean_completion_time() < 1.4
    # Exposure capped by the same optimistic share.
    assert ps.susceptibility() < bt.susceptibility() + 0.05
    # Fairness no worse than BitTorrent's.
    assert abs(ps.final_fairness() - 1.0) < abs(
        bt.final_fairness() - 1.0) + 0.05


def test_poisson_arrivals_preserve_orderings(benchmark):
    """Figure 4's headline orderings survive a non-flash workload."""
    base = replace(smoke_scale(seed=SEED), arrival_process="poisson",
                   arrival_rate=5.0)

    def sweep():
        return run_all_algorithms(base, algorithms=[
            Algorithm.ALTRUISM, Algorithm.TCHAIN, Algorithm.BITTORRENT,
            Algorithm.RECIPROCITY])

    results = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["Algorithm", "mean T", "done", "fairness"],
        [[a.display_name, r.metrics.mean_completion_time(),
          r.metrics.completion_fraction(), r.metrics.final_fairness()]
         for a, r in results.items()],
        title="Poisson arrivals (rate 5/s)", float_format=".3g"))

    assert (results[Algorithm.ALTRUISM].metrics.mean_completion_time()
            < results[Algorithm.TCHAIN].metrics.mean_completion_time())
    assert results[Algorithm.RECIPROCITY].metrics.completion_fraction() < 0.2
    for algorithm in (Algorithm.ALTRUISM, Algorithm.TCHAIN,
                      Algorithm.BITTORRENT):
        assert results[algorithm].metrics.completion_fraction() > 0.95
        assert results[algorithm].metrics.final_fairness() == pytest.approx(
            1.0, abs=0.15)
