"""E13-E15 — Figure 6: free-riders add the large-view exploit.

Runs Figure 5's sweep with free-riders additionally connecting to
every peer and checks the paper's Figure 6 claims, averaged over three
seeds:

* 6a (susceptibility): BitTorrent's and the reputation system's leak
  roughly doubles; T-Chain stays below a few percent; mechanisms
  already at their intake ceiling (altruism — free-riders simply
  finish sooner) cannot double, which EXPERIMENTS.md records;
* 6b/6c: T-Chain is now visibly more efficient *and* more fair than
  BitTorrent.
"""

from __future__ import annotations

from typing import Sequence

from benchmarks.conftest import FIGURE_SEEDS, mean_stat, run_once
from repro.experiments.figures import FigureResult, figure6
from repro.experiments.scenarios import default_scale
from repro.names import Algorithm


def check_fig6a_amplification(base: Sequence[FigureResult],
                              figs: Sequence[FigureResult]) -> None:
    # BitTorrent's optimistic-unchoke leak scales directly with the
    # attackers' share of neighbor views: a clear multiple.
    before = mean_stat(base, Algorithm.BITTORRENT, "susceptibility")
    after = mean_stat(figs, Algorithm.BITTORRENT, "susceptibility")
    assert after > 1.4 * before, (Algorithm.BITTORRENT, before, after)
    # The reputation system's leak is dominated by its long completion
    # tail (free-riders are most of the remaining needy users there,
    # view size regardless), so the amplification is noisier: assert a
    # clear increase rather than a strict doubling.
    before = mean_stat(base, Algorithm.REPUTATION, "susceptibility")
    after = mean_stat(figs, Algorithm.REPUTATION, "susceptibility")
    assert after > 1.2 * before, (Algorithm.REPUTATION, before, after)


def check_fig6a_tchain(base: Sequence[FigureResult],
                       figs: Sequence[FigureResult]) -> None:
    assert mean_stat(figs, Algorithm.TCHAIN, "susceptibility") < 0.04
    assert mean_stat(figs, Algorithm.RECIPROCITY, "susceptibility") == 0.0
    # Large view never *reduces* what attackers get.
    for algorithm in figs[0].series:
        assert mean_stat(figs, algorithm, "susceptibility") >= (
            mean_stat(base, algorithm, "susceptibility") - 0.02), algorithm


def check_fig6bc_tchain_beats_bittorrent(figs: Sequence[FigureResult],
                                         ) -> None:
    assert mean_stat(figs, Algorithm.TCHAIN, "mean_completion_time") < (
        mean_stat(figs, Algorithm.BITTORRENT, "mean_completion_time"))
    assert abs(mean_stat(figs, Algorithm.TCHAIN, "final_fairness") - 1.0) < (
        abs(mean_stat(figs, Algorithm.BITTORRENT, "final_fairness") - 1.0))


def test_figure6_sweep(benchmark, figure_sweeps):
    result = run_once(benchmark, figure6,
                      default_scale(seed=FIGURE_SEEDS[0]))
    print()
    print(result.to_text())
    check_fig6a_amplification(figure_sweeps["fig5"], figure_sweeps["fig6"])
    check_fig6a_tchain(figure_sweeps["fig5"], figure_sweeps["fig6"])
    check_fig6bc_tchain_beats_bittorrent(figure_sweeps["fig6"])


def test_fig6a_susceptibility_amplified(figure_sweeps):
    check_fig6a_amplification(figure_sweeps["fig5"], figure_sweeps["fig6"])


def test_fig6a_tchain_still_tiny(figure_sweeps):
    check_fig6a_tchain(figure_sweeps["fig5"], figure_sweeps["fig6"])


def test_fig6bc_tchain_beats_bittorrent(figure_sweeps):
    check_fig6bc_tchain_beats_bittorrent(figure_sweeps["fig6"])
